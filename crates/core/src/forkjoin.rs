//! The fork-join serving runtime (paper §III-B).
//!
//! Three entry points:
//!
//! - [`ForkJoinRuntime::simulate_query`] — one warm query with sampled
//!   noise, following the plan group by group (master forks workers, waits
//!   for the slowest, assembles, continues). This is the "actual" latency
//!   the Fig 9–12 reproductions measure.
//! - [`ForkJoinRuntime::serve_workload`] — a closed-loop client population
//!   served against warm pools with cold starts and billing (the §V-C
//!   experiments: 100 clients × 1000 queries).
//! - [`execute_plan_tensors`] — runs the plan with *real tensor math*
//!   (slicing inputs with halos, running partitions, stitching outputs),
//!   proving the plan is semantics-preserving.
//!
//! # Failure model
//!
//! Both the simulated paths and the real tensor path share one fault model:
//! a [`FaultInjector`] samples per-execution faults as a pure function of
//! the execution's identity ([`FaultSite`]), and a [`ResiliencePolicy`]
//! decides what the master does about them — retries with exponential
//! backoff, per-attempt timeouts, hedged duplicates, and (on budget
//! exhaustion) graceful degradation: the master recomputes the failed shard
//! locally instead of pretending a final attempt always succeeds. Outcomes
//! are counted honestly in [`ResilienceCounters`]. The master itself is
//! assumed reliable — only worker invocations fault.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use gillis_faas::batch::{BatchCounters, BatchPolicy};
use gillis_faas::billing::BillingMeter;
use gillis_faas::brownout::{
    ArrivalDecision, BrownoutController, BrownoutCounters, BrownoutLevel, BrownoutPolicy,
};
use gillis_faas::budget::{RetryBudget, RetryBudgetPolicy};
use gillis_faas::chaos::{
    wire_checksum, ChaosConfig, Fault, FaultInjector, FaultSite, OutageConfig, OutageModel,
    QueryStatus, ResilienceCounters, ResiliencePolicy,
};
use gillis_faas::des::EventQueue;
use gillis_faas::fleet::{Fleet, FunctionSpec};
use gillis_faas::metrics::{LatencyStats, StatusLatency};
use gillis_faas::overload::{CancelToken, CircuitBreaker, OverloadCounters, OverloadPolicy};
use gillis_faas::pipeline::{PipelineCounters, PipelinePolicy};
use gillis_faas::recovery::{
    CheckpointCache, RecoveryCounters, RecoveryPolicy, StageCheckpoint, DEFAULT_FAILOVER_MS,
};
use gillis_faas::workload::ClosedLoop;
use gillis_faas::{Micros, PlatformProfile};
use gillis_model::exec::Executor;
use gillis_model::weights::ModelWeights;
use gillis_model::LinearModel;
use gillis_perf::TransferFormat;
use gillis_tensor::Tensor;

use crate::error::CoreError;
use crate::partition::{balanced_ranges, GroupAnalysis, PartDim, PartitionOption, PartitionWork};
use crate::plan::{ExecutionPlan, Placement, PlannedGroup};
use crate::Result;

/// Seed of the injector derived from the legacy
/// `PlatformProfile::invocation_failure_rate` knob, so profiles that only
/// set a failure rate keep getting deterministic faults.
const LEGACY_FAILURE_SEED: u64 = 0xFA11_5EED;

/// Outcome of a single simulated query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// End-to-end latency (the master's duration).
    pub latency_ms: f64,
    /// Per-group breakdown: `(fork, compute, join)` in milliseconds.
    pub group_ms: Vec<(f64, f64, f64)>,
    /// Durations of every worker execution, for billing.
    pub worker_ms: Vec<f64>,
    /// How the query ended.
    pub status: QueryStatus,
    /// Retry/hedge/timeout/degradation accounting for this query (the
    /// per-run `*_queries` tallies stay zero here; `status` carries the
    /// query's own terminal state).
    pub resilience: ResilienceCounters,
}

/// Result of serving a workload.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Latency distribution of *admitted* queries (failed queries record
    /// their error response time; shed queries never run and record
    /// nothing here).
    pub latency: LatencyStats,
    /// Latency split by terminal status, so degraded local-fallback and
    /// deadline-expired latencies do not dilute the ok-path percentiles.
    pub by_status: StatusLatency,
    /// Accumulated billing.
    pub billing: BillingMeter,
    /// Cold starts observed across all functions.
    pub cold_starts: u64,
    /// Honest resilience accounting: ok/degraded/failed/shed/deadline
    /// queries, retries, hedges, hedge wins, timeouts, locally recomputed
    /// shards.
    pub resilience: ResilienceCounters,
    /// Overload accounting: admissions, sheds, cancelled attempts, queue
    /// depth, breaker transitions. All zero without an [`OverloadPolicy`].
    pub overload: OverloadCounters,
    /// Batch-formation accounting: batches dispatched, batched queries,
    /// batch-1 fast-path hits, close reasons. All zero outside
    /// [`ForkJoinRuntime::serve_open_loop_batched`].
    pub batch: BatchCounters,
    /// Brownout-ladder accounting: arrivals per service level, step
    /// downs/ups, ladder sheds, probes. All zero without a
    /// [`BrownoutPolicy`].
    pub brownout: BrownoutCounters,
    /// Pipeline-stage accounting: stage dispatches, inter-stage hand-offs,
    /// backpressure stalls, peak stage-queue depth. All zero outside
    /// [`ForkJoinRuntime::serve_open_loop_pipelined`].
    pub pipeline: PipelineCounters,
    /// Stage-level recovery accounting: checkpoint hits/misses/evictions,
    /// stages saved, orchestrator crashes split into failover replays vs
    /// full restarts, and speculation outcomes. Crash tallies appear
    /// whenever the chaos config samples orchestrator crashes; the
    /// checkpoint fields need a [`gillis_faas::RecoveryPolicy`] (see
    /// [`ForkJoinRuntime::with_recovery`]).
    pub recovery: RecoveryCounters,
}

impl ServingReport {
    /// Worker invocations per first attempt (see
    /// [`ResilienceCounters::retry_amplification`]): the load-amplification
    /// factor retries and hedges added on top of admitted work.
    pub fn retry_amplification(&self) -> f64 {
        self.resilience.retry_amplification()
    }

    /// Folds another replication's report into this one: latency samples
    /// are concatenated and every counter family (billing, resilience,
    /// overload, batch, brownout) is summed, so percentiles, retry
    /// amplification, and brownout level occupancy aggregate honestly
    /// across seeds.
    pub fn absorb(&mut self, other: &ServingReport) {
        self.latency.absorb(&other.latency);
        self.by_status.absorb(&other.by_status);
        self.billing.merge(&other.billing);
        self.cold_starts += other.cold_starts;
        self.resilience.absorb(&other.resilience);
        self.overload.absorb(&other.overload);
        self.batch.absorb(&other.batch);
        self.brownout.absorb(&other.brownout);
        self.pipeline.absorb(&other.pipeline);
        self.recovery.absorb(&other.recovery);
    }
}

/// Latency distribution plus resilience accounting over a batch of
/// independent simulated queries (see [`ForkJoinRuntime::simulate_many`]).
#[derive(Debug, Clone)]
pub struct SimulationReport {
    /// Warm-query latency distribution in replication order.
    pub latency: LatencyStats,
    /// Accumulated resilience counters, including per-status query tallies.
    pub resilience: ResilienceCounters,
}

impl SimulationReport {
    /// Worker invocations per first attempt (see
    /// [`ResilienceCounters::retry_amplification`]).
    pub fn retry_amplification(&self) -> f64 {
        self.resilience.retry_amplification()
    }

    /// Folds another replication's report into this one.
    pub fn absorb(&mut self, other: &SimulationReport) {
        self.latency.absorb(&other.latency);
        self.resilience.absorb(&other.resilience);
    }
}

/// The batch configuration chosen for one SLO class by
/// [`plan_batch_schedule`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassSchedule {
    /// Target batch size `n*`: the accumulation window closes early once
    /// this many queries are waiting.
    pub batch: usize,
    /// Accumulation window measured from the first member's arrival, in
    /// milliseconds (zero when `batch == 1`).
    pub window_ms: f64,
    /// Predicted warm latency of a full `batch`-sized dispatch, in
    /// milliseconds.
    pub predicted_ms: f64,
    /// Predicted billed cost per query at the target batch size.
    pub usd_per_query: f64,
}

/// A joint batch-size × memory-size configuration: the cheapest instance
/// memory that fits the plan and meets every class deadline, with each
/// class's cost-optimal batch size and deadline-derived window at that
/// memory. Produced by [`plan_batch_schedule`], consumed by
/// [`ForkJoinRuntime::serve_open_loop_batched`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSchedule {
    /// Chosen per-instance memory in bytes. The serving runtime must be
    /// built on `platform.with_memory_bytes(memory_bytes)`.
    pub memory_bytes: u64,
    /// Per-class configurations, index-aligned with
    /// [`BatchPolicy::classes`].
    pub classes: Vec<ClassSchedule>,
}

/// Jointly configures batch size and instance memory against the
/// performance model (the HarmonyBatch insight: batch size and memory
/// trade off against each other, so picking them separately leaves money
/// on the table).
///
/// For every candidate memory in [`BatchPolicy::memory_mb`] (the current
/// platform memory when empty) that still fits the plan's weights, and for
/// every class, the configurator scans `n = 1..=max_batch` and keeps the
/// `n` with the lowest predicted cost per query among those that are
/// *deadline-feasible*: the window
/// `min(max_window_ms, deadline − margin − t_batch(n))` must be positive
/// and no shorter than the expected fill time `(n−1)/λ_c` of the class at
/// its share of `rate_per_sec` (otherwise windows close before filling and
/// the predicted amortization never materializes). The memory with the
/// lowest expected spend rate `Σ_c λ_c · usd_c` wins.
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] for invalid policies or a
/// non-positive rate, and an error when no candidate memory both fits the
/// plan and meets every class deadline at batch 1.
pub fn plan_batch_schedule(
    model: &LinearModel,
    plan: &ExecutionPlan,
    platform: &PlatformProfile,
    format: TransferFormat,
    policy: &BatchPolicy,
    rate_per_sec: f64,
) -> Result<BatchSchedule> {
    policy.validate().map_err(CoreError::from)?;
    if !(rate_per_sec.is_finite() && rate_per_sec > 0.0) {
        return Err(CoreError::InvalidArgument(format!(
            "arrival rate must be positive and finite, got {rate_per_sec}"
        )));
    }
    let candidates: Vec<u64> = if policy.memory_mb.is_empty() {
        vec![platform.instance_memory_bytes]
    } else {
        policy.memory_mb.iter().map(|&mb| mb * 1_000_000).collect()
    };
    let total_weight = policy.total_weight();
    let mut best: Option<(f64, BatchSchedule)> = None;
    for &memory_bytes in &candidates {
        let scaled_platform = platform.with_memory_bytes(memory_bytes);
        if plan
            .validate(model, scaled_platform.model_memory_budget)
            .is_err()
        {
            // The plan's weights no longer fit this memory size.
            continue;
        }
        let perf = gillis_perf::PerfModel::analytic(&scaled_platform).with_transfer_format(format);
        // Batched predictions are class-independent; compute once per size.
        let preds: Vec<crate::predict::PlanPrediction> = (1..=policy.max_batch)
            .map(|n| {
                crate::predict::predict_plan_batched(
                    model,
                    plan,
                    &perf,
                    n,
                    policy.amortized_fraction,
                )
            })
            .collect::<Result<_>>()?;
        let mut classes = Vec::with_capacity(policy.classes.len());
        let mut spend_rate = 0.0;
        let mut feasible = true;
        for class in &policy.classes {
            let lambda = rate_per_sec * class.weight / total_weight;
            let mut chosen: Option<ClassSchedule> = None;
            for (i, pred) in preds.iter().enumerate() {
                let n = i + 1;
                let slack_ms = if class.deadline_ms.is_finite() {
                    class.deadline_ms - policy.window_margin_ms - pred.latency_ms
                } else {
                    f64::INFINITY
                };
                if slack_ms <= 0.0 {
                    // Even an empty window would push the first member
                    // past its shed threshold.
                    continue;
                }
                let window_ms = if n == 1 {
                    0.0
                } else {
                    let w = policy.max_window_ms.min(slack_ms);
                    // Expected time for n arrivals of this class to show
                    // up; a window shorter than that closes underfilled
                    // and the amortization never materializes.
                    let fill_ms = (n as f64 - 1.0) / lambda * 1000.0;
                    if fill_ms > w {
                        continue;
                    }
                    w
                };
                let usd_per_query = pred.usd / n as f64;
                let better = match &chosen {
                    None => true,
                    Some(c) => usd_per_query < c.usd_per_query,
                };
                if better {
                    chosen = Some(ClassSchedule {
                        batch: n,
                        window_ms,
                        predicted_ms: pred.latency_ms,
                        usd_per_query,
                    });
                }
            }
            match chosen {
                Some(c) => {
                    spend_rate += lambda * c.usd_per_query;
                    classes.push(c);
                }
                None => {
                    feasible = false;
                    break;
                }
            }
        }
        if !feasible {
            continue;
        }
        let better = match &best {
            None => true,
            Some((rate, _)) => spend_rate < *rate,
        };
        if better {
            best = Some((
                spend_rate,
                BatchSchedule {
                    memory_bytes,
                    classes,
                },
            ));
        }
    }
    best.map(|(_, s)| s).ok_or_else(|| {
        CoreError::InvalidArgument(
            "no candidate memory size both fits the plan and meets every class deadline"
                .to_string(),
        )
    })
}

/// One worker-lane execution as observed by the master: sampled noise plus
/// any injected fault, capped by the per-attempt timeout.
#[derive(Debug, Clone, Copy)]
struct LaneExec {
    /// Invocation jitter before work starts (zero when the fork transfer
    /// already covered it).
    jitter_ms: f64,
    /// Master-observed time from work start to resolution: full compute,
    /// partial compute for a crash, zero for an invocation failure, or the
    /// timeout cap when the master abandons the lane.
    run_ms: f64,
    /// Worker-side busy time to bill — never capped by the abandon, the
    /// function keeps running.
    billed_ms: f64,
    /// The lane produced a usable result.
    success: bool,
    /// The master abandoned the lane at its timeout.
    timed_out: bool,
    /// The lane returned a payload whose checksum failed at the join: the
    /// master received it (not a timeout) but must discard it.
    corrupt: bool,
}

/// Outcome of executing one layer group on the fleet
/// ([`ForkJoinRuntime::run_group_on_fleet`]).
#[derive(Debug, Clone, Copy)]
struct GroupRun {
    /// When the orchestrating function finished the group (join included;
    /// for terminal outcomes, when it stopped waiting).
    end: Micros,
    /// `Ok`, `Degraded` (locally recomputed shards), `Failed` (shards
    /// exhausted without fallback), or `DeadlineExceeded` (the deadline
    /// expired inside the group). The last two are terminal: the caller
    /// abandons the rest of the plan.
    status: QueryStatus,
}

/// Overload protection prepared for serving: the policy plus the plan's
/// predicted warm latency, which admission control adds to the predicted
/// queue wait when deciding whether an arrival can still meet its deadline.
#[derive(Debug, Clone)]
struct OverloadRuntime {
    policy: OverloadPolicy,
    predicted_ms: f64,
}

/// Mutable state shared by every serving driver: the run's RNG, billing
/// meter, recorders, and the optional admission-side controllers. The
/// closed loop and the three open-loop drivers (plain, batched, pipelined)
/// differ only in how they orchestrate arrivals into dispatches — the
/// per-arrival brownout front door, the health-window bookkeeping around a
/// dispatch, the per-query recording, and the final report assembly live
/// here exactly once.
struct ServingState {
    rng: StdRng,
    billing: BillingMeter,
    latency: LatencyStats,
    by_status: StatusLatency,
    resilience: ResilienceCounters,
    overload: OverloadCounters,
    budget: Option<RetryBudget>,
    brownout: Option<BrownoutController>,
    recovery: RecoveryCounters,
    /// Stage-boundary checkpoint store; `None` without a
    /// [`RecoveryPolicy`], in which case every orchestrator crash is a full
    /// restart and failed groups never resume.
    checkpoints: Option<CheckpointCache>,
}

impl ServingState {
    /// Brownout front door for one arrival: records a shed and returns
    /// `None` when the ladder rejects it, otherwise the service level to
    /// dispatch at.
    fn front_door(&mut self) -> Option<BrownoutLevel> {
        match self
            .brownout
            .as_mut()
            .map(BrownoutController::classify_arrival)
        {
            Some(ArrivalDecision::Shed) => {
                self.resilience.record_status(QueryStatus::Shed);
                None
            }
            Some(ArrivalDecision::Serve(l)) => Some(l),
            None => Some(BrownoutLevel::Full),
        }
    }

    /// Records an arrival shed by admission control (never served — it gets
    /// a status tally but no latency sample).
    fn shed(&mut self) {
        self.resilience.record_status(QueryStatus::Shed);
    }

    /// Snapshot of the first-attempt counters before a dispatch; feed it to
    /// [`Self::observe`] afterwards so the brownout controller scores
    /// exactly that dispatch's outcomes.
    fn health_window(&self) -> (u64, u64) {
        (
            self.resilience.first_attempts,
            self.resilience.first_attempt_successes,
        )
    }

    /// Scores the first-attempt outcomes since `window` into the brownout
    /// controller (a no-op without one).
    fn observe(&mut self, window: (u64, u64)) {
        if let Some(ctl) = self.brownout.as_mut() {
            ctl.observe(
                self.resilience.first_attempts - window.0,
                self.resilience.first_attempt_successes - window.1,
            );
        }
    }

    /// Records one served query's latency, measured from its own arrival,
    /// under its terminal status.
    fn record(&mut self, arrival: Micros, done: Micros, status: QueryStatus) {
        let ms = (done - arrival).as_ms();
        self.latency.record(ms);
        self.by_status.record(status, ms);
    }

    /// Assembles the final report from the recorders plus the path-specific
    /// counters.
    fn finish(
        self,
        cold_starts: u64,
        batch: BatchCounters,
        pipeline: PipelineCounters,
    ) -> ServingReport {
        ServingReport {
            latency: self.latency,
            by_status: self.by_status,
            billing: self.billing,
            cold_starts,
            resilience: self.resilience,
            overload: self.overload,
            batch,
            brownout: self.brownout.map(|c| c.counters).unwrap_or_default(),
            pipeline,
            recovery: self.recovery,
        }
    }
}

/// Decorrelates the pipelined path's per-`(query, stage)` RNG streams from
/// the run seed's arrival stream.
const PIPELINE_RNG_SALT: u64 = 0x7069_7065_6c69_6e65; // "pipeline"

/// Fault-site salt for speculative re-executions: a duplicate that redrew
/// the primary's site-keyed faults would deterministically repeat its
/// straggle.
const SPEC_QUERY_SALT: u64 = 0x5350_4543; // "SPEC"

/// Fault-site salt for checkpoint-resume retries of a failed group: a
/// resumed attempt that redrew the failed attempt's site-keyed faults would
/// deterministically fail again.
const RESUME_QUERY_SALT: u64 = 0x5245_5355; // "RESU"

/// Hard cap on orchestrator crashes handled per query. The crash
/// probability is capped well below 1 ([`FaultInjector::orchestrator_crash`]
/// caps at 0.75) so endless re-fire is astronomically unlikely; the loop
/// bound makes worst-case behavior finite by construction.
const MAX_ORCH_INCARNATIONS: u32 = 16;

/// Name of the stage-`gi` orchestrator function (the per-stage analogue of
/// `"master"`, packaged with the group's master-resident weights).
fn stage_fn(gi: usize) -> String {
    format!("s{gi}")
}

/// Per-query bookkeeping inside the pipelined serving loop.
#[derive(Debug, Clone, Copy)]
struct PipeQuery {
    arrival: Micros,
    deadline: Option<Micros>,
    level: BrownoutLevel,
    /// Non-terminal status accumulated so far (`Ok`, sticky `Degraded`).
    status: QueryStatus,
    /// First-attempt `(count, successes)` produced by this query's stage
    /// executions, scored into the brownout controller at finalization.
    health: (u64, u64),
    /// Orchestrator crashes this query has survived; keys crash sampling so
    /// a replacement orchestrator samples a fresh draw instead of
    /// deterministically re-crashing at the same boundary.
    incarnation: u32,
    /// Cumulative stage execution time in milliseconds — the work a full
    /// restart would redo, recorded in each boundary checkpoint.
    elapsed_ms: f64,
}

impl Default for PipeQuery {
    fn default() -> Self {
        PipeQuery {
            arrival: Micros::ZERO,
            deadline: None,
            level: BrownoutLevel::Full,
            status: QueryStatus::Ok,
            health: (0, 0),
            incarnation: 0,
            elapsed_ms: 0.0,
        }
    }
}

/// The pipelined serving loop's mutable state: per-stage lanes, bounded
/// dispatch queues, the parking list that implements backpressure, and the
/// completion-event heap. Everything runs sequentially on the caller over a
/// totally ordered event stream — see
/// [`ForkJoinRuntime::serve_open_loop_pipelined`] for the determinism
/// argument.
struct PipelineSim<'r, 'a> {
    rt: &'r ForkJoinRuntime<'a>,
    policy: PipelinePolicy,
    seed: u64,
    stages: usize,
    fleet: Fleet,
    st: ServingState,
    counters: PipelineCounters,
    breakers: Option<Vec<Vec<CircuitBreaker>>>,
    /// Free orchestrator lanes per stage.
    free: Vec<usize>,
    /// Bounded per-stage dispatch queues; stage 0's doubles as the
    /// admission queue. Invariant: a stage with a free lane has an empty
    /// queue.
    queues: Vec<VecDeque<u64>>,
    /// `parked[s]`: queries that finished stage `s` but found stage
    /// `s + 1`'s queue full. They hold their stage-`s` lane until a
    /// downstream slot opens — backpressure propagates upstream as lost
    /// lanes, never as dropped queries.
    parked: Vec<VecDeque<u64>>,
    /// Per-query slots, indexed by query id.
    q: Vec<PipeQuery>,
    /// Pending stage completions, totally ordered by
    /// `(virtual time, stage, query)`.
    events: BinaryHeap<Reverse<(Micros, u32, u64)>>,
}

impl PipelineSim<'_, '_> {
    /// RNG for query `q`'s execution at stage `s`: a pure function of
    /// `(run seed, q, s)`, so event interleaving can never shift which
    /// draws an execution sees.
    fn stage_rng(&self, q: u64, s: usize) -> StdRng {
        StdRng::seed_from_u64(replication_seed(
            self.seed ^ PIPELINE_RNG_SALT,
            q * self.stages as u64 + s as u64,
        ))
    }

    /// Replay analogue of [`Self::stage_rng`] for a replacement
    /// orchestrator's re-executions after crash number `incarnation`: a
    /// decorrelated noise stream, so a restarted stage does not redraw the
    /// exact jitter that accompanied the crash. Faults stay site-keyed by
    /// `(query, group, part, attempt)` and therefore repeat — a stage that
    /// succeeded before the crash succeeds again, which is what makes the
    /// restart converge.
    fn replay_rng(&self, q: u64, s: usize, incarnation: u32) -> StdRng {
        StdRng::seed_from_u64(replication_seed(
            replication_seed(self.seed ^ PIPELINE_RNG_SALT, u64::from(incarnation)),
            q * self.stages as u64 + s as u64,
        ))
    }

    /// Charges the worker invocations planned from stage `from` onward as
    /// cancelled — the accounting for a query that dies mid-pipeline.
    fn cancelled_from(&mut self, from: usize) {
        let remaining: u64 = self.rt.plan.groups()[from..]
            .iter()
            .map(|g| g.worker_count() as u64)
            .sum();
        self.st.overload.cancelled_attempts += remaining;
    }

    /// Tracks queue-depth peaks after a push to stage `s`'s queue.
    fn note_queue_depth(&mut self, s: usize) {
        let depth = self.queues[s].len() as u64;
        self.counters.peak_stage_queue = self.counters.peak_stage_queue.max(depth);
        if s == 0 {
            self.st.overload.peak_queue_depth = self.st.overload.peak_queue_depth.max(depth);
        }
    }

    /// Records query `qid`'s terminal outcome at `done`: exactly one
    /// latency sample and one status tally per admitted query, plus the
    /// brownout health observation — in finalization (event) order.
    fn finalize(&mut self, qid: u64, done: Micros, status: QueryStatus) {
        let slot = self.q[qid as usize];
        let mut status = status;
        if let Some(d) = slot.deadline {
            if done > d && matches!(status, QueryStatus::Ok | QueryStatus::Degraded) {
                status = QueryStatus::DeadlineExceeded;
            }
        }
        self.st.record(slot.arrival, done, status);
        self.st.resilience.record_status(status);
        if let Some(ctl) = self.st.brownout.as_mut() {
            ctl.observe(slot.health.0, slot.health.1);
        }
    }

    /// Admits, queues, or sheds the arrival of query `qid` at `now`.
    fn arrive(&mut self, qid: u64, now: Micros) -> Result<()> {
        // Brownout front door first, exactly like the other open loops.
        let Some(level) = self.st.front_door() else {
            return Ok(());
        };
        let deadline = self
            .rt
            .overload
            .as_ref()
            .and_then(|ov| ov.policy.deadline_at(now));
        // Shed decisions are pure functions of queue state — no RNG is
        // consumed, so admitted queries' draws do not depend on how many
        // arrivals were shed before them.
        if let Some(ov) = &self.rt.overload {
            if ov.policy.shed_on_predicted_miss {
                if let Some(d) = deadline {
                    if now + Micros::from_ms(ov.predicted_ms) > d {
                        self.st.overload.shed_predicted_miss += 1;
                        self.st.shed();
                        return Ok(());
                    }
                }
            }
        }
        if self.free[0] == 0 && self.queues[0].len() >= self.policy.queue_depth {
            self.st.overload.shed_queue_full += 1;
            self.st.shed();
            return Ok(());
        }
        self.st.overload.admitted += 1;
        self.q[qid as usize] = PipeQuery {
            arrival: now,
            deadline,
            level,
            status: QueryStatus::Ok,
            health: (0, 0),
            incarnation: 0,
            elapsed_ms: 0.0,
        };
        if self.free[0] > 0 {
            self.start_or_kill(0, qid, now)?;
        } else {
            self.queues[0].push_back(qid);
            self.note_queue_depth(0);
        }
        Ok(())
    }

    /// Dispatch checkpoint: starts query `qid` on stage `s` at `t`, or —
    /// when its deadline already expired while it waited — kills it with an
    /// explicit `DeadlineExceeded` (admitted queries are never silently
    /// dropped). A kill consumes no lane.
    fn start_or_kill(&mut self, s: usize, qid: u64, t: Micros) -> Result<()> {
        let deadline = self.q[qid as usize].deadline;
        if deadline.is_some_and(|d| t >= d) {
            self.cancelled_from(s);
            self.finalize(qid, t, QueryStatus::DeadlineExceeded);
            return Ok(());
        }
        self.free[s] -= 1;
        self.exec(s, qid, t)
    }

    /// Executes stage `s` for query `qid` starting at `t` on a lane the
    /// caller already reserved: inbound hand-off transfer, then the group
    /// body (fork/join with the full retry/breaker/budget machinery, or
    /// orchestrator-local compute below the brownout local-only rung).
    fn exec(&mut self, s: usize, qid: u64, t: Micros) -> Result<()> {
        let rt = self.rt;
        self.counters.stage_dispatches += 1;
        let slot = self.q[qid as usize];
        let mut rng = self.stage_rng(qid, s);
        let g = &rt.plan.groups()[s];
        let a = &rt.analyses[s];
        let fname = stage_fn(s);
        let orch = self.fleet.acquire(&fname, t)?;
        let mut now = orch.ready_at;
        let began = now;
        if s > 0 {
            // Inter-stage hand-off: the upstream stage ships this query's
            // activation before compute starts (stage 0 receives the
            // request payload for free, like the fork-join master). Ships
            // quantized from the int8 brownout rung down, like fork/join
            // payloads.
            let wire_fmt = if slot.level >= BrownoutLevel::Int8 {
                TransferFormat::Int8
            } else {
                rt.transfer_format
            };
            let bytes = wire_fmt.wire_bytes(rt.model.layers()[g.start].in_bytes());
            now += Micros::from_ms(rt.sample_transfer_parts(&[bytes], &mut rng));
            self.counters.handoffs += 1;
        }
        let window = self.st.health_window();
        let run = if slot.level >= BrownoutLevel::LocalOnly {
            // Local-fallback-only rung: the stage orchestrator computes
            // every partition of its group itself, serially — no worker
            // lanes, no fault sites, no retries.
            let mut end = now;
            let mut degraded = false;
            for (pi, p) in a.partitions.iter().enumerate() {
                let is_worker = match g.placement {
                    Placement::Master => false,
                    Placement::Workers => true,
                    Placement::MasterAndWorkers => pi > 0,
                };
                if is_worker {
                    self.st.resilience.degraded_shards += 1;
                    degraded = true;
                }
                end += Micros::from_ms(rt.sample_compute_ms(p, &mut rng));
            }
            GroupRun {
                end,
                status: if degraded {
                    QueryStatus::Degraded
                } else {
                    QueryStatus::Ok
                },
            }
        } else {
            rt.run_group_on_fleet(
                s,
                g,
                a,
                &rt.attempt_p95_ms,
                &mut self.fleet,
                &mut self.st.billing,
                now,
                &mut rng,
                qid,
                slot.deadline,
                self.breakers.as_deref_mut(),
                &mut self.st.overload,
                &mut self.st.resilience,
                slot.level,
                self.st.budget.as_mut(),
            )?
        };
        {
            let slot = &mut self.q[qid as usize];
            slot.health.0 += self.st.resilience.first_attempts - window.0;
            slot.health.1 += self.st.resilience.first_attempt_successes - window.1;
            if run.status == QueryStatus::Degraded {
                slot.status = QueryStatus::Degraded;
            }
        }
        let mut end = run.end;
        let mut status = run.status;
        if matches!(status, QueryStatus::Ok | QueryStatus::Degraded) {
            (end, status) = self.checkpoint_and_crash(s, qid, began, end, status)?;
        }
        // The orchestrator bills its busy window (failover replays
        // included); worker lanes billed themselves inside the group body.
        self.st
            .billing
            .record((end - began).as_ms(), rt.platform.instance_memory_bytes);
        self.fleet.release(&fname, end)?;
        match status {
            QueryStatus::Failed => {
                // Terminal mid-pipeline: an error response, downstream
                // stages never see the query.
                self.free[s] += 1;
                self.finalize(qid, end, QueryStatus::Failed);
                self.cascade(s, end)
            }
            QueryStatus::DeadlineExceeded => {
                self.cancelled_from(s + 1);
                self.free[s] += 1;
                self.finalize(qid, end, QueryStatus::DeadlineExceeded);
                self.cascade(s, end)
            }
            _ => {
                self.events.push(Reverse((end, s as u32, qid)));
                Ok(())
            }
        }
    }

    /// Stage-boundary recovery bookkeeping after query `qid` completed
    /// stage `s` at `end`: stores the boundary checkpoint *first* (so a
    /// crash sampled at this boundary always finds its own stage's output),
    /// then samples orchestrator crashes as a pure function of
    /// `(chaos seed, qid, s, incarnation)`. A crash with a live checkpoint
    /// failover-replays — the replacement orchestrator pays only the
    /// failover delay and re-executes nothing past the checkpointed
    /// boundary; without one it re-executes the lost stages serially on
    /// this lane (the classic full restart). Returns the stage's final
    /// `(end, status)`.
    fn checkpoint_and_crash(
        &mut self,
        s: usize,
        qid: u64,
        began: Micros,
        mut end: Micros,
        mut status: QueryStatus,
    ) -> Result<(Micros, QueryStatus)> {
        let rt = self.rt;
        let token = rt.weight_token;
        self.q[qid as usize].elapsed_ms += (end - began).as_ms();
        {
            let st = &mut self.st;
            if let Some(cache) = st.checkpoints.as_mut() {
                let slot = &self.q[qid as usize];
                cache.put(
                    qid,
                    s as u32,
                    token,
                    StageCheckpoint {
                        elapsed_ms: slot.elapsed_ms,
                        degraded: slot.status == QueryStatus::Degraded,
                        stored_at_ms: end.as_ms(),
                    },
                    &mut st.recovery,
                );
            }
        }
        let Some(inj) = rt.injector.as_ref() else {
            return Ok((end, status));
        };
        loop {
            let inc = self.q[qid as usize].incarnation;
            if inc >= MAX_ORCH_INCARNATIONS {
                break;
            }
            let mult = rt.orchestrator_outage_multiplier(end.as_ms());
            if !inj.orchestrator_crash(qid, s as u32, inc, mult) {
                break;
            }
            self.q[qid as usize].incarnation = inc + 1;
            let failover_ms = rt
                .recovery
                .as_ref()
                .map_or(DEFAULT_FAILOVER_MS, |p| p.failover_ms);
            let hit = {
                let st = &mut self.st;
                match (rt.recovery.is_some(), st.checkpoints.as_mut()) {
                    (true, Some(c)) => {
                        c.latest_before(qid, s as u32, token, end.as_ms(), &mut st.recovery)
                    }
                    _ => None,
                }
            };
            self.st.recovery.orchestrator_crashes += 1;
            end += Micros::from_ms(failover_ms);
            let resume_from = match hit {
                Some((k, ck)) => {
                    // Failover replay: in-flight state reconstructs from
                    // the checkpoint; stages `0..=k` are never re-executed.
                    self.st.recovery.failover_replays += 1;
                    self.st.recovery.stages_saved += u64::from(k) + 1;
                    self.st.recovery.recompute_avoided_ms += ck.elapsed_ms;
                    if ck.degraded {
                        status = QueryStatus::Degraded;
                        self.q[qid as usize].status = QueryStatus::Degraded;
                    }
                    k as usize + 1
                }
                None => {
                    // No usable checkpoint: full restart from stage 0.
                    self.st.recovery.full_restarts += 1;
                    0
                }
            };
            // Re-execute whatever the checkpoints do not cover, serially on
            // this lane (empty on a full hit at this boundary).
            let inc_now = self.q[qid as usize].incarnation;
            for j in resume_from..=s {
                let g = &rt.plan.groups()[j];
                let a = &rt.analyses[j];
                let mut rng = self.replay_rng(qid, j, inc_now);
                let slot = self.q[qid as usize];
                let run = rt.run_group_on_fleet(
                    j,
                    g,
                    a,
                    &rt.attempt_p95_ms,
                    &mut self.fleet,
                    &mut self.st.billing,
                    end,
                    &mut rng,
                    qid,
                    slot.deadline,
                    self.breakers.as_deref_mut(),
                    &mut self.st.overload,
                    &mut self.st.resilience,
                    slot.level,
                    self.st.budget.as_mut(),
                )?;
                match run.status {
                    QueryStatus::Ok => {}
                    QueryStatus::Degraded => {
                        status = QueryStatus::Degraded;
                        self.q[qid as usize].status = QueryStatus::Degraded;
                    }
                    terminal => return Ok((run.end, terminal)),
                }
                self.q[qid as usize].elapsed_ms += (run.end - end).as_ms();
                end = run.end;
                let st = &mut self.st;
                if let Some(cache) = st.checkpoints.as_mut() {
                    let slot = &self.q[qid as usize];
                    cache.put(
                        qid,
                        j as u32,
                        token,
                        StageCheckpoint {
                            elapsed_ms: slot.elapsed_ms,
                            degraded: slot.status == QueryStatus::Degraded,
                            stored_at_ms: end.as_ms(),
                        },
                        &mut st.recovery,
                    );
                }
            }
            // The loop samples this boundary again under the replacement
            // orchestrator's own incarnation — replacements can crash too.
        }
        Ok((end, status))
    }

    /// Handles the completion of stage `s` for query `qid` at `t`: advance
    /// downstream, queue, or park under backpressure.
    fn complete(&mut self, s: usize, qid: u64, t: Micros) -> Result<()> {
        if s + 1 == self.stages {
            let status = self.q[qid as usize].status;
            self.free[s] += 1;
            self.finalize(qid, t, status);
            return self.cascade(s, t);
        }
        let next = s + 1;
        if self.free[next] > 0 {
            // Invariant: a free lane means an empty queue, so the query
            // starts downstream immediately.
            self.free[s] += 1;
            self.start_or_kill(next, qid, t)?;
            self.cascade(s, t)
        } else if self.queues[next].len() < self.policy.queue_depth {
            self.queues[next].push_back(qid);
            self.note_queue_depth(next);
            self.free[s] += 1;
            self.cascade(s, t)
        } else {
            // Downstream full: park holding the stage-`s` lane.
            self.parked[s].push_back(qid);
            self.counters.backpressure_stalls += 1;
            Ok(())
        }
    }

    /// Drains stage `s`'s queue into its free lanes at `t`. Every pop opens
    /// a queue slot, which promotes the oldest query parked upstream (and
    /// recursively frees *its* lane) — backpressure releases in FIFO order,
    /// upstream-ward.
    fn cascade(&mut self, s: usize, t: Micros) -> Result<()> {
        while self.free[s] > 0 {
            let Some(qid) = self.queues[s].pop_front() else {
                break;
            };
            self.promote_into(s, t)?;
            self.start_or_kill(s, qid, t)?;
        }
        Ok(())
    }

    /// A slot opened in stage `s`'s queue: promote the oldest query parked
    /// at stage `s - 1` into it and release the lane it was holding.
    fn promote_into(&mut self, s: usize, t: Micros) -> Result<()> {
        if s == 0 {
            return Ok(());
        }
        let up = s - 1;
        if let Some(p) = self.parked[up].pop_front() {
            self.queues[s].push_back(p);
            self.note_queue_depth(s);
            self.free[up] += 1;
            self.cascade(up, t)?;
        }
        Ok(())
    }
}

/// The plan executor over the simulated platform.
#[derive(Debug, Clone)]
pub struct ForkJoinRuntime<'a> {
    model: &'a LinearModel,
    plan: &'a ExecutionPlan,
    platform: PlatformProfile,
    analyses: Vec<GroupAnalysis>,
    injector: Option<FaultInjector>,
    policy: ResiliencePolicy,
    overload: Option<OverloadRuntime>,
    /// Correlated-outage episodes scaling the injector's failure rates per
    /// fault domain; `None` leaves the per-site sampler untouched.
    outage: Option<OutageModel>,
    /// Retry-budget policy for the fleet serving paths; `None` allows
    /// unbounded retries/hedges (the pre-budget behavior).
    retry_budget: Option<RetryBudgetPolicy>,
    /// Brownout degradation ladder for the serving loops; `None` serves
    /// every arrival at full service.
    brownout: Option<BrownoutPolicy>,
    /// Stage-level checkpointed recovery; `None` disables the checkpoint
    /// cache, resume retries, and speculation — orchestrator crashes (still
    /// sampled by the chaos config) then always restart from stage 0.
    recovery: Option<RecoveryPolicy>,
    /// Weight-identity token keying every checkpoint: a deterministic fold
    /// over the plan's partition shapes and weight bytes, so a redeployed
    /// model or repartitioned plan can never resume from a stale activation.
    weight_token: u64,
    /// Predicted p95 of the whole plan (sum over groups of the slowest
    /// partition's attempt p95) — the denominator that prices a resumed
    /// retry at its stage's share of the plan.
    plan_p95_total_ms: f64,
    /// Wire encoding of fork/join payloads: every sampled transfer maps its
    /// raw f32 activation bytes through this format, mirroring
    /// `PerfModel::wire_bytes` so simulation and prediction price the same
    /// payloads.
    transfer_format: TransferFormat,
    /// Predicted p95 of one attempt per `[group][partition]`: mean compute
    /// at the 95th noise percentile plus the invocation-jitter p95. Timeouts
    /// and hedge delays are multiples of this, so they scale with the
    /// partition instead of being absolute knobs.
    attempt_p95_ms: Vec<Vec<f64>>,
}

impl<'a> ForkJoinRuntime<'a> {
    /// Prepares a runtime for a validated plan with the default
    /// [`ResiliencePolicy`]. A nonzero
    /// `PlatformProfile::invocation_failure_rate` is expressed as a
    /// [`ChaosConfig::invoke_only`] injector (fixed seed), so the legacy
    /// knob and explicit chaos configs share one failure model.
    ///
    /// # Errors
    ///
    /// Returns plan-validation errors; the plan must fit the platform's
    /// model memory budget.
    pub fn new(
        model: &'a LinearModel,
        plan: &'a ExecutionPlan,
        platform: PlatformProfile,
    ) -> Result<Self> {
        plan.validate(model, platform.model_memory_budget)?;
        let analyses = plan.analyses(model)?;
        let injector = if platform.invocation_failure_rate > 0.0 {
            let rate = platform.invocation_failure_rate.min(1.0);
            Some(ChaosConfig::invoke_only(rate, LEGACY_FAILURE_SEED).build()?)
        } else {
            None
        };
        let attempt_p95_ms = attempt_p95_for(&platform, &analyses);
        let plan_p95_total_ms = (0..attempt_p95_ms.len())
            .map(|gi| group_p95_ms(&attempt_p95_ms, gi))
            .sum();
        let weight_token = weight_identity_token(&analyses);
        Ok(ForkJoinRuntime {
            model,
            plan,
            platform,
            analyses,
            injector,
            policy: ResiliencePolicy::default(),
            overload: None,
            outage: None,
            retry_budget: None,
            brownout: None,
            recovery: None,
            weight_token,
            plan_p95_total_ms,
            transfer_format: TransferFormat::default(),
            attempt_p95_ms,
        })
    }

    /// Sets the wire encoding of fork/join payloads. Pair with a
    /// [`gillis_perf::PerfModel`] carrying the same format so the planner
    /// optimized for the bytes this runtime actually ships.
    pub fn with_transfer_format(mut self, format: TransferFormat) -> Self {
        self.transfer_format = format;
        self
    }

    /// Bytes a raw f32 payload occupies on this runtime's wire.
    fn wire(&self, raw_bytes: u64) -> u64 {
        self.transfer_format.wire_bytes(raw_bytes)
    }

    /// Replaces the fault injector with one built from `config` (overriding
    /// any injector derived from the platform's legacy failure-rate knob).
    ///
    /// # Errors
    ///
    /// Returns the config's validation error.
    pub fn with_chaos(mut self, config: ChaosConfig) -> Result<Self> {
        self.injector = Some(config.build()?);
        Ok(self)
    }

    /// Sets the resilience policy.
    pub fn with_policy(mut self, policy: ResiliencePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables correlated-outage episodes: Markov on/off windows per fault
    /// domain (platform, worker lane, memory tier) that multiply the
    /// injector's invoke-failure and straggler rates by the configured
    /// severity while active. Episode membership is a pure function of
    /// `(outage seed, domain, virtual-time window)`, so serving stays
    /// bit-identical across thread counts. Without a chaos injector the
    /// model is inert — there are no rates to scale.
    ///
    /// # Errors
    ///
    /// Returns the config's validation error.
    pub fn with_outage(mut self, config: OutageConfig) -> Result<Self> {
        self.outage = Some(config.build().map_err(CoreError::from)?);
        Ok(self)
    }

    /// Enables an adaptive retry budget on the fleet serving paths: a
    /// deterministic token bucket, refilled by successful first attempts,
    /// that every retry and hedge must debit before launching. When the
    /// bucket is dry the lane falls through to local fallback instead of
    /// amplifying load into the outage.
    ///
    /// # Errors
    ///
    /// Returns the policy's validation error.
    pub fn with_retry_budget(mut self, policy: RetryBudgetPolicy) -> Result<Self> {
        policy.validate().map_err(CoreError::from)?;
        self.retry_budget = Some(policy);
        Ok(self)
    }

    /// Enables the brownout degradation ladder on the serving loops: a
    /// windowed first-attempt health score steps service down through
    /// full → no-hedging → int8 wire → local-fallback-only → shed, and
    /// back up only after consecutive clean windows (hysteresis).
    ///
    /// # Errors
    ///
    /// Returns the policy's validation error.
    pub fn with_brownout(mut self, policy: BrownoutPolicy) -> Result<Self> {
        policy.validate().map_err(CoreError::from)?;
        self.brownout = Some(policy);
        Ok(self)
    }

    /// Enables stage-level checkpointed recovery on the serving paths:
    /// completed layer groups store deterministic boundary checkpoints so
    /// failed groups retry from the last checkpointed boundary, straggler
    /// groups past `spec_factor` × their predicted p95 get a speculative
    /// duplicate (first result wins), orchestrator crashes failover-replay
    /// instead of restarting from stage 0, and retry-budget debits price
    /// resumed attempts at their marginal cost — the stage's share of the
    /// plan rather than a full token.
    ///
    /// # Errors
    ///
    /// Returns the policy's validation error.
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Result<Self> {
        policy.validate().map_err(CoreError::from)?;
        self.recovery = Some(policy);
        Ok(self)
    }

    /// Marginal retry-budget cost of re-running one partition whose attempt
    /// p95 is `p95_ms`: with stage-level recovery a retry or hedge redoes
    /// only its own stage, so it debits the stage's share of the plan;
    /// without recovery every retry implicitly restarts the query and costs
    /// a full token — the pre-recovery behavior, unchanged.
    fn retry_unit_cost(&self, p95_ms: f64) -> f64 {
        if self.recovery.is_some() {
            gillis_perf::marginal_retry_cost(p95_ms, self.plan_p95_total_ms)
        } else {
            1.0
        }
    }

    /// Outage rate multiplier for the orchestrator fault domain at virtual
    /// time `now_ms` — scales crash sampling at stage boundaries, `1.0`
    /// without an outage model.
    fn orchestrator_outage_multiplier(&self, now_ms: f64) -> f64 {
        match &self.outage {
            Some(o) => o.orchestrator_multiplier(now_ms),
            None => 1.0,
        }
    }

    /// Outage rate multiplier for a lane at virtual time `now_ms`: the
    /// product of every active enabled domain's severity, `1.0` when no
    /// outage model is installed or no episode covers the instant.
    fn outage_multiplier(&self, group: u32, part: u32, now_ms: f64) -> f64 {
        match &self.outage {
            Some(o) => o.multiplier(
                group,
                part,
                self.platform.instance_memory_bytes / 1_000_000,
                now_ms,
            ),
            None => 1.0,
        }
    }

    /// Enables overload protection: a bounded admission queue with
    /// deadline-derived shedding in [`Self::serve_open_loop`], deadline
    /// propagation with cooperative cancellation into every fork-join
    /// group, and per-worker-lane circuit breakers. The plan's predicted
    /// warm latency (analytic performance model) feeds the
    /// shed-on-predicted-miss decision; use
    /// [`Self::with_overload_predicted`] to supply a prediction from a
    /// profiled model instead.
    ///
    /// # Errors
    ///
    /// Returns the policy's validation error, or prediction errors.
    pub fn with_overload(self, policy: OverloadPolicy) -> Result<Self> {
        let perf = gillis_perf::PerfModel::analytic(&self.platform);
        let predicted_ms = crate::predict::predict_plan(self.model, self.plan, &perf)?.latency_ms;
        self.with_overload_predicted(policy, predicted_ms)
    }

    /// [`Self::with_overload`] with an explicit predicted warm latency for
    /// the plan (e.g. `PlanPrediction::latency_ms` from a profiled
    /// performance model).
    ///
    /// # Errors
    ///
    /// Returns the policy's validation error, or
    /// [`CoreError::InvalidArgument`] for a non-positive prediction.
    pub fn with_overload_predicted(
        mut self,
        policy: OverloadPolicy,
        predicted_ms: f64,
    ) -> Result<Self> {
        policy.validate().map_err(CoreError::from)?;
        // NaN-rejecting: the prediction must be definitely positive.
        if predicted_ms.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
            || !predicted_ms.is_finite()
        {
            return Err(CoreError::InvalidArgument(format!(
                "predicted latency must be positive and finite: {predicted_ms}"
            )));
        }
        self.overload = Some(OverloadRuntime {
            policy,
            predicted_ms,
        });
        Ok(self)
    }

    /// Fresh per-lane circuit breakers shaped like the plan (one per
    /// partition slot, including master slots for stable indexing), or
    /// `None` when the breaker policy is disabled.
    fn breaker_bank(&self, policy: &OverloadPolicy) -> Option<Vec<Vec<CircuitBreaker>>> {
        policy.breaker.enabled().then(|| {
            self.analyses
                .iter()
                .map(|a| {
                    a.partitions
                        .iter()
                        .map(|_| CircuitBreaker::new(policy.breaker))
                        .collect()
                })
                .collect()
        })
    }

    fn sample_compute_ms<R: RngExt + ?Sized>(&self, work: &PartitionWork, rng: &mut R) -> f64 {
        work.flops
            .iter()
            .map(|&(class, flops)| self.platform.compute_ms_noisy(flops, class, rng))
            .sum()
    }

    /// Samples the master-side delay of exchanging one payload per part with
    /// `sizes.len()` functions: payload streams serialize over the master's
    /// egress (one transfer of the total bytes) while the per-invocation
    /// jitters overlap and cost their maximum. This is *the* fork/join
    /// model — [`ForkJoinRuntime::simulate_query`] and the fleet path
    /// ([`ForkJoinRuntime::run_query_at`] / workload serving) both sample
    /// it, so single-query simulation and fleet serving agree by
    /// construction, and both match the order-statistic predictor
    /// (`CommModel::group_transfer_parts_ms`) in expectation.
    fn sample_transfer_parts<R: RngExt + ?Sized>(&self, sizes: &[u64], rng: &mut R) -> f64 {
        let total: u64 = sizes.iter().sum();
        let jitter_max = (0..sizes.len())
            .map(|_| self.platform.invoke_latency_ms.sample(rng))
            .fold(0.0f64, f64::max);
        jitter_max + self.platform.transfer_ms(total)
    }

    /// Samples one worker-lane execution: invocation jitter (unless the fork
    /// transfer covered it), noisy compute, the injected fault at `site`,
    /// and the per-attempt timeout cap. Both simulated serving paths run
    /// every lane through this — the single shared failure model.
    fn sample_lane<R: RngExt + ?Sized>(
        &self,
        site: FaultSite,
        work: &PartitionWork,
        jitter_covered_by_fork: bool,
        timeout_ms: f64,
        now_ms: f64,
        rng: &mut R,
    ) -> LaneExec {
        let jitter_ms = if jitter_covered_by_fork {
            0.0
        } else {
            self.platform.invoke_latency_ms.sample(rng)
        };
        let compute_ms = self.sample_compute_ms(work, rng);
        let mult = self.outage_multiplier(site.group, site.part, now_ms);
        let fault = self
            .injector
            .as_ref()
            .and_then(|inj| inj.fault_scaled(site, mult));
        let (natural_ms, ok) = match fault {
            None => (compute_ms, true),
            // Fails right after the invocation round-trip.
            Some(Fault::InvokeFailure) => (0.0, false),
            Some(Fault::Crash { work_done }) => (work_done * compute_ms, false),
            Some(Fault::Straggler { slowdown }) => (slowdown * compute_ms, true),
            // Full compute, but the master rejects the response at the join.
            Some(Fault::Corrupt) => (compute_ms, false),
        };
        if jitter_ms + natural_ms > timeout_ms {
            LaneExec {
                jitter_ms,
                run_ms: (timeout_ms - jitter_ms).max(0.0),
                billed_ms: natural_ms,
                success: false,
                corrupt: false,
                timed_out: true,
            }
        } else {
            LaneExec {
                jitter_ms,
                run_ms: natural_ms,
                billed_ms: natural_ms,
                success: ok,
                // A corrupted payload only reaches the join if the master
                // actually waited for it.
                corrupt: matches!(fault, Some(Fault::Corrupt)),
                timed_out: false,
            }
        }
    }

    /// Runs one worker partition to resolution in time relative to the
    /// group's dispatch: attempts with backoff, an optional hedge per
    /// attempt (first success wins), billing every launched lane into
    /// `worker_ms` (the accepted lane also carries the payload transfer).
    ///
    /// Returns `(resolution, master_observed_end)`: `resolution` is the
    /// accepted result's arrival time, `None` when the retry budget is
    /// exhausted; `master_observed_end` is when the master stopped waiting.
    #[allow(clippy::too_many_arguments)]
    fn simulate_worker<R: RngExt + ?Sized>(
        &self,
        query: u64,
        group: u32,
        part: u32,
        work: &PartitionWork,
        p95_ms: f64,
        base_ms: f64,
        rng: &mut R,
        worker_ms: &mut Vec<f64>,
        counters: &mut ResilienceCounters,
    ) -> (Option<f64>, f64) {
        let timeout_ms = self.policy.attempt_timeout_factor * p95_ms;
        let hedge_delay_ms = self.policy.hedge_delay_factor * p95_ms;
        let transfer_ms = self
            .platform
            .transfer_ms(self.wire(work.input_bytes) + self.wire(work.output_bytes));
        let max_attempts = self.policy.max_attempts.max(1);
        let mut t = 0.0f64;
        for attempt in 0..max_attempts {
            let p_site = FaultSite {
                query,
                group,
                part,
                attempt,
                lane: 0,
            };
            let primary =
                self.sample_lane(p_site, work, attempt == 0, timeout_ms, base_ms + t, rng);
            counters.worker_invocations += 1;
            if attempt == 0 {
                counters.first_attempts += 1;
                if primary.success {
                    counters.first_attempt_successes += 1;
                }
            }
            if primary.timed_out {
                counters.timeouts += 1;
            }
            if primary.corrupt {
                counters.corruptions_detected += 1;
            }
            let p_end = t + primary.jitter_ms + primary.run_ms;
            let mut resolved = primary.success.then_some(p_end);
            let mut attempt_end = p_end;
            let mut hedge_won = false;
            let mut hedge_exec: Option<LaneExec> = None;
            if self.policy.hedged() {
                let hedge_at = t + hedge_delay_ms;
                if p_end > hedge_at {
                    let hedge = self.sample_lane(
                        FaultSite { lane: 1, ..p_site },
                        work,
                        false,
                        timeout_ms,
                        base_ms + hedge_at,
                        rng,
                    );
                    counters.hedges += 1;
                    counters.worker_invocations += 1;
                    if hedge.timed_out {
                        counters.timeouts += 1;
                    }
                    if hedge.corrupt {
                        counters.corruptions_detected += 1;
                    }
                    let h_end = hedge_at + hedge.jitter_ms + hedge.run_ms;
                    if hedge.success && resolved.is_none_or(|r| h_end < r) {
                        hedge_won = true;
                        resolved = Some(h_end);
                    }
                    attempt_end = attempt_end.max(h_end);
                    hedge_exec = Some(hedge);
                }
            }
            if hedge_won {
                counters.hedge_wins += 1;
            }
            let primary_carries = resolved.is_some() && !hedge_won;
            worker_ms.push(primary.billed_ms + if primary_carries { transfer_ms } else { 0.0 });
            if let Some(hedge) = hedge_exec {
                worker_ms.push(hedge.billed_ms + if hedge_won { transfer_ms } else { 0.0 });
            }
            if let Some(r) = resolved {
                return (Some(r), r);
            }
            if attempt + 1 < max_attempts {
                counters.retries += 1;
                let unit = self
                    .injector
                    .as_ref()
                    .map_or(0.5, |inj| inj.backoff_unit(p_site));
                t = attempt_end + self.policy.backoff_ms(attempt, unit);
            } else {
                return (None, attempt_end);
            }
        }
        (None, t)
    }

    /// Simulates one query on warm instances, sampling compute noise and
    /// communication jitter. Equivalent to
    /// [`simulate_query_at`](Self::simulate_query_at) with query index 0.
    pub fn simulate_query<R: RngExt + ?Sized>(&self, rng: &mut R) -> QueryOutcome {
        self.simulate_query_at(0, rng)
    }

    /// Simulates warm query number `query`: the index keys fault sampling
    /// ([`FaultSite::query`]), so distinct queries draw independent faults
    /// while the same `(chaos seed, query)` pair always faults identically —
    /// whatever thread runs it.
    pub fn simulate_query_at<R: RngExt + ?Sized>(&self, query: u64, rng: &mut R) -> QueryOutcome {
        let mut latency = 0.0;
        let mut group_ms = Vec::with_capacity(self.analyses.len());
        let mut worker_ms = Vec::new();
        let mut counters = ResilienceCounters::default();
        let mut status = QueryStatus::Ok;
        for (gi, (g, a)) in self
            .plan
            .groups()
            .iter()
            .zip(self.analyses.iter())
            .enumerate()
        {
            let (fork, compute, join) = match g.placement {
                Placement::Master => (0.0, self.sample_compute_ms(&a.partitions[0], rng), 0.0),
                Placement::Workers | Placement::MasterAndWorkers => {
                    let offset = if g.placement == Placement::Workers {
                        0
                    } else {
                        1
                    };
                    let worker_parts = &a.partitions[offset..];
                    let master_compute = if offset == 1 {
                        self.sample_compute_ms(&a.partitions[0], rng)
                    } else {
                        0.0
                    };
                    if worker_parts.is_empty() {
                        (0.0, master_compute, 0.0)
                    } else {
                        let ins: Vec<u64> = worker_parts
                            .iter()
                            .map(|p| self.wire(p.input_bytes))
                            .collect();
                        let outs: Vec<u64> = worker_parts
                            .iter()
                            .map(|p| self.wire(p.output_bytes))
                            .collect();
                        let fork = self.sample_transfer_parts(&ins, rng);
                        let join = self.sample_transfer_parts(&outs, rng);
                        let mut slowest = master_compute;
                        let mut exhausted: Vec<usize> = Vec::new();
                        for (pi, p) in worker_parts.iter().enumerate() {
                            let part_idx = pi + offset;
                            let (resolved, observed_end) = self.simulate_worker(
                                query,
                                gi as u32,
                                part_idx as u32,
                                p,
                                self.attempt_p95_ms[gi][part_idx],
                                // Outage episodes key on absolute virtual
                                // time; a simulated query anchors at t=0, so
                                // lanes see the time elapsed inside it.
                                latency + fork,
                                rng,
                                &mut worker_ms,
                                &mut counters,
                            );
                            match resolved {
                                Some(r) => slowest = slowest.max(r),
                                None => {
                                    slowest = slowest.max(observed_end);
                                    exhausted.push(pi);
                                }
                            }
                        }
                        let mut compute = slowest;
                        if !exhausted.is_empty() {
                            if self.policy.local_fallback {
                                // Graceful degradation: the master recomputes
                                // the lost shards itself, serially, after the
                                // surviving workers finish.
                                for &pi in &exhausted {
                                    counters.degraded_shards += 1;
                                    compute += self.sample_compute_ms(&worker_parts[pi], rng);
                                }
                                status = QueryStatus::Degraded;
                            } else {
                                status = QueryStatus::Failed;
                            }
                        }
                        (fork, compute, join)
                    }
                }
            };
            if status == QueryStatus::Failed {
                // The master gives up mid-plan and emits an error response:
                // the fork and the waiting are paid, the join is not.
                latency += fork + compute;
                group_ms.push((fork, compute, 0.0));
                break;
            }
            latency += fork + compute + join;
            group_ms.push((fork, compute, join));
        }
        QueryOutcome {
            latency_ms: latency,
            group_ms,
            worker_ms,
            status,
            resilience: counters,
        }
    }

    /// Mean latency over `n` simulated warm queries.
    ///
    /// Replications are independent Monte-Carlo draws, each seeded with
    /// [`replication_seed`]`(seed, i)` and evaluated on the shared
    /// [`gillis_pool::Pool`]; the sum reduces sequentially in replication
    /// order, so the result is bit-identical for any `GILLIS_THREADS`.
    pub fn mean_latency_ms(&self, n: usize, seed: u64) -> f64 {
        self.mean_latency_ms_with_threads(n, seed, gillis_pool::gillis_threads())
    }

    /// [`mean_latency_ms`](Self::mean_latency_ms) with an explicit thread
    /// count (`threads <= 1` runs inline on the caller).
    pub fn mean_latency_ms_with_threads(&self, n: usize, seed: u64, threads: usize) -> f64 {
        self.simulate_many_with_threads(n, seed, threads)
            .latency
            .mean()
    }

    /// Simulates `n` independent warm queries and aggregates their latency
    /// distribution and resilience counters. Query `i` uses RNG seed
    /// [`replication_seed`]`(seed, i)` and fault-site query index `i`.
    pub fn simulate_many(&self, n: usize, seed: u64) -> SimulationReport {
        self.simulate_many_with_threads(n, seed, gillis_pool::gillis_threads())
    }

    /// [`simulate_many`](Self::simulate_many) with an explicit thread count.
    ///
    /// Replications run on the shared pool but reduce sequentially in
    /// replication order on the caller, so the report — latencies,
    /// percentiles, and every counter — is bit-identical for any
    /// `GILLIS_THREADS`.
    pub fn simulate_many_with_threads(
        &self,
        n: usize,
        seed: u64,
        threads: usize,
    ) -> SimulationReport {
        let n = n.max(1);
        let run_one = |i: usize| {
            let mut rng = StdRng::seed_from_u64(replication_seed(seed, i as u64));
            let q = self.simulate_query_at(i as u64, &mut rng);
            (q.latency_ms, q.status, q.resilience)
        };
        let outcomes: Vec<(f64, QueryStatus, ResilienceCounters)> = if threads <= 1 || n == 1 {
            (0..n).map(run_one).collect()
        } else {
            gillis_pool::Pool::global().run(n, run_one)
        };
        let mut latency = LatencyStats::new();
        let mut resilience = ResilienceCounters::default();
        for (ms, status, c) in outcomes {
            latency.record(ms);
            resilience.absorb(&c);
            resilience.record_status(status);
        }
        SimulationReport {
            latency,
            resilience,
        }
    }

    /// Deploys the plan's functions into a fleet: one master (holding the
    /// partitions it computes) and one function per worker partition.
    ///
    /// # Errors
    ///
    /// Propagates deployment errors (e.g. out-of-memory specs).
    pub fn deploy(&self, fleet: &mut Fleet) -> Result<()> {
        let master_pkg = self.plan.master_weight_bytes(self.model)?;
        fleet.deploy(FunctionSpec {
            name: "master".into(),
            memory_bytes: self.platform.instance_memory_bytes,
            package_bytes: master_pkg,
        })?;
        for (gi, (g, a)) in self
            .plan
            .groups()
            .iter()
            .zip(self.analyses.iter())
            .enumerate()
        {
            let offset = if g.placement == Placement::Workers {
                0
            } else {
                1
            };
            for (pi, p) in a.partitions.iter().enumerate().skip(offset) {
                if g.placement == Placement::Master {
                    continue;
                }
                fleet.deploy(FunctionSpec {
                    name: format!("g{gi}p{pi}"),
                    memory_bytes: self.platform.instance_memory_bytes,
                    package_bytes: p.weight_bytes,
                })?;
            }
        }
        Ok(())
    }

    /// Fresh serving-loop state for one run keyed by `seed`.
    fn serving_state(&self, seed: u64) -> ServingState {
        ServingState {
            rng: StdRng::seed_from_u64(seed),
            billing: BillingMeter::new(
                self.platform.billing_granularity_ms,
                self.platform.price_per_gb_s,
                self.platform.price_per_invocation,
            ),
            latency: LatencyStats::new(),
            by_status: StatusLatency::new(),
            resilience: ResilienceCounters::default(),
            overload: OverloadCounters::default(),
            budget: self.retry_budget.map(RetryBudget::new),
            brownout: self.brownout.map(BrownoutController::new),
            recovery: RecoveryCounters::default(),
            checkpoints: self.recovery.map(CheckpointCache::new),
        }
    }

    /// Serves a closed-loop workload end to end: warm pools, cold starts,
    /// and per-function billing. Clients issue their first queries at time
    /// zero and re-issue upon response.
    ///
    /// Functions are pre-warmed with one instance per client before the
    /// first query, mirroring Gillis's periodic warm-up pings (§III-A): the
    /// paper amortizes cold starts across "numerous inference queries" and
    /// measures warm behaviour.
    ///
    /// # Errors
    ///
    /// Propagates deployment and fleet errors.
    pub fn serve_workload(&self, mut workload: ClosedLoop, seed: u64) -> Result<ServingReport> {
        let mut fleet = Fleet::new(self.platform.clone());
        self.deploy(&mut fleet)?;
        self.prewarm(&mut fleet, workload.clients)?;
        let mut st = self.serving_state(seed);
        let mut breakers = self
            .overload
            .as_ref()
            .and_then(|ov| self.breaker_bank(&ov.policy));
        let mut query_idx = 0u64;

        // Event = a client ready to issue a query.
        let mut queue: EventQueue<usize> = EventQueue::new();
        for client in 0..workload.clients {
            queue.push(Micros::ZERO, client);
        }
        while let Some((now, client)) = queue.pop() {
            if !workload.try_issue() {
                continue;
            }
            // Brownout front door: the ladder classifies before any other
            // admission decision. A shed client thinks and retries later.
            let Some(level) = st.front_door() else {
                queue.push(now + workload.think_time, client);
                continue;
            };
            // Closed-loop clients self-limit, so there is no admission
            // queue; deadlines and breakers still apply.
            let deadline = self
                .overload
                .as_ref()
                .and_then(|ov| ov.policy.deadline_at(now));
            if self.overload.is_some() {
                st.overload.admitted += 1;
            }
            let window = st.health_window();
            let (done, status) = self.run_query_on_fleet(
                &mut fleet,
                &mut st.billing,
                now,
                &mut st.rng,
                query_idx,
                deadline,
                breakers.as_deref_mut(),
                &mut st.overload,
                &mut st.resilience,
                level,
                st.budget.as_mut(),
                &mut st.recovery,
                st.checkpoints.as_mut(),
            )?;
            st.observe(window);
            query_idx += 1;
            st.record(now, done, status);
            queue.push(done + workload.think_time, client);
        }

        let cold_starts = self.count_cold_starts(&fleet)?;
        Ok(st.finish(
            cold_starts,
            BatchCounters::default(),
            PipelineCounters::default(),
        ))
    }

    /// Serves an open-loop Poisson arrival stream of `queries` queries at
    /// `rate_per_sec`, against pre-warmed pools sized for `prewarm_clients`
    /// concurrent queries. Unlike the closed loop, arrivals do not wait for
    /// responses.
    ///
    /// Without an [`OverloadPolicy`] (see [`Self::with_overload`]), every
    /// arrival is served immediately — overload shows up as cold-start
    /// scale-out beyond the pre-warmed pool (the §II-A motivation for
    /// serverless burst capacity). With a policy, the master front door is
    /// modelled honestly: at most `max_concurrency` queries run at once,
    /// excess arrivals wait in a bounded queue (pre-warmed to at least the
    /// concurrency so capacity never pays cold starts), and arrivals are
    /// shed — counted, never silently dropped — when the queue is full or
    /// when predicted wait plus predicted plan latency already exceeds the
    /// deadline. Admitted queries carry their deadline into the fork-join
    /// groups (shrinking per-attempt timeouts and cancelling doomed work).
    ///
    /// The arrival process, every shed decision, and every query outcome
    /// are pure functions of `seed` and the query index — the loop is
    /// sequential, so reports are bit-identical for any `GILLIS_THREADS`.
    ///
    /// # Errors
    ///
    /// Propagates deployment and fleet errors, and rejects non-positive
    /// rates.
    pub fn serve_open_loop(
        &self,
        rate_per_sec: f64,
        queries: usize,
        prewarm_clients: usize,
        seed: u64,
    ) -> Result<ServingReport> {
        let arrivals = gillis_faas::workload::PoissonArrivals::new(rate_per_sec)?;
        let mut fleet = Fleet::new(self.platform.clone());
        self.deploy(&mut fleet)?;
        let prewarm_count = match &self.overload {
            // Warm the whole admission capacity: a policy bounds concurrency
            // at `max_concurrency`, so warming less would just shift early
            // admitted queries onto cold starts.
            Some(ov) => prewarm_clients.max(ov.policy.max_concurrency),
            None => prewarm_clients,
        };
        self.prewarm(&mut fleet, prewarm_count)?;
        let mut st = self.serving_state(seed);
        let mut now = Micros::ZERO;

        let Some(ov) = self.overload.clone() else {
            // Legacy unbounded scale-out: every arrival runs immediately.
            for q in 0..queries {
                now += arrivals.next_gap(&mut st.rng);
                let Some(level) = st.front_door() else {
                    continue;
                };
                let window = st.health_window();
                let (done, status) = self.run_query_on_fleet(
                    &mut fleet,
                    &mut st.billing,
                    now,
                    &mut st.rng,
                    q as u64,
                    None,
                    None,
                    &mut st.overload,
                    &mut st.resilience,
                    level,
                    st.budget.as_mut(),
                    &mut st.recovery,
                    st.checkpoints.as_mut(),
                )?;
                st.observe(window);
                st.record(now, done, status);
            }
            let cold_starts = self.count_cold_starts(&fleet)?;
            return Ok(st.finish(
                cold_starts,
                BatchCounters::default(),
                PipelineCounters::default(),
            ));
        };

        let policy = ov.policy;
        let mut breakers = self.breaker_bank(&policy);
        // When each of the `max_concurrency` masters next frees up.
        let mut server_free: BinaryHeap<Reverse<Micros>> = (0..policy.max_concurrency)
            .map(|_| Reverse(Micros::ZERO))
            .collect();
        // Start times of admitted queries; monotone (each start is
        // `max(arrival, earliest free server)` and both are non-decreasing),
        // so the entries with `start > now` are exactly the queue.
        let mut admitted_starts: VecDeque<Micros> = VecDeque::new();
        for q in 0..queries {
            now += arrivals.next_gap(&mut st.rng);
            while admitted_starts.front().is_some_and(|&s| s <= now) {
                admitted_starts.pop_front();
            }
            // Brownout front door first: a browned-out platform sheds before
            // consulting the queue at all.
            let Some(level) = st.front_door() else {
                continue;
            };
            let waiting = admitted_starts.len();
            let min_free = server_free.peek().expect("max_concurrency >= 1").0;
            let start = now.max(min_free);
            let deadline = policy.deadline_at(now);
            // Shed decisions are pure functions of queue state — no RNG is
            // consumed, so the admitted queries' fault/noise draws do not
            // depend on how many arrivals were shed before them.
            if waiting >= policy.queue_depth {
                st.overload.shed_queue_full += 1;
                st.shed();
                continue;
            }
            if policy.shed_on_predicted_miss {
                if let Some(d) = deadline {
                    if start + Micros::from_ms(ov.predicted_ms) > d {
                        st.overload.shed_predicted_miss += 1;
                        st.shed();
                        continue;
                    }
                }
            }
            st.overload.admitted += 1;
            let depth_now = waiting + usize::from(start > now);
            st.overload.peak_queue_depth = st.overload.peak_queue_depth.max(depth_now as u64);
            server_free.pop();
            let window = st.health_window();
            let (done, status) = self.run_query_on_fleet(
                &mut fleet,
                &mut st.billing,
                start,
                &mut st.rng,
                q as u64,
                deadline,
                breakers.as_deref_mut(),
                &mut st.overload,
                &mut st.resilience,
                level,
                st.budget.as_mut(),
                &mut st.recovery,
                st.checkpoints.as_mut(),
            )?;
            st.observe(window);
            server_free.push(Reverse(done));
            admitted_starts.push_back(start);
            // Latency is measured from *arrival*: queue wait counts.
            st.record(now, done, status);
        }
        let cold_starts = self.count_cold_starts(&fleet)?;
        Ok(st.finish(
            cold_starts,
            BatchCounters::default(),
            PipelineCounters::default(),
        ))
    }

    /// Serves an open-loop Poisson stream with adaptive multi-SLO batching:
    /// arrivals are assigned an SLO class (a pure hash of `(seed, query)`
    /// weighted by the class shares), accumulate per class up to the
    /// schedule's deadline-derived window, and dispatch as one batched
    /// master execution that shares a single fork-join invocation wave.
    ///
    /// Batch formation is a pure function of the virtual arrival times and
    /// `seed`: windows close lazily at the next arrival (nothing else
    /// advances virtual time), classes flush in `(close time, class index)`
    /// order, and no decision consults the thread pool — reports are
    /// bit-identical for any `GILLIS_THREADS`.
    ///
    /// The overload machinery composes: when the runtime carries an
    /// [`OverloadPolicy`] its concurrency bounds the master servers, its
    /// queue depth bounds the total members waiting in windows, and its
    /// breaker bank routes around sick lanes. Independent of that policy, a
    /// query whose class deadline is finite is shed on arrival when the
    /// predicted batch completion (window close, server wait, and the
    /// schedule's predicted batched latency) already misses its deadline —
    /// a query is never batched past its shed threshold. Each batch carries
    /// the *first* member's deadline (the earliest) into the fork-join
    /// cancellation machinery.
    ///
    /// A window that closes with a single member takes the batch-1 fast
    /// path: the unscaled per-query work profile, counted in
    /// [`BatchCounters::batch_one_fast_path`].
    ///
    /// The runtime must be built on the platform the schedule was planned
    /// for (`platform.with_memory_bytes(schedule.memory_bytes)`).
    ///
    /// # Errors
    ///
    /// Propagates deployment and fleet errors; rejects invalid policies,
    /// mismatched schedules, and non-positive rates.
    pub fn serve_open_loop_batched(
        &self,
        policy: &BatchPolicy,
        schedule: &BatchSchedule,
        rate_per_sec: f64,
        queries: usize,
        prewarm_clients: usize,
        seed: u64,
    ) -> Result<ServingReport> {
        policy.validate().map_err(CoreError::from)?;
        if schedule.classes.len() != policy.classes.len() {
            return Err(CoreError::InvalidArgument(format!(
                "schedule has {} classes but the policy has {}",
                schedule.classes.len(),
                policy.classes.len()
            )));
        }
        if schedule.memory_bytes != self.platform.instance_memory_bytes {
            return Err(CoreError::InvalidArgument(format!(
                "schedule was planned for {} B instances but the runtime platform has {} B; \
                 build the runtime on platform.with_memory_bytes(schedule.memory_bytes)",
                schedule.memory_bytes, self.platform.instance_memory_bytes
            )));
        }
        let arrivals = gillis_faas::workload::PoissonArrivals::new(rate_per_sec)?;
        let mut fleet = Fleet::new(self.platform.clone());
        self.deploy(&mut fleet)?;
        let (max_concurrency, queue_depth) = match &self.overload {
            Some(ov) => (ov.policy.max_concurrency, ov.policy.queue_depth),
            None => (prewarm_clients.max(1), usize::MAX),
        };
        self.prewarm(&mut fleet, prewarm_clients.max(max_concurrency))?;
        // Batch-scaled work profiles for every dispatchable size (index
        // `n - 2`); size 1 reuses the per-query analyses directly.
        let max_n = schedule.classes.iter().map(|c| c.batch).max().unwrap_or(1);
        let profiles: Vec<(Vec<GroupAnalysis>, Vec<Vec<f64>>)> = (2..=max_n)
            .map(|n| {
                let scaled: Vec<GroupAnalysis> = self
                    .analyses
                    .iter()
                    .map(|a| {
                        crate::predict::scale_analysis_for_batch(a, n, policy.amortized_fraction)
                    })
                    .collect();
                let p95 = attempt_p95_for(&self.platform, &scaled);
                (scaled, p95)
            })
            .collect();
        let mut st = self.serving_state(seed);
        let mut batch = BatchCounters::default();
        let mut breakers = self
            .overload
            .as_ref()
            .and_then(|ov| self.breaker_bank(&ov.policy));
        let mut server_free: BinaryHeap<Reverse<Micros>> = (0..max_concurrency)
            .map(|_| Reverse(Micros::ZERO))
            .collect();
        // Per-class accumulation windows.
        let mut pending: Vec<(Vec<(Micros, u64)>, Micros)> = policy
            .classes
            .iter()
            .map(|_| (Vec::new(), Micros::ZERO))
            .collect();
        // The earliest non-empty window by (close time, class index), or
        // `None` — batches flush in this deterministic order.
        fn due(pending: &[(Vec<(Micros, u64)>, Micros)]) -> Option<usize> {
            pending
                .iter()
                .enumerate()
                .filter(|(_, (members, _))| !members.is_empty())
                .min_by_key(|&(ci, &(_, close_at))| (close_at, ci))
                .map(|(ci, _)| ci)
        }
        // Batched dispatches serve at the ladder level current when the
        // window closes, capped at the int8 rung: members below it never
        // reach a window (they dispatch solo at arrival).
        fn batch_dispatch_level(brownout: Option<&BrownoutController>) -> BrownoutLevel {
            brownout.map_or(BrownoutLevel::Full, |c| c.level().min(BrownoutLevel::Int8))
        }
        // Start times of dispatched members that have not begun service
        // yet — the batching analogue of serve_open_loop's admission queue.
        // Monotone, so entries with `start > now` are exactly the queue.
        let mut admitted_starts: VecDeque<Micros> = VecDeque::new();
        let mut now = Micros::ZERO;
        for q in 0..queries {
            now += arrivals.next_gap(&mut st.rng);
            // Close every window that expired before this arrival. Nothing
            // else advances virtual time, so lazy closing is exact.
            while let Some(ci) = due(&pending).filter(|&ci| pending[ci].1 <= now) {
                let members = std::mem::take(&mut pending[ci].0);
                let n = members.len();
                let close_at = pending[ci].1;
                let level = batch_dispatch_level(st.brownout.as_ref());
                let start = self.dispatch_batch(
                    policy,
                    &profiles,
                    ci,
                    members,
                    close_at,
                    false,
                    &mut fleet,
                    &mut server_free,
                    breakers.as_deref_mut(),
                    level,
                    &mut st,
                    &mut batch,
                )?;
                admitted_starts.extend(std::iter::repeat_n(start, n));
            }
            while admitted_starts.front().is_some_and(|&s| s <= now) {
                admitted_starts.pop_front();
            }
            // Brownout front door: below the int8 rung the ladder bypasses
            // batching entirely — windows add latency a browned-out platform
            // cannot afford, and local-fallback members cannot share a
            // fork-join wave with normal ones — so those arrivals dispatch
            // solo below.
            let mut solo_level: Option<BrownoutLevel> = None;
            if let Some(ctl) = st.brownout.as_mut() {
                match ctl.classify_arrival() {
                    ArrivalDecision::Shed => {
                        st.resilience.record_status(QueryStatus::Shed);
                        continue;
                    }
                    ArrivalDecision::Serve(l) => {
                        if ctl.level() >= BrownoutLevel::LocalOnly {
                            solo_level = Some(l);
                        }
                    }
                }
            }
            let ci = policy.class_of(seed, q as u64);
            let class = &policy.classes[ci];
            let cs = &schedule.classes[ci];
            // Shed decisions are pure functions of window and queue state —
            // no RNG is consumed, so the admitted queries' draws do not
            // depend on how many arrivals were shed before them.
            let waiting: usize =
                pending.iter().map(|(m, _)| m.len()).sum::<usize>() + admitted_starts.len();
            if waiting >= queue_depth {
                st.overload.shed_queue_full += 1;
                st.shed();
                continue;
            }
            if let Some(level) = solo_level {
                st.overload.admitted += 1;
                let start = self.dispatch_batch(
                    policy,
                    &profiles,
                    ci,
                    vec![(now, q as u64)],
                    now,
                    false,
                    &mut fleet,
                    &mut server_free,
                    breakers.as_deref_mut(),
                    level,
                    &mut st,
                    &mut batch,
                )?;
                admitted_starts.push_back(start);
                continue;
            }
            if class.deadline_ms.is_finite() {
                // Never batch a query past its shed threshold: if the
                // predicted completion of the batch it would join already
                // misses its deadline, shed now instead of queueing doomed
                // work.
                let est_close = if pending[ci].0.is_empty() {
                    now + Micros::from_ms(cs.window_ms)
                } else {
                    pending[ci].1
                };
                let min_free = server_free.peek().expect("max_concurrency >= 1").0;
                let est_done = est_close.max(min_free) + Micros::from_ms(cs.predicted_ms);
                if est_done > now + Micros::from_ms(class.deadline_ms) {
                    st.overload.shed_predicted_miss += 1;
                    st.shed();
                    continue;
                }
            }
            st.overload.admitted += 1;
            if pending[ci].0.is_empty() {
                pending[ci].1 = now + Micros::from_ms(cs.window_ms);
            }
            pending[ci].0.push((now, q as u64));
            if pending[ci].0.len() >= cs.batch {
                let members = std::mem::take(&mut pending[ci].0);
                let n = members.len();
                let level = batch_dispatch_level(st.brownout.as_ref());
                let start = self.dispatch_batch(
                    policy,
                    &profiles,
                    ci,
                    members,
                    now,
                    true,
                    &mut fleet,
                    &mut server_free,
                    breakers.as_deref_mut(),
                    level,
                    &mut st,
                    &mut batch,
                )?;
                admitted_starts.extend(std::iter::repeat_n(start, n));
            }
            // Queries waiting after any flush — in open windows or
            // dispatched but not yet started — are the queue depth.
            while admitted_starts.front().is_some_and(|&s| s <= now) {
                admitted_starts.pop_front();
            }
            let depth: usize =
                pending.iter().map(|(m, _)| m.len()).sum::<usize>() + admitted_starts.len();
            st.overload.peak_queue_depth = st.overload.peak_queue_depth.max(depth as u64);
        }
        // Drain remaining windows at their scheduled close times.
        while let Some(ci) = due(&pending) {
            let members = std::mem::take(&mut pending[ci].0);
            let close_at = pending[ci].1;
            let level = batch_dispatch_level(st.brownout.as_ref());
            self.dispatch_batch(
                policy,
                &profiles,
                ci,
                members,
                close_at,
                false,
                &mut fleet,
                &mut server_free,
                breakers.as_deref_mut(),
                level,
                &mut st,
                &mut batch,
            )?;
        }
        let cold_starts = self.count_cold_starts(&fleet)?;
        Ok(st.finish(cold_starts, batch, PipelineCounters::default()))
    }

    /// Dispatches one formed batch as a single master execution: picks the
    /// batch-1 fast path or the `n`-scaled work profile, runs it through
    /// the shared fork-join machinery (breakers, deadline cancellation),
    /// and records every member's latency from its own arrival.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_batch(
        &self,
        policy: &BatchPolicy,
        profiles: &[(Vec<GroupAnalysis>, Vec<Vec<f64>>)],
        class_idx: usize,
        members: Vec<(Micros, u64)>,
        close_at: Micros,
        size_close: bool,
        fleet: &mut Fleet,
        server_free: &mut BinaryHeap<Reverse<Micros>>,
        breakers: Option<&mut [Vec<CircuitBreaker>]>,
        level: BrownoutLevel,
        st: &mut ServingState,
        batch: &mut BatchCounters,
    ) -> Result<Micros> {
        let n = members.len();
        debug_assert!(n > 0, "a batch has at least one member");
        batch.batches += 1;
        batch.largest_batch = batch.largest_batch.max(n as u64);
        if size_close {
            batch.size_closes += 1;
        } else {
            batch.window_closes += 1;
        }
        let (analyses, p95): (&[GroupAnalysis], &[Vec<f64>]) = if n == 1 {
            // Batch-1 fast path: the per-query profile, no widened work.
            batch.batch_one_fast_path += 1;
            (&self.analyses, &self.attempt_p95_ms)
        } else {
            batch.batched_queries += n as u64;
            let (a, p) = &profiles[n - 2];
            (a.as_slice(), p.as_slice())
        };
        // The batch carries the earliest member's deadline into the
        // fork-join cancellation machinery; its first member's index keys
        // fault sampling.
        let (first_arrival, first_q) = members[0];
        let class = &policy.classes[class_idx];
        let deadline = class
            .deadline_ms
            .is_finite()
            .then(|| first_arrival + Micros::from_ms(class.deadline_ms));
        let min_free = server_free.pop().expect("max_concurrency >= 1").0;
        let start = close_at.max(min_free);
        let window = st.health_window();
        let (done, status) = self.run_query_with(
            analyses,
            p95,
            fleet,
            &mut st.billing,
            start,
            &mut st.rng,
            first_q,
            deadline,
            breakers,
            &mut st.overload,
            &mut st.resilience,
            level,
            st.budget.as_mut(),
            &mut st.recovery,
            st.checkpoints.as_mut(),
        )?;
        st.observe(window);
        server_free.push(Reverse(done));
        // Every member shares the batch's terminal status; latency is
        // measured from each member's own arrival, so window wait counts.
        for (i, &(arrival, _)) in members.iter().enumerate() {
            st.record(arrival, done, status);
            if i > 0 {
                // `run_query_with` recorded the first member's status.
                st.resilience.record_status(status);
            }
        }
        Ok(start)
    }

    /// Serves an open-loop Poisson stream with pipeline parallelism across
    /// layer groups: each group becomes a *stage* with its own pool of
    /// `policy.lanes` orchestrator lanes (functions `"s0"`, `"s1"`, …,
    /// packaged like per-stage masters) and a bounded queue in front of it.
    /// Queries stream through stages concurrently on the virtual clock, so
    /// steady-state throughput is bounded by the slowest stage — the
    /// `t_pipeline` bottleneck — rather than by end-to-end latency, at the
    /// price of pipeline-fill latency and one activation hand-off per stage
    /// boundary.
    ///
    /// Backpressure is explicit and lossless past admission: a query that
    /// finishes stage `s` while stage `s + 1`'s queue is full *parks*,
    /// holding its stage-`s` lane, until a downstream slot opens; only the
    /// admission front door (brownout ladder, bounded stage-0 queue,
    /// predicted-miss shedding) ever sheds, and every admitted query is
    /// recorded exactly once — deadline kills at dispatch checkpoints are
    /// explicit `DeadlineExceeded` outcomes with their undone work counted
    /// as cancelled attempts.
    ///
    /// Determinism: the loop is sequential on the caller over a totally
    /// ordered event stream — completions and arrivals merge by virtual
    /// time (completions first on ties), completion ties break by
    /// `(stage, query)` — arrival times are precomputed from the run RNG
    /// before any execution draw, and each `(query, stage)` execution draws
    /// from its own RNG derived via [`replication_seed`]. Reports are
    /// therefore bit-identical for any `GILLIS_THREADS` and independent of
    /// event interleaving. Single-group plans have nothing to pipeline and
    /// delegate to [`Self::serve_open_loop`] unchanged.
    ///
    /// The overload policy composes as the admission front door (deadlines,
    /// predicted-miss shedding, breaker bank — note `max_concurrency` is
    /// superseded by per-stage lanes); chaos/outage faults, retry budgets,
    /// and the brownout ladder all apply per stage execution. Batching does
    /// not compose: the pipelined path serves per-query.
    ///
    /// # Errors
    ///
    /// Rejects invalid policies and non-positive rates; propagates fleet
    /// errors.
    pub fn serve_open_loop_pipelined(
        &self,
        policy: &PipelinePolicy,
        rate_per_sec: f64,
        queries: usize,
        prewarm_clients: usize,
        seed: u64,
    ) -> Result<ServingReport> {
        policy.validate()?;
        let stages = self.plan.groups().len();
        if stages <= 1 {
            // Nothing to overlap: serve on the plain open loop so
            // pipeline-disabled (single-stage) deployments are
            // bit-identical to the fork-join path.
            return self.serve_open_loop(rate_per_sec, queries, prewarm_clients, seed);
        }
        let arrivals = gillis_faas::workload::PoissonArrivals::new(rate_per_sec)?;
        let mut fleet = Fleet::new(self.platform.clone());
        self.deploy(&mut fleet)?;
        // Stage orchestrators: one function per layer group, packaged with
        // the group's master-resident weights (nothing for worker-only
        // groups), warmed to the lane count.
        for (gi, (g, a)) in self
            .plan
            .groups()
            .iter()
            .zip(self.analyses.iter())
            .enumerate()
        {
            let package_bytes = if g.placement == Placement::Workers {
                0
            } else {
                a.partitions[0].weight_bytes
            };
            fleet.deploy(FunctionSpec {
                name: stage_fn(gi),
                memory_bytes: self.platform.instance_memory_bytes,
                package_bytes,
            })?;
        }
        self.prewarm(&mut fleet, prewarm_clients.max(policy.lanes))?;
        for gi in 0..stages {
            fleet.prewarm(&stage_fn(gi), policy.lanes, Micros::ZERO)?;
        }
        let mut st = self.serving_state(seed);
        // Arrival times come out of the run RNG before any execution draw,
        // so the arrival process is independent of execution interleaving.
        let mut arrival_times = Vec::with_capacity(queries);
        let mut t = Micros::ZERO;
        for _ in 0..queries {
            t += arrivals.next_gap(&mut st.rng);
            arrival_times.push(t);
        }
        let breakers = self
            .overload
            .as_ref()
            .and_then(|ov| self.breaker_bank(&ov.policy));
        let mut sim = PipelineSim {
            rt: self,
            policy: *policy,
            seed,
            stages,
            fleet,
            st,
            counters: PipelineCounters {
                stages: stages as u64,
                ..PipelineCounters::default()
            },
            breakers,
            free: vec![policy.lanes; stages],
            queues: vec![VecDeque::new(); stages],
            parked: vec![VecDeque::new(); stages],
            q: vec![PipeQuery::default(); queries],
            events: BinaryHeap::new(),
        };
        let mut next_arrival = 0usize;
        loop {
            let arrival = arrival_times.get(next_arrival).copied();
            let completion = sim.events.peek().map(|Reverse((t, _, _))| *t);
            match (arrival, completion) {
                (Some(a), Some(c)) if c <= a => {
                    let Reverse((t, s, qid)) = sim.events.pop().expect("peeked");
                    sim.complete(s as usize, qid, t)?;
                }
                (Some(a), _) => {
                    sim.arrive(next_arrival as u64, a)?;
                    next_arrival += 1;
                }
                (None, Some(_)) => {
                    let Reverse((t, s, qid)) = sim.events.pop().expect("peeked");
                    sim.complete(s as usize, qid, t)?;
                }
                (None, None) => break,
            }
        }
        let mut cold_starts = self.count_cold_starts(&sim.fleet)?;
        for gi in 0..stages {
            let (c, _, _) = sim.fleet.stats(&stage_fn(gi))?;
            cold_starts += c;
        }
        Ok(sim
            .st
            .finish(cold_starts, BatchCounters::default(), sim.counters))
    }

    fn count_cold_starts(&self, fleet: &Fleet) -> Result<u64> {
        let mut cold_starts = 0;
        let (c, _, _) = fleet.stats("master")?;
        cold_starts += c;
        for (gi, g) in self.plan.groups().iter().enumerate() {
            if g.placement == Placement::Master {
                continue;
            }
            let offset = if g.placement == Placement::Workers {
                0
            } else {
                1
            };
            for pi in offset..g.option.parts() {
                let (c, _, _) = fleet.stats(&format!("g{gi}p{pi}"))?;
                cold_starts += c;
            }
        }
        Ok(cold_starts)
    }

    /// Pre-warms `count` instances of the master and of every worker
    /// function (Gillis's concurrent warm-up pings, §III-A).
    ///
    /// # Errors
    ///
    /// Propagates fleet errors.
    pub fn prewarm(&self, fleet: &mut Fleet, count: usize) -> Result<()> {
        fleet.prewarm("master", count, Micros::ZERO)?;
        for (gi, g) in self.plan.groups().iter().enumerate() {
            if g.placement == Placement::Master {
                continue;
            }
            let offset = if g.placement == Placement::Workers {
                0
            } else {
                1
            };
            for pi in offset..g.option.parts() {
                fleet.prewarm(&format!("g{gi}p{pi}"), count, Micros::ZERO)?;
            }
        }
        Ok(())
    }

    /// Executes one query against an externally-managed fleet starting at
    /// `start`, charging `billing`, and returns its completion time. `query`
    /// keys fault sampling; `counters` accumulates resilience accounting
    /// (including this query's terminal status). Public for cold-start
    /// studies that need control over pre-warming; workload serving should
    /// use [`ForkJoinRuntime::serve_workload`].
    ///
    /// # Errors
    ///
    /// Propagates fleet errors (e.g. undeployed functions).
    pub fn run_query_at(
        &self,
        fleet: &mut Fleet,
        billing: &mut BillingMeter,
        start: Micros,
        rng: &mut StdRng,
        query: u64,
        counters: &mut ResilienceCounters,
    ) -> Result<Micros> {
        let mut overload = OverloadCounters::default();
        let mut recovery = RecoveryCounters::default();
        self.run_query_on_fleet(
            fleet,
            billing,
            start,
            rng,
            query,
            None,
            None,
            &mut overload,
            counters,
            BrownoutLevel::Full,
            None,
            &mut recovery,
            None,
        )
        .map(|(done, _)| done)
    }

    /// Executes one query against the fleet, charging billing, and returns
    /// its completion time and terminal status. Lane outcomes come from
    /// [`Self::sample_lane`] — the same failure model as
    /// [`Self::simulate_query_at`] — with instance acquisition (and its
    /// cold starts) layered on top.
    ///
    /// `deadline` is the query's absolute cancellation point: per-attempt
    /// timeouts shrink to the remaining budget, attempts that would launch
    /// past it are cancelled (counted in `overload`), and once it expires
    /// the master abandons remaining groups instead of completing doomed
    /// work. `breakers` (when lane circuit breaking is on) is consulted per
    /// worker lane at dispatch: an open lane is routed straight to
    /// master-local degraded execution without spending its retry budget.
    #[allow(clippy::too_many_arguments)]
    fn run_query_on_fleet(
        &self,
        fleet: &mut Fleet,
        billing: &mut BillingMeter,
        start: Micros,
        rng: &mut StdRng,
        query: u64,
        deadline: Option<Micros>,
        breakers: Option<&mut [Vec<CircuitBreaker>]>,
        overload: &mut OverloadCounters,
        counters: &mut ResilienceCounters,
        level: BrownoutLevel,
        budget: Option<&mut RetryBudget>,
        rec: &mut RecoveryCounters,
        cache: Option<&mut CheckpointCache>,
    ) -> Result<(Micros, QueryStatus)> {
        self.run_query_with(
            &self.analyses,
            &self.attempt_p95_ms,
            fleet,
            billing,
            start,
            rng,
            query,
            deadline,
            breakers,
            overload,
            counters,
            level,
            budget,
            rec,
            cache,
        )
    }

    /// [`Self::run_query_on_fleet`] over an explicit work profile: batched
    /// serving substitutes batch-scaled analyses (and their per-attempt p95s)
    /// while keeping the plan structure — the same groups, partitions,
    /// breaker lanes, and deadline machinery.
    #[allow(clippy::too_many_arguments)]
    fn run_query_with(
        &self,
        analyses: &[GroupAnalysis],
        attempt_p95_ms: &[Vec<f64>],
        fleet: &mut Fleet,
        billing: &mut BillingMeter,
        start: Micros,
        rng: &mut StdRng,
        query: u64,
        deadline: Option<Micros>,
        mut breakers: Option<&mut [Vec<CircuitBreaker>]>,
        overload: &mut OverloadCounters,
        counters: &mut ResilienceCounters,
        level: BrownoutLevel,
        mut budget: Option<&mut RetryBudget>,
        rec: &mut RecoveryCounters,
        mut cache: Option<&mut CheckpointCache>,
    ) -> Result<(Micros, QueryStatus)> {
        let mem = self.platform.instance_memory_bytes;
        let master = fleet.acquire("master", start)?;
        let mut now = master.ready_at;
        let master_began = now;
        let mut status = QueryStatus::Ok;
        if level >= BrownoutLevel::LocalOnly {
            // Local-fallback-only rung: no worker lane is invoked at all.
            // The master computes every partition itself, serially, in plan
            // order — no fork/join transfers, no fault sites, no retries.
            let mut degraded = false;
            for (g, a) in self.plan.groups().iter().zip(analyses.iter()) {
                for (pi, p) in a.partitions.iter().enumerate() {
                    let is_worker = match g.placement {
                        Placement::Master => false,
                        Placement::Workers => true,
                        Placement::MasterAndWorkers => pi > 0,
                    };
                    if is_worker {
                        counters.degraded_shards += 1;
                        degraded = true;
                    }
                    now += Micros::from_ms(self.sample_compute_ms(p, rng));
                }
            }
            if degraded {
                status = QueryStatus::Degraded;
            }
            if deadline.is_some_and(|d| now > d) {
                status = QueryStatus::DeadlineExceeded;
            }
            billing.record((now - master_began).as_ms(), mem);
            fleet.release("master", now)?;
            counters.record_status(status);
            return Ok((now, status));
        }
        let token = self.weight_token;
        let groups = self.plan.groups();
        let n_groups = groups.len();
        // Predicted p95 of the groups from `from` on — the deadline gate a
        // resume must pass before it is worth paying for.
        let remaining_p95 = |from: usize| -> f64 {
            (from..n_groups)
                .map(|gj| group_p95_ms(attempt_p95_ms, gj))
                .sum()
        };
        let mut gi = 0usize;
        // Per-query orchestrator crash count: crashes key on
        // `(query, boundary, incarnation)`, so a replacement orchestrator
        // samples a fresh draw instead of deterministically re-crashing.
        let mut incarnation = 0u32;
        let mut spec_used = 0u32;
        'groups: while gi < n_groups {
            let (g, a) = (&groups[gi], &analyses[gi]);
            // Cooperative cancellation checkpoint at every group boundary:
            // an expired deadline cancels all remaining work.
            if let Some(d) = deadline {
                if now >= d {
                    let remaining: u64 = groups[gi..].iter().map(|g| g.worker_count() as u64).sum();
                    overload.cancelled_attempts += remaining;
                    status = QueryStatus::DeadlineExceeded;
                    break 'groups;
                }
            }
            let group_began = now;
            let mut run = self.run_group_on_fleet(
                gi,
                g,
                a,
                attempt_p95_ms,
                fleet,
                billing,
                now,
                rng,
                query,
                deadline,
                breakers.as_deref_mut(),
                overload,
                counters,
                level,
                budget.as_deref_mut(),
            )?;
            if let Some(pol) = self.recovery {
                // A failed group retries once from the last checkpointed
                // boundary: the upstream output is already durable, so the
                // retry redoes one stage instead of the whole plan — priced
                // at marginal cost against the retry budget, skipped when
                // the deadline can no longer be met anyway.
                if run.status == QueryStatus::Failed {
                    let upstream_ok = gi == 0
                        || cache.as_deref().is_some_and(|c| {
                            c.contains(query, gi as u32 - 1, token, run.end.as_ms())
                        });
                    let deadline_ok =
                        deadline.is_none_or(|d| run.end + Micros::from_ms(remaining_p95(gi)) <= d);
                    if upstream_ok && !deadline_ok {
                        rec.resume_skipped_deadline += 1;
                    } else if upstream_ok
                        && budget.as_deref_mut().is_none_or(|b| {
                            b.try_spend_cost(self.retry_unit_cost(group_p95_ms(attempt_p95_ms, gi)))
                        })
                    {
                        rec.resume_retries += 1;
                        let retry = self.run_group_on_fleet(
                            gi,
                            g,
                            a,
                            attempt_p95_ms,
                            fleet,
                            billing,
                            run.end,
                            rng,
                            query ^ RESUME_QUERY_SALT,
                            deadline,
                            breakers.as_deref_mut(),
                            overload,
                            counters,
                            level,
                            budget.as_deref_mut(),
                        )?;
                        if matches!(retry.status, QueryStatus::Ok | QueryStatus::Degraded) {
                            rec.resume_retry_wins += 1;
                        }
                        run = retry;
                    }
                }
                // Straggler speculation: a group past `spec_factor` × its
                // predicted p95 gets a duplicate execution seeded from the
                // cached upstream output; the earlier finisher wins and the
                // loser is cancelled at its next checkpoint (both billed in
                // full — honest accounting). The duplicate draws from a
                // dedicated RNG funded by exactly one draw of the main
                // stream, so firing never shifts later queries' draws.
                if matches!(run.status, QueryStatus::Ok | QueryStatus::Degraded)
                    && pol.spec_factor.is_finite()
                    && level == BrownoutLevel::Full
                    && spec_used < pol.max_speculations
                {
                    let threshold_ms = pol.spec_factor * group_p95_ms(attempt_p95_ms, gi);
                    let upstream_ok = gi == 0
                        || cache.as_deref().is_some_and(|c| {
                            c.contains(query, gi as u32 - 1, token, run.end.as_ms())
                        });
                    if (run.end - group_began).as_ms() > threshold_ms
                        && upstream_ok
                        && budget.as_deref_mut().is_none_or(|b| {
                            b.try_spend_cost(self.retry_unit_cost(group_p95_ms(attempt_p95_ms, gi)))
                        })
                    {
                        spec_used += 1;
                        rec.speculative_executions += 1;
                        let mut spec_rng = StdRng::seed_from_u64(rng.random::<u64>());
                        let spec = self.run_group_on_fleet(
                            gi,
                            g,
                            a,
                            attempt_p95_ms,
                            fleet,
                            billing,
                            group_began + Micros::from_ms(threshold_ms),
                            &mut spec_rng,
                            query ^ SPEC_QUERY_SALT,
                            deadline,
                            breakers.as_deref_mut(),
                            overload,
                            counters,
                            level,
                            budget.as_deref_mut(),
                        )?;
                        if matches!(spec.status, QueryStatus::Ok | QueryStatus::Degraded)
                            && spec.end < run.end
                        {
                            rec.speculation_wins += 1;
                            run = spec;
                        } else {
                            rec.speculation_cancelled += 1;
                        }
                    }
                }
            }
            // The boundary checkpoint is durable *before* crash sampling,
            // so a crash at this boundary always finds its own stage's
            // output (unless capacity or TTL ate it).
            if matches!(run.status, QueryStatus::Ok | QueryStatus::Degraded) {
                if let Some(c) = cache.as_deref_mut() {
                    c.put(
                        query,
                        gi as u32,
                        token,
                        StageCheckpoint {
                            elapsed_ms: (run.end - master_began).as_ms(),
                            degraded: run.status == QueryStatus::Degraded
                                || status == QueryStatus::Degraded,
                            stored_at_ms: run.end.as_ms(),
                        },
                        rec,
                    );
                }
            }
            now = run.end;
            match run.status {
                QueryStatus::Ok => {}
                QueryStatus::Degraded => status = QueryStatus::Degraded,
                QueryStatus::Failed => {
                    // The master gives up mid-plan and emits an error
                    // response: the fork and the waiting are paid, the join
                    // is not.
                    status = QueryStatus::Failed;
                    break 'groups;
                }
                QueryStatus::DeadlineExceeded => {
                    // The master abandoned the query inside the group; the
                    // never-dispatched downstream work is cancelled too.
                    status = QueryStatus::DeadlineExceeded;
                    let remaining: u64 = groups[gi + 1..]
                        .iter()
                        .map(|g| g.worker_count() as u64)
                        .sum();
                    overload.cancelled_attempts += remaining;
                    break 'groups;
                }
                other => unreachable!("group execution cannot end {other:?}"),
            }
            // Orchestrator crash boundary: sampled *after* the group (and
            // its checkpoint) completed, as a pure function of
            // `(chaos seed, query, boundary, incarnation)` that consumes no
            // draw from the main stream — so a crash-free run and a
            // checkpoint-resumed run see identical downstream RNG streams.
            if let Some(inj) = self.injector.as_ref() {
                while incarnation < MAX_ORCH_INCARNATIONS
                    && inj.orchestrator_crash(
                        query,
                        gi as u32,
                        incarnation,
                        self.orchestrator_outage_multiplier(now.as_ms()),
                    )
                {
                    incarnation += 1;
                    rec.orchestrator_crashes += 1;
                    let failover_ms = self
                        .recovery
                        .as_ref()
                        .map_or(DEFAULT_FAILOVER_MS, |p| p.failover_ms);
                    let hit = if self.recovery.is_some() {
                        cache.as_deref_mut().and_then(|c| {
                            c.latest_before(query, gi as u32, token, now.as_ms(), rec)
                        })
                    } else {
                        None
                    };
                    let resume_from = hit.map_or(0, |(k, _)| k as usize + 1);
                    if let Some(d) = deadline {
                        // A resume (or restart) that can no longer meet the
                        // deadline is not worth paying for: fail fast.
                        let eta = now
                            + Micros::from_ms(failover_ms)
                            + Micros::from_ms(remaining_p95(resume_from));
                        if eta > d {
                            rec.resume_skipped_deadline += 1;
                            let remaining: u64 = groups[gi + 1..]
                                .iter()
                                .map(|g| g.worker_count() as u64)
                                .sum();
                            overload.cancelled_attempts += remaining;
                            status = QueryStatus::DeadlineExceeded;
                            break 'groups;
                        }
                    }
                    now += Micros::from_ms(failover_ms);
                    match hit {
                        Some((k, ck)) => {
                            // Failover replay: the replacement orchestrator
                            // reconstructs in-flight state from checkpoints
                            // and continues — stages `0..=k` are never
                            // re-executed.
                            rec.failover_replays += 1;
                            rec.stages_saved += u64::from(k) + 1;
                            rec.recompute_avoided_ms += ck.elapsed_ms;
                            if ck.degraded {
                                status = QueryStatus::Degraded;
                            }
                            if (k as usize) < gi {
                                // Capacity/TTL ate the newer boundaries:
                                // walk back and re-execute from `k + 1`.
                                gi = k as usize + 1;
                                continue 'groups;
                            }
                            // Full hit at this boundary: nothing to redo;
                            // the loop re-samples under the replacement
                            // orchestrator's incarnation — replacements can
                            // crash too.
                        }
                        None => {
                            // No usable checkpoint: the classic full
                            // restart, redoing every completed stage (and
                            // resetting any sticky degraded verdict those
                            // stages produced).
                            rec.full_restarts += 1;
                            status = QueryStatus::Ok;
                            gi = 0;
                            continue 'groups;
                        }
                    }
                }
            }
            gi += 1;
        }
        if let Some(c) = cache {
            // The query is terminal either way: its checkpoints are
            // consumed, not evicted.
            c.retire_query(query, token);
        }
        if let Some(d) = deadline {
            if now > d && matches!(status, QueryStatus::Ok | QueryStatus::Degraded) {
                // The result arrived, but after the deadline — the client
                // has already timed out. Honest accounting over a pleasant
                // story: the query missed.
                status = QueryStatus::DeadlineExceeded;
            }
        }
        billing.record((now - master_began).as_ms(), mem);
        fleet.release("master", now)?;
        counters.record_status(status);
        Ok((now, status))
    }

    /// Executes one layer group on the fleet starting at `begin`: fork,
    /// worker lanes with retries/hedges/breakers/budget, local fallback,
    /// and join. This is the group body shared by the monolithic fork-join
    /// master ([`Self::run_query_with`]) and the per-stage orchestrators of
    /// [`Self::serve_open_loop_pipelined`] — one failure model, two serving
    /// topologies. Terminal outcomes (`Failed`, `DeadlineExceeded`) leave
    /// downstream-cancellation accounting to the caller, which knows what
    /// work remains.
    #[allow(clippy::too_many_arguments)]
    fn run_group_on_fleet(
        &self,
        gi: usize,
        g: &PlannedGroup,
        a: &GroupAnalysis,
        attempt_p95_ms: &[Vec<f64>],
        fleet: &mut Fleet,
        billing: &mut BillingMeter,
        begin: Micros,
        rng: &mut StdRng,
        query: u64,
        deadline: Option<Micros>,
        mut breakers: Option<&mut [Vec<CircuitBreaker>]>,
        overload: &mut OverloadCounters,
        counters: &mut ResilienceCounters,
        level: BrownoutLevel,
        mut budget: Option<&mut RetryBudget>,
    ) -> Result<GroupRun> {
        let mem = self.platform.instance_memory_bytes;
        let max_attempts = self.policy.max_attempts.max(1);
        // From the int8 rung down, fork/join payloads ship quantized
        // regardless of the configured format — a browned-out platform
        // sheds bytes before it sheds queries.
        let wire_fmt = if level >= BrownoutLevel::Int8 {
            TransferFormat::Int8
        } else {
            self.transfer_format
        };
        let wire = |raw: u64| wire_fmt.wire_bytes(raw);
        let mut now = begin;
        let mut status = QueryStatus::Ok;
        {
            match g.placement {
                Placement::Master => {
                    now += Micros::from_ms(self.sample_compute_ms(&a.partitions[0], rng));
                }
                Placement::Workers | Placement::MasterAndWorkers => {
                    let offset = if g.placement == Placement::Workers {
                        0
                    } else {
                        1
                    };
                    let worker_parts = &a.partitions[offset..];
                    let master_compute = if offset == 1 {
                        self.sample_compute_ms(&a.partitions[0], rng)
                    } else {
                        0.0
                    };
                    if worker_parts.is_empty() {
                        return Ok(GroupRun {
                            end: now + Micros::from_ms(master_compute),
                            status: QueryStatus::Ok,
                        });
                    }
                    // Fork: same egress model as `simulate_query` — one
                    // shared helper, so fleet serving and single-query
                    // simulation cannot drift apart.
                    let ins: Vec<u64> = worker_parts.iter().map(|p| wire(p.input_bytes)).collect();
                    let outs: Vec<u64> =
                        worker_parts.iter().map(|p| wire(p.output_bytes)).collect();
                    let dispatched = now + Micros::from_ms(self.sample_transfer_parts(&ins, rng));
                    // The master's own shard is synchronous local work — it
                    // cannot be abandoned, so it lower-bounds the time at
                    // which a cancelled query can return.
                    let master_busy_end = dispatched + Micros::from_ms(master_compute);
                    let mut compute_end = master_busy_end;
                    let mut exhausted: Vec<usize> = Vec::new();
                    let mut deadline_hit = false;
                    for (pi, p) in worker_parts.iter().enumerate() {
                        let part_idx = pi + offset;
                        // Per-lane circuit breaker: an open lane is routed
                        // around (straight to master-local degraded
                        // execution) without spending any retry budget; a
                        // half-open lane gets a single probe attempt.
                        let mut lane_attempts = max_attempts;
                        if let Some(bank) = breakers.as_deref_mut() {
                            let b = &mut bank[gi][part_idx];
                            if !b.admits(dispatched, overload) {
                                exhausted.push(pi);
                                continue;
                            }
                            if b.probing() {
                                lane_attempts = 1;
                            }
                        }
                        let fname = format!("g{gi}p{part_idx}");
                        let p95 = attempt_p95_ms[gi][part_idx];
                        let timeout_ms = self.policy.attempt_timeout_factor * p95;
                        let transfer = self
                            .platform
                            .transfer_ms(wire(p.input_bytes) + wire(p.output_bytes));
                        let mut t = dispatched;
                        let mut resolved: Option<Micros> = None;
                        let mut observed_end = dispatched;
                        let mut lane_cancelled = false;
                        for attempt in 0..lane_attempts {
                            // An attempt that would launch at or past the
                            // deadline is cancelled — doomed work the
                            // master does not perform.
                            if let Some(d) = deadline {
                                if t >= d {
                                    overload.cancelled_attempts += 1;
                                    lane_cancelled = true;
                                    break;
                                }
                            }
                            // The remaining deadline budget caps the
                            // attempt timeout. `sample_lane` draws noise
                            // and fault *before* applying the cap, so a
                            // shrunk timeout never shifts the RNG stream.
                            let eff_timeout_ms = match deadline {
                                Some(d) => timeout_ms.min((d - t).as_ms()),
                                None => timeout_ms,
                            };
                            let p_site = FaultSite {
                                query,
                                group: gi as u32,
                                part: part_idx as u32,
                                attempt,
                                lane: 0,
                            };
                            let primary = self.sample_lane(
                                p_site,
                                p,
                                attempt == 0,
                                eff_timeout_ms,
                                t.as_ms(),
                                rng,
                            );
                            counters.worker_invocations += 1;
                            if attempt == 0 {
                                counters.first_attempts += 1;
                                if primary.success {
                                    counters.first_attempt_successes += 1;
                                    // Successful first attempts are the only
                                    // thing that earns retry tokens back.
                                    if let Some(b) = budget.as_deref_mut() {
                                        b.refill();
                                    }
                                }
                            }
                            if primary.timed_out {
                                counters.timeouts += 1;
                            }
                            if primary.corrupt {
                                counters.corruptions_detected += 1;
                            }
                            let acq = fleet.acquire(&fname, t)?;
                            let work_start =
                                acq.ready_at.max(t + Micros::from_ms(primary.jitter_ms));
                            let p_end = work_start + Micros::from_ms(primary.run_ms);
                            let p_busy_end = work_start + Micros::from_ms(primary.billed_ms);
                            resolved = primary.success.then_some(p_end);
                            let mut attempt_end = p_end;
                            let mut hedge_won = false;
                            let mut hedge_bill: Option<(Micros, Micros)> = None;
                            // The first brownout rung turns hedging off: a
                            // hedge is pure load amplification when the
                            // platform is already unhealthy.
                            if self.policy.hedged() && level == BrownoutLevel::Full {
                                let hedge_at =
                                    t + Micros::from_ms(self.policy.hedge_delay_factor * p95);
                                // A hedge is only worth launching before
                                // the deadline.
                                let hedge_allowed = deadline.is_none_or(|d| hedge_at < d);
                                if p_end > hedge_at && hedge_allowed {
                                    // Hedges debit the same token bucket as
                                    // retries — both are extra invocations.
                                    // With recovery on, the debit is the
                                    // attempt's marginal share of the plan.
                                    let budget_ok = match budget.as_deref_mut() {
                                        Some(b) => b.try_spend_cost(self.retry_unit_cost(p95)),
                                        None => true,
                                    };
                                    if !budget_ok {
                                        counters.budget_denied_hedges += 1;
                                    } else {
                                        let hedge_timeout_ms = match deadline {
                                            Some(d) => timeout_ms.min((d - hedge_at).as_ms()),
                                            None => timeout_ms,
                                        };
                                        let hedge = self.sample_lane(
                                            FaultSite { lane: 1, ..p_site },
                                            p,
                                            false,
                                            hedge_timeout_ms,
                                            hedge_at.as_ms(),
                                            rng,
                                        );
                                        counters.hedges += 1;
                                        counters.worker_invocations += 1;
                                        if hedge.timed_out {
                                            counters.timeouts += 1;
                                        }
                                        if hedge.corrupt {
                                            counters.corruptions_detected += 1;
                                        }
                                        let h_acq = fleet.acquire(&fname, hedge_at)?;
                                        let h_start = h_acq
                                            .ready_at
                                            .max(hedge_at + Micros::from_ms(hedge.jitter_ms));
                                        let h_end = h_start + Micros::from_ms(hedge.run_ms);
                                        let h_busy_end = h_start + Micros::from_ms(hedge.billed_ms);
                                        if hedge.success && resolved.is_none_or(|r| h_end < r) {
                                            hedge_won = true;
                                            resolved = Some(h_end);
                                        }
                                        attempt_end = attempt_end.max(h_end);
                                        hedge_bill = Some((h_start, h_busy_end));
                                    }
                                }
                            }
                            if hedge_won {
                                counters.hedge_wins += 1;
                            }
                            // Billed from payload receipt to response
                            // emission; the accepted lane also carries the
                            // payload transfer. Abandoned lanes bill their
                            // full busy time — the function keeps running.
                            let primary_carries = resolved.is_some() && !hedge_won;
                            billing.record(
                                (p_busy_end - work_start).as_ms()
                                    + if primary_carries { transfer } else { 0.0 },
                                mem,
                            );
                            fleet.release(&fname, p_busy_end)?;
                            if let Some((h_start, h_busy_end)) = hedge_bill {
                                billing.record(
                                    (h_busy_end - h_start).as_ms()
                                        + if hedge_won { transfer } else { 0.0 },
                                    mem,
                                );
                                fleet.release(&fname, h_busy_end)?;
                            }
                            if let Some(r) = resolved {
                                observed_end = r;
                                break;
                            }
                            observed_end = attempt_end;
                            // Adaptive retry budget: a retry that would
                            // actually launch must first debit a token.
                            // A dry bucket abandons the lane to local
                            // fallback instead of amplifying load.
                            if attempt + 1 < lane_attempts {
                                if let Some(b) = budget.as_deref_mut() {
                                    // Priced at marginal cost when recovery
                                    // is on: a resumed retry redoes one
                                    // stage, not the whole plan.
                                    if !b.try_spend_cost(self.retry_unit_cost(p95)) {
                                        counters.budget_denied_retries += 1;
                                        break;
                                    }
                                }
                            }
                            if attempt + 1 < max_attempts {
                                counters.retries += 1;
                                let unit = self
                                    .injector
                                    .as_ref()
                                    .map_or(0.5, |inj| inj.backoff_unit(p_site));
                                t = attempt_end
                                    + Micros::from_ms(self.policy.backoff_ms(attempt, unit));
                            }
                        }
                        match resolved {
                            Some(r) => {
                                compute_end = compute_end.max(r);
                                if deadline.is_some_and(|d| r > d) {
                                    // The reply exists, but the master
                                    // stopped waiting at the deadline (cold
                                    // start or jitter pushed the lane past
                                    // it): abandoned in flight.
                                    overload.cancelled_attempts += 1;
                                    deadline_hit = true;
                                } else if let Some(bank) = breakers.as_deref_mut() {
                                    bank[gi][part_idx].record_success(overload);
                                }
                            }
                            None => {
                                compute_end = compute_end.max(observed_end);
                                if lane_cancelled {
                                    // Deadline cancellations say nothing
                                    // about lane health — they do not feed
                                    // the breaker.
                                    deadline_hit = true;
                                } else if deadline.is_some_and(|d| observed_end > d) {
                                    // The lane's last attempt outlived the
                                    // deadline: the master never observed
                                    // its failure, it just left.
                                    overload.cancelled_attempts += 1;
                                    deadline_hit = true;
                                } else {
                                    exhausted.push(pi);
                                    if let Some(bank) = breakers.as_deref_mut() {
                                        bank[gi][part_idx].record_failure(observed_end, overload);
                                    }
                                }
                            }
                        }
                    }
                    if !exhausted.is_empty() {
                        if deadline_hit {
                            // The query is already doomed: recomputing the
                            // exhausted shards would be cancelled work.
                            overload.cancelled_attempts += exhausted.len() as u64;
                        } else if self.policy.local_fallback {
                            let mut recomputed = false;
                            for &pi in &exhausted {
                                // A recompute that cannot start before the
                                // deadline is cancelled, not performed.
                                if deadline.is_some_and(|d| compute_end >= d) {
                                    overload.cancelled_attempts += 1;
                                    deadline_hit = true;
                                    continue;
                                }
                                counters.degraded_shards += 1;
                                recomputed = true;
                                compute_end +=
                                    Micros::from_ms(self.sample_compute_ms(&worker_parts[pi], rng));
                            }
                            if recomputed {
                                status = QueryStatus::Degraded;
                            }
                        } else {
                            return Ok(GroupRun {
                                end: compute_end,
                                status: QueryStatus::Failed,
                            });
                        }
                    }
                    if deadline_hit {
                        // The master abandons the query at its deadline: an
                        // error response, no join. Only its own synchronous
                        // shard compute can push the return later.
                        let d = deadline.expect("deadline_hit implies a deadline");
                        return Ok(GroupRun {
                            end: master_busy_end.max(d),
                            status: QueryStatus::DeadlineExceeded,
                        });
                    }
                    // Join: collection jitter + serialized replies, again via
                    // the shared helper.
                    now = compute_end + Micros::from_ms(self.sample_transfer_parts(&outs, rng));
                }
            }
        }
        Ok(GroupRun { end: now, status })
    }
}

/// Max-partition attempt p95 of group `gi` — the coarse "one group costs
/// this" scale used by speculation triggers, resume deadline gates, and
/// marginal retry pricing.
fn group_p95_ms(attempt_p95_ms: &[Vec<f64>], gi: usize) -> f64 {
    attempt_p95_ms[gi].iter().fold(0.0f64, |m, &v| m.max(v))
}

/// Weight-identity token for checkpoint keying: a splitmix64 fold over the
/// plan's partition shapes and weight bytes. Two runtimes can resume from
/// each other's checkpoints only when their deployed weights and
/// partitioning agree exactly.
fn weight_identity_token(analyses: &[GroupAnalysis]) -> u64 {
    let mut h = 0x6769_6c6c_6973_2d77; // "gillis-w"
    for (gi, a) in analyses.iter().enumerate() {
        h = replication_seed(h, gi as u64);
        for p in &a.partitions {
            h = replication_seed(h, p.weight_bytes);
            h = replication_seed(h, p.input_bytes);
            h = replication_seed(h, p.output_bytes);
        }
    }
    h
}

/// Predicted p95 of one attempt per `[group][partition]` under `platform`:
/// mean compute at the 95th noise percentile plus the invocation-jitter p95.
/// Shared between [`ForkJoinRuntime::new`] and the batch-scaled work
/// profiles of [`ForkJoinRuntime::serve_open_loop_batched`].
fn attempt_p95_for(platform: &PlatformProfile, analyses: &[GroupAnalysis]) -> Vec<Vec<f64>> {
    let jitter_p95 = platform.invoke_latency_ms.upper_quantile(0.95);
    let noise_p95 = 1.0 + 1.645 * platform.compute_noise_rel_std;
    analyses
        .iter()
        .map(|a| {
            a.partitions
                .iter()
                .map(|p| {
                    let mean: f64 = p
                        .flops
                        .iter()
                        .map(|&(class, flops)| platform.compute_ms(flops, class))
                        .sum();
                    mean * noise_p95 + jitter_p95
                })
                .collect()
        })
        .collect()
}

/// Derives the RNG seed for Monte-Carlo replication `index` of a run keyed
/// by `seed` (splitmix64 finalizer). Replications get decorrelated streams
/// that depend only on `(seed, index)` — never on which thread runs them —
/// so parallel simulation and training stay bit-identical at any pool width.
#[must_use]
pub fn replication_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Marker payload of a fault-injected worker crash in the tensor path; a
/// panic with any other payload is a genuine executor bug.
struct InjectedCrash;

/// How one injected-fault piece execution failed (real model errors abort
/// the query instead of retrying — they are deterministic).
enum PieceFault {
    Injected(&'static str),
    Exec(gillis_model::ModelError),
}

/// Executes a plan with real tensor math: for each group, slices the input
/// according to the partition option (halo rows for spatial splits, whole
/// input for weight splits), runs every partition through the reference
/// executor, and stitches the outputs back together. The result must equal
/// the unpartitioned forward pass — Gillis's no-accuracy-loss property.
///
/// Partitions within a [`PartitionOption::Split`] group are independent (they
/// read the shared group input and each produces a disjoint output slice), so
/// they run concurrently on the shared [`gillis_pool::Pool`]; pieces are
/// collected and concatenated in range order, making the output bit-identical
/// to the sequential path.
///
/// Faults can be injected from the environment (`GILLIS_CHAOS_RATE` /
/// `GILLIS_CHAOS_SEED`, see [`gillis_faas::chaos::ChaosConfig::from_env`]);
/// the default [`ResiliencePolicy`] retries and locally recomputes exhausted
/// shards, so the output stays exactly correct under injected faults.
///
/// # Errors
///
/// Propagates executor errors; returns [`crate::CoreError::InvalidPlan`] if the
/// plan does not validate against the model.
pub fn execute_plan_tensors(
    model: &LinearModel,
    plan: &ExecutionPlan,
    weights: &ModelWeights,
    input: &Tensor,
) -> Result<Tensor> {
    execute_plan_tensors_with_threads(model, plan, weights, input, gillis_pool::gillis_threads())
}

/// [`execute_plan_tensors`] with an explicit thread count (`threads <= 1`
/// runs every partition inline on the caller).
///
/// # Errors
///
/// Propagates executor errors; returns [`crate::CoreError::InvalidPlan`] if the
/// plan does not validate against the model.
pub fn execute_plan_tensors_with_threads(
    model: &LinearModel,
    plan: &ExecutionPlan,
    weights: &ModelWeights,
    input: &Tensor,
    threads: usize,
) -> Result<Tensor> {
    let (out, _) = execute_plan_tensors_resilient(
        model,
        plan,
        weights,
        input,
        gillis_faas::chaos::env_injector(),
        &ResiliencePolicy::default(),
        threads,
    )?;
    Ok(out)
}

/// [`execute_plan_tensors`] with explicit fault injection and resilience:
/// each piece execution of each group consults `injector` (keyed by
/// [`FaultSite`] with query index 0) — an injected crash panics the worker
/// closure and is captured at the join ([`gillis_pool::Pool::try_run`]), an
/// injected invocation failure or transfer corruption fails the piece
/// without a result, and a straggler is a timing-only fault with no effect
/// on real execution. Failed pieces are retried up to
/// `policy.max_attempts`; pieces that exhaust the budget are recomputed
/// inline by the master when `policy.local_fallback` is set (counted as
/// degraded shards) or abort with [`CoreError::WorkerFailed`] otherwise.
///
/// The returned counters account one query. The output tensor is
/// bit-identical to the fault-free run whenever a result is returned — the
/// process never panics on injected crashes, at any thread count.
///
/// # Errors
///
/// Propagates executor errors; [`CoreError::WorkerFailed`] on budget
/// exhaustion without fallback; [`CoreError::WorkerPanic`] if a worker
/// panic was not an injected fault.
pub fn execute_plan_tensors_resilient(
    model: &LinearModel,
    plan: &ExecutionPlan,
    weights: &ModelWeights,
    input: &Tensor,
    injector: Option<&FaultInjector>,
    policy: &ResiliencePolicy,
    threads: usize,
) -> Result<(Tensor, ResilienceCounters)> {
    // A fresh manual token never fires, so the resilient path is the
    // cancellable path that nobody cancels.
    execute_plan_tensors_cancellable(
        model,
        plan,
        weights,
        input,
        injector,
        policy,
        threads,
        &CancelToken::new(),
    )
}

/// [`execute_plan_tensors_resilient`] with cooperative cancellation: the
/// master consumes one [`CancelToken::checkpoint`] before each plan group
/// and before each retry round, and aborts with [`CoreError::Cancelled`]
/// when the token has fired — outstanding work is abandoned instead of
/// completed. Checkpoints happen only on the (sequential) master path,
/// never inside worker closures, so for a token built with
/// [`CancelToken::after_checkpoints`] the cancellation point — and the
/// entire outcome — is bit-identical at any thread count.
///
/// # Errors
///
/// [`CoreError::Cancelled`] when the token fires; otherwise as
/// [`execute_plan_tensors_resilient`].
#[allow(clippy::too_many_arguments)]
pub fn execute_plan_tensors_cancellable(
    model: &LinearModel,
    plan: &ExecutionPlan,
    weights: &ModelWeights,
    input: &Tensor,
    injector: Option<&FaultInjector>,
    policy: &ResiliencePolicy,
    threads: usize,
    cancel: &CancelToken,
) -> Result<(Tensor, ResilienceCounters)> {
    plan.validate(model, u64::MAX)?;
    let exec = Executor::new(model.graph(), weights);
    let mut counters = ResilienceCounters::default();
    let max_attempts = policy.max_attempts.max(1);
    // A width-1 pool runs batches inline on the caller while still capturing
    // per-piece panics, so fault semantics do not depend on the thread count.
    let inline_pool;
    let pool: &gillis_pool::Pool = if threads <= 1 {
        inline_pool = gillis_pool::Pool::new(1);
        &inline_pool
    } else {
        gillis_pool::Pool::global()
    };
    let mut cur = input.clone();
    for (gi, g) in plan.groups().iter().enumerate() {
        // Group-boundary cancellation checkpoint (master-side only).
        if cancel.checkpoint() {
            return Err(CoreError::Cancelled { group: gi });
        }
        let layers = &model.layers()[g.start..g.end];
        cur = match g.option {
            PartitionOption::Single => exec.run_segment(layers, &cur)?,
            PartitionOption::Split { dim, parts } => {
                let (axis, total) = match dim {
                    PartDim::Height => (1usize, layers[layers.len() - 1].out_shape.dims()[1]),
                    PartDim::Width => (2usize, layers[layers.len() - 1].out_shape.dims()[2]),
                    PartDim::Channel => (0usize, layers[layers.len() - 1].out_shape.dims()[0]),
                };
                let ranges = balanced_ranges(total, parts);
                let run_piece = |r: std::ops::Range<usize>| match dim {
                    PartDim::Height => exec.run_segment_rows(layers, &cur, r),
                    PartDim::Width => exec.run_segment_cols(layers, &cur, r),
                    PartDim::Channel => exec.run_segment_channels(layers, &cur, r),
                };
                let mut pieces: Vec<Option<Tensor>> = (0..ranges.len()).map(|_| None).collect();
                let mut last_fault: Vec<&'static str> = vec!["no fault"; ranges.len()];
                let mut pending: Vec<usize> = (0..ranges.len()).collect();
                let mut attempt = 0u32;
                while !pending.is_empty() && attempt < max_attempts {
                    // Retry-round cancellation checkpoint: a deadline that
                    // expires mid-group abandons the remaining retries.
                    if attempt > 0 && cancel.checkpoint() {
                        return Err(CoreError::Cancelled { group: gi });
                    }
                    let worker = |k: usize| -> std::result::Result<(Tensor, u64), PieceFault> {
                        let j = pending[k];
                        let piece = ranges[j].clone();
                        let site = FaultSite {
                            query: 0,
                            group: gi as u32,
                            part: j as u32,
                            attempt,
                            lane: 0,
                        };
                        match injector.and_then(|inj| inj.fault(site)) {
                            Some(Fault::InvokeFailure) => {
                                return Err(PieceFault::Injected("invocation failure"))
                            }
                            Some(Fault::Crash { .. }) => {
                                std::panic::panic_any(InjectedCrash);
                            }
                            Some(Fault::Corrupt) => {
                                // The worker computes correctly and stamps
                                // the honest checksum, but the payload is
                                // corrupted in transfer: one element's sign
                                // bit flips (index drawn from the checksum,
                                // so the flip is deterministic). The join's
                                // verification rejects the piece.
                                let mut t = run_piece(piece).map_err(PieceFault::Exec)?;
                                let sum = wire_checksum(t.data());
                                let data = t.data_mut();
                                if data.is_empty() {
                                    return Err(PieceFault::Injected("corrupted response"));
                                }
                                let idx = (sum as usize) % data.len();
                                data[idx] = f32::from_bits(data[idx].to_bits() ^ 0x8000_0000);
                                return Ok((t, sum));
                            }
                            // Stragglers only affect timing, which the real
                            // path does not model.
                            Some(Fault::Straggler { .. }) | None => {}
                        }
                        run_piece(piece)
                            .map(|t| {
                                let sum = wire_checksum(t.data());
                                (t, sum)
                            })
                            .map_err(PieceFault::Exec)
                    };
                    let results = pool.try_run(pending.len(), worker);
                    let mut still: Vec<usize> = Vec::new();
                    for (k, res) in results.into_iter().enumerate() {
                        let j = pending[k];
                        match res {
                            // Every accepted payload must re-verify against
                            // the checksum stamped at the worker: transfer
                            // corruption is *detected*, never silently
                            // concatenated into the output.
                            Ok(Ok((t, sum))) => {
                                if wire_checksum(t.data()) == sum {
                                    pieces[j] = Some(t);
                                } else {
                                    counters.corruptions_detected += 1;
                                    last_fault[j] = "corrupted response (checksum mismatch)";
                                    still.push(j);
                                }
                            }
                            // Deterministic model errors are not retryable.
                            Ok(Err(PieceFault::Exec(e))) => return Err(e.into()),
                            Ok(Err(PieceFault::Injected(reason))) => {
                                last_fault[j] = reason;
                                still.push(j);
                            }
                            Err(payload) => {
                                if payload.downcast_ref::<InjectedCrash>().is_some() {
                                    last_fault[j] = "worker crash";
                                    still.push(j);
                                } else {
                                    let message = payload
                                        .downcast_ref::<&str>()
                                        .map(|s| (*s).to_string())
                                        .or_else(|| payload.downcast_ref::<String>().cloned())
                                        .unwrap_or_else(|| "non-string panic payload".into());
                                    return Err(CoreError::WorkerPanic {
                                        group: gi,
                                        part: j,
                                        message,
                                    });
                                }
                            }
                        }
                    }
                    attempt += 1;
                    if !still.is_empty() && attempt < max_attempts {
                        counters.retries += still.len() as u64;
                    }
                    pending = still;
                }
                for &j in &pending {
                    if !policy.local_fallback {
                        return Err(CoreError::WorkerFailed {
                            group: gi,
                            part: j,
                            attempts: max_attempts,
                            reason: format!("retry budget exhausted (last: {})", last_fault[j]),
                        });
                    }
                    // Graceful degradation: the master recomputes the shard
                    // itself, with no fault injection — the master is
                    // reliable by assumption.
                    counters.degraded_shards += 1;
                    pieces[j] = Some(run_piece(ranges[j].clone())?);
                }
                let pieces: Vec<Tensor> = pieces
                    .into_iter()
                    .map(|p| p.expect("every piece resolved or degraded"))
                    .collect();
                Tensor::concat(&pieces, axis).map_err(gillis_model::ModelError::from)?
            }
        };
    }
    counters.record_status(if counters.degraded_shards > 0 {
        QueryStatus::Degraded
    } else {
        QueryStatus::Ok
    });
    Ok((cur, counters))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::{DpPartitioner, PartitionerConfig};
    use crate::predict::predict_plan;
    use gillis_faas::overload::BreakerPolicy;
    use gillis_model::weights::init_weights;
    use gillis_model::zoo;
    use gillis_perf::PerfModel;

    #[test]
    fn simulated_latency_matches_prediction() {
        // Fig 15 (bottom): end-to-end prediction error within ~6%.
        let platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let vgg = zoo::vgg16();
        let plan = DpPartitioner::default().partition(&vgg, &perf).unwrap();
        let predicted = predict_plan(&vgg, &plan, &perf).unwrap().latency_ms;
        let runtime = ForkJoinRuntime::new(&vgg, &plan, platform).unwrap();
        let actual = runtime.mean_latency_ms(50, 7);
        let rel = (predicted - actual).abs() / actual;
        assert!(rel < 0.06, "predicted {predicted:.1}, actual {actual:.1}");
    }

    #[test]
    fn int8_wire_cuts_simulated_transfer_time() {
        // The simulator and the predictor must agree on the int8 wire: a
        // communication-heavy forced-parallel plan gets faster under the
        // quantized format, and the simulated mean still tracks the
        // prediction from an int8-format perf model.
        let tiny = zoo::tiny_vgg();
        let plan = forced_split_plan(&tiny);
        let platform = PlatformProfile::aws_lambda();
        let f32_rt = ForkJoinRuntime::new(&tiny, &plan, platform.clone()).unwrap();
        let int8_rt = ForkJoinRuntime::new(&tiny, &plan, platform.clone())
            .unwrap()
            .with_transfer_format(TransferFormat::Int8);
        let f32_ms = f32_rt.mean_latency_ms(200, 5);
        let int8_ms = int8_rt.mean_latency_ms(200, 5);
        assert!(
            int8_ms < f32_ms,
            "int8 wire {int8_ms:.2}ms not below f32 {f32_ms:.2}ms"
        );
        let perf = PerfModel::analytic(&platform).with_transfer_format(TransferFormat::Int8);
        let predicted = predict_plan(&tiny, &plan, &perf).unwrap().latency_ms;
        let rel = (predicted - int8_ms).abs() / int8_ms;
        assert!(
            rel < 0.06,
            "predicted {predicted:.2}, simulated {int8_ms:.2}"
        );
    }

    #[test]
    fn plan_execution_preserves_semantics() {
        // The headline property: a partitioned plan computes exactly the
        // same logits as the unpartitioned model.
        let tiny = zoo::tiny_vgg();
        let weights = init_weights(tiny.graph(), 77).unwrap();
        let exec = Executor::new(tiny.graph(), &weights);
        let input = Tensor::from_fn(tiny.input_shape().clone(), |i| {
            ((i % 17) as f32 - 8.0) / 8.0
        });
        let full = exec.forward(&tiny, &input).unwrap();

        let platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let config = PartitionerConfig {
            degrees: vec![2, 4],
            ..PartitionerConfig::default()
        };
        let plan = DpPartitioner::new(config).partition(&tiny, &perf).unwrap();
        let out = execute_plan_tensors(&tiny, &plan, &weights, &input).unwrap();
        assert!(full.max_abs_diff(&out).unwrap() < 1e-4);
    }

    #[test]
    fn forced_parallel_plan_execution_preserves_semantics() {
        let tiny = zoo::tiny_vgg();
        let weights = init_weights(tiny.graph(), 78).unwrap();
        let exec = Executor::new(tiny.graph(), &weights);
        let input = Tensor::from_fn(tiny.input_shape().clone(), |i| (i as f32 * 0.37).sin());
        let full = exec.forward(&tiny, &input).unwrap();

        let plan = forced_split_plan(&tiny);
        let out = execute_plan_tensors(&tiny, &plan, &weights, &input).unwrap();
        assert!(full.max_abs_diff(&out).unwrap() < 1e-4);
    }

    /// Hand-built aggressive plan for `tiny_vgg`: convs split 4-way
    /// spatially, channel-splittable layers 2-way — guaranteeing worker
    /// partitions (the DP planner keeps a model this small unsplit).
    fn forced_split_plan(tiny: &LinearModel) -> ExecutionPlan {
        use crate::plan::PlannedGroup;
        let mut groups = Vec::new();
        for i in 0..tiny.layers().len() {
            let layer = &tiny.layers()[i];
            let option = if layer.class.supports_spatial() && layer.out_shape.dims()[1] >= 4 {
                PartitionOption::Split {
                    dim: PartDim::Height,
                    parts: 4,
                }
            } else if layer.class.channel_splittable() && layer.out_shape.dims()[0] >= 2 {
                PartitionOption::Split {
                    dim: PartDim::Channel,
                    parts: 2,
                }
            } else {
                PartitionOption::Single
            };
            groups.push(PlannedGroup {
                start: i,
                end: i + 1,
                option,
                placement: if option == PartitionOption::Single {
                    Placement::Master
                } else {
                    Placement::Workers
                },
            });
        }
        ExecutionPlan::new(groups)
    }

    /// A chaos config exercising every fault kind at once.
    fn stress_chaos(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            invoke_failure_rate: 0.08,
            crash_rate: 0.08,
            straggler_rate: 0.08,
            straggler_slowdown: 6.0,
            corrupt_rate: 0.06,
            orchestrator_crash_rate: 0.0,
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(4))]

        /// Tentpole determinism contract: the pooled tensor path produces
        /// *bit-identical* floats to the sequential path for any thread
        /// count, because partitions own disjoint output slices and are
        /// concatenated in range order.
        #[test]
        fn plan_execution_is_bit_identical_across_thread_counts(
            (weight_seed, input_scale) in (0u64..1000, 1usize..5),
        ) {
            let tiny = zoo::tiny_vgg();
            let weights = init_weights(tiny.graph(), weight_seed).unwrap();
            let input = Tensor::from_fn(tiny.input_shape().clone(), |i| {
                ((i % (7 * input_scale)) as f32 - 3.0) / (4.0 * input_scale as f32)
            });
            let platform = PlatformProfile::aws_lambda();
            let perf = PerfModel::analytic(&platform);
            let config = PartitionerConfig {
                degrees: vec![2, 4],
                ..PartitionerConfig::default()
            };
            let plan = DpPartitioner::new(config).partition(&tiny, &perf).unwrap();
            let seq = execute_plan_tensors_with_threads(&tiny, &plan, &weights, &input, 1).unwrap();
            for threads in [2usize, 8] {
                let par =
                    execute_plan_tensors_with_threads(&tiny, &plan, &weights, &input, threads)
                        .unwrap();
                proptest::prop_assert_eq!(seq.data().len(), par.data().len());
                for (a, b) in seq.data().iter().zip(par.data()) {
                    proptest::prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }

        /// Monte-Carlo replications are seeded per index, so the simulated
        /// mean is bit-identical for any thread count.
        #[test]
        fn mean_latency_is_bit_identical_across_thread_counts(
            (seed, n) in (0u64..1000, 1usize..60),
        ) {
            let platform = PlatformProfile::aws_lambda();
            let perf = PerfModel::analytic(&platform);
            let vgg = zoo::vgg11();
            let plan = DpPartitioner::default().partition(&vgg, &perf).unwrap();
            let runtime = ForkJoinRuntime::new(&vgg, &plan, platform).unwrap();
            let seq = runtime.mean_latency_ms_with_threads(n, seed, 1);
            for threads in [2usize, 8] {
                let par = runtime.mean_latency_ms_with_threads(n, seed, threads);
                proptest::prop_assert_eq!(seq.to_bits(), par.to_bits());
            }
        }

        /// Acceptance criterion: with a fixed chaos seed, serving results —
        /// latency stats and every retry/hedge/timeout/degradation counter —
        /// are bit-identical for any thread count, because faults are a pure
        /// function of `(seed, FaultSite)` and never of scheduling.
        #[test]
        fn chaos_serving_is_bit_identical_across_thread_counts(
            (chaos_seed, run_seed, n) in (0u64..1000, 0u64..1000, 10usize..50),
        ) {
            let platform = PlatformProfile::aws_lambda();
            let perf = PerfModel::analytic(&platform);
            let vgg = zoo::vgg11();
            let plan = DpPartitioner::default().partition(&vgg, &perf).unwrap();
            let runtime = ForkJoinRuntime::new(&vgg, &plan, platform)
                .unwrap()
                .with_chaos(stress_chaos(chaos_seed))
                .unwrap()
                .with_policy(ResiliencePolicy::backoff_hedged());
            let seq = runtime.simulate_many_with_threads(n, run_seed, 1);
            for threads in [2usize, 8] {
                let par = runtime.simulate_many_with_threads(n, run_seed, threads);
                proptest::prop_assert_eq!(
                    seq.latency.mean().to_bits(),
                    par.latency.mean().to_bits()
                );
                proptest::prop_assert_eq!(
                    seq.latency.percentile(99.0).to_bits(),
                    par.latency.percentile(99.0).to_bits()
                );
                proptest::prop_assert_eq!(&seq.resilience, &par.resilience);
            }
        }
    }

    #[test]
    fn workload_serving_reports_latency_and_cost() {
        let platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let vgg = zoo::vgg11();
        let plan = DpPartitioner::default().partition(&vgg, &perf).unwrap();
        let runtime = ForkJoinRuntime::new(&vgg, &plan, platform).unwrap();
        let workload = ClosedLoop::new(8, 40, Micros::ZERO).unwrap();
        let report = runtime.serve_workload(workload, 3).unwrap();
        assert_eq!(report.latency.count(), 40);
        assert!(report.billing.billed_ms_total() > 0);
        assert!(report.billing.invocations() >= 40);
        // Pre-warming (paper §III-A) eliminates cold starts entirely.
        assert_eq!(report.cold_starts, 0);
        // A healthy platform serves every query cleanly.
        assert_eq!(report.resilience.ok_queries, 40);
        assert_eq!(report.resilience.retries, 0);
        assert_eq!(report.resilience.degraded_queries, 0);
        // The workload mean matches the warm single-query mean.
        let mean = report.latency.mean();
        let warm = runtime.mean_latency_ms(40, 5);
        assert!(
            (mean - warm).abs() / warm < 0.25,
            "workload mean {mean} vs warm mean {warm}"
        );
    }

    #[test]
    fn failure_injection_adds_retries_and_latency() {
        let mut platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let vgg = zoo::vgg11();
        let plan = DpPartitioner::default().partition(&vgg, &perf).unwrap();

        // Healthy platform: zero retries.
        let healthy = ForkJoinRuntime::new(&vgg, &plan, platform.clone()).unwrap();
        let h = healthy.simulate_many(50, 31);
        assert_eq!(h.resilience.retries, 0);
        assert_eq!(h.resilience.ok_queries, 50);

        // 15% of worker invocations fail: queries still complete, retries
        // appear, and the mean latency rises.
        platform.invocation_failure_rate = 0.15;
        let flaky = ForkJoinRuntime::new(&vgg, &plan, platform.clone()).unwrap();
        let f = flaky.simulate_many(50, 31);
        assert!(
            f.resilience.retries > 0,
            "expected some retries at 15% failure rate"
        );
        assert_eq!(f.resilience.failed_queries, 0, "local fallback never fails");
        assert!(
            f.latency.mean() > h.latency.mean(),
            "flaky {} vs healthy {}",
            f.latency.mean(),
            h.latency.mean()
        );

        // Workload serving also completes and reports the retries.
        let report = flaky
            .serve_workload(ClosedLoop::new(4, 40, Micros::ZERO).unwrap(), 7)
            .unwrap();
        assert_eq!(report.latency.count(), 40);
        assert!(report.resilience.retries > 0);
        assert_eq!(report.resilience.queries(), 40);
    }

    #[test]
    fn budget_exhaustion_degrades_gracefully() {
        // At an absurd failure rate, the "final attempt always succeeds"
        // fiction is gone: budgets exhaust, and the master recomputes the
        // lost shards locally — queries complete, honestly marked Degraded.
        let mut platform = PlatformProfile::aws_lambda();
        platform.invocation_failure_rate = 0.95;
        let perf = PerfModel::analytic(&PlatformProfile::aws_lambda());
        let vgg = zoo::vgg11();
        let plan = DpPartitioner::default().partition(&vgg, &perf).unwrap();
        let rt = ForkJoinRuntime::new(&vgg, &plan, platform).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let q = rt.simulate_query(&mut rng);
        let invocations: usize = rt.plan.groups().iter().map(|g| g.worker_count()).sum();
        let max_attempts = rt.policy.max_attempts as u64;
        assert!(q.latency_ms.is_finite());
        assert!(q.resilience.retries <= (invocations as u64) * (max_attempts - 1));
        assert_eq!(q.status, QueryStatus::Degraded);
        assert!(q.resilience.degraded_shards > 0);

        // Without local fallback the same query honestly fails.
        let rt = rt.with_policy(ResiliencePolicy {
            local_fallback: false,
            ..ResiliencePolicy::default()
        });
        let mut rng = StdRng::seed_from_u64(1);
        let q = rt.simulate_query(&mut rng);
        assert_eq!(q.status, QueryStatus::Failed);
        assert!(q.latency_ms.is_finite());

        // Fleet serving counts the degraded/failed queries the same way.
        let rt = rt.with_policy(ResiliencePolicy::default());
        let report = rt
            .serve_workload(ClosedLoop::new(2, 10, Micros::ZERO).unwrap(), 5)
            .unwrap();
        assert_eq!(report.resilience.queries(), 10);
        assert!(report.resilience.degraded_queries > 0);
        assert_eq!(report.resilience.failed_queries, 0);
    }

    #[test]
    fn hedging_reduces_tail_latency_under_stragglers() {
        // The HydraServe-style motivation: speculative duplicates convert
        // straggler tail latency into a second chance at the median.
        let platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let vgg = zoo::vgg11();
        let plan = DpPartitioner::default().partition(&vgg, &perf).unwrap();
        let chaos = ChaosConfig {
            seed: 42,
            invoke_failure_rate: 0.05,
            crash_rate: 0.0,
            straggler_rate: 0.15,
            straggler_slowdown: 8.0,
            corrupt_rate: 0.0,
            orchestrator_crash_rate: 0.0,
        };
        let naive = ForkJoinRuntime::new(&vgg, &plan, platform.clone())
            .unwrap()
            .with_chaos(chaos)
            .unwrap()
            .with_policy(ResiliencePolicy::naive_retry());
        let hedged = ForkJoinRuntime::new(&vgg, &plan, platform)
            .unwrap()
            .with_chaos(chaos)
            .unwrap()
            .with_policy(ResiliencePolicy::backoff_hedged());
        let n = naive.simulate_many(200, 9);
        let h = hedged.simulate_many(200, 9);
        assert!(h.resilience.hedges > 0);
        assert!(h.resilience.hedge_wins > 0);
        assert!(
            h.latency.percentile(99.0) < n.latency.percentile(99.0),
            "hedged p99 {} vs naive p99 {}",
            h.latency.percentile(99.0),
            n.latency.percentile(99.0)
        );
    }

    #[test]
    fn timeouts_abandon_extreme_stragglers() {
        let platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let vgg = zoo::vgg11();
        let plan = DpPartitioner::default().partition(&vgg, &perf).unwrap();
        let chaos = ChaosConfig {
            seed: 7,
            straggler_rate: 0.2,
            straggler_slowdown: 50.0,
            ..ChaosConfig::default()
        };
        let rt = ForkJoinRuntime::new(&vgg, &plan, platform)
            .unwrap()
            .with_chaos(chaos)
            .unwrap()
            .with_policy(ResiliencePolicy {
                attempt_timeout_factor: 2.0,
                ..ResiliencePolicy::backoff()
            });
        let report = rt.simulate_many(50, 3);
        assert!(report.resilience.timeouts > 0, "{:?}", report.resilience);
        // Every query still completes (retry or local fallback).
        assert_eq!(report.resilience.queries(), 50);
        assert_eq!(report.resilience.failed_queries, 0);
        assert!(report.latency.max().is_finite());
    }

    #[test]
    fn crash_recovery_returns_exact_tensor() {
        // Acceptance criterion: under injected worker crashes (panics
        // captured at the join), retries/local fallback still produce the
        // exact fault-free output, and the process never panics.
        let tiny = zoo::tiny_vgg();
        let weights = init_weights(tiny.graph(), 91).unwrap();
        let input = Tensor::from_fn(tiny.input_shape().clone(), |i| {
            ((i % 13) as f32 - 6.0) / 6.0
        });
        let plan = forced_split_plan(&tiny);
        let clean = execute_plan_tensors_with_threads(&tiny, &plan, &weights, &input, 1).unwrap();

        let injector = ChaosConfig {
            seed: 1234,
            invoke_failure_rate: 0.15,
            crash_rate: 0.25,
            corrupt_rate: 0.1,
            ..ChaosConfig::default()
        }
        .build()
        .unwrap();
        let mut any_faults = false;
        for threads in [1usize, 4] {
            let (out, counters) = execute_plan_tensors_resilient(
                &tiny,
                &plan,
                &weights,
                &input,
                Some(&injector),
                &ResiliencePolicy::default(),
                threads,
            )
            .unwrap();
            assert_eq!(clean.data().len(), out.data().len());
            for (a, b) in clean.data().iter().zip(out.data()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            any_faults |= counters.retries > 0 || counters.degraded_shards > 0;
        }
        assert!(any_faults, "chaos config injected no faults at all");
    }

    #[test]
    fn exhausted_tensor_budget_degrades_or_fails() {
        let tiny = zoo::tiny_vgg();
        let weights = init_weights(tiny.graph(), 92).unwrap();
        let input = Tensor::from_fn(tiny.input_shape().clone(), |i| (i as f32 * 0.11).cos());
        let plan = forced_split_plan(&tiny);
        let clean = execute_plan_tensors_with_threads(&tiny, &plan, &weights, &input, 1).unwrap();

        // Every invocation fails: all split pieces exhaust their budget.
        let always_fail = ChaosConfig::invoke_only(1.0, 5).build().unwrap();
        let (out, counters) = execute_plan_tensors_resilient(
            &tiny,
            &plan,
            &weights,
            &input,
            Some(&always_fail),
            &ResiliencePolicy::default(),
            2,
        )
        .unwrap();
        assert_eq!(clean.max_abs_diff(&out).unwrap(), 0.0);
        assert!(counters.degraded_shards > 0);
        assert_eq!(counters.degraded_queries, 1);

        // Without fallback, exhaustion is an honest error, not a panic.
        let err = execute_plan_tensors_resilient(
            &tiny,
            &plan,
            &weights,
            &input,
            Some(&always_fail),
            &ResiliencePolicy {
                local_fallback: false,
                ..ResiliencePolicy::default()
            },
            2,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::WorkerFailed { .. }), "{err}");
    }

    #[test]
    fn cold_first_wave_is_slower_without_prewarm() {
        // Serve the same workload with a manual (non-prewarmed) fleet: the
        // first wave pays cold starts, later queries reuse warm instances.
        let platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let vgg = zoo::vgg11();
        let plan = DpPartitioner::default().partition(&vgg, &perf).unwrap();
        let runtime = ForkJoinRuntime::new(&vgg, &plan, platform.clone()).unwrap();

        let mut fleet = Fleet::new(platform);
        runtime.deploy(&mut fleet).unwrap();
        let mut billing = BillingMeter::new(1, 0.0, 0.0);
        let mut rng = StdRng::seed_from_u64(9);
        // Query 1: all-cold. Query 2 (starting after 1 finished): all-warm.
        let mut counters = ResilienceCounters::default();
        let done_first = runtime
            .run_query_at(
                &mut fleet,
                &mut billing,
                Micros::ZERO,
                &mut rng,
                0,
                &mut counters,
            )
            .unwrap();
        let start_later = done_first;
        let done_later = runtime
            .run_query_at(
                &mut fleet,
                &mut billing,
                start_later,
                &mut rng,
                1,
                &mut counters,
            )
            .unwrap();
        let first = done_first.as_ms();
        let later = (done_later - start_later).as_ms();
        assert!(
            first > later * 1.5,
            "cold first query {first} vs warm later {later}"
        );
    }

    /// VGG-11 runtime plus its analytically predicted plan latency — the
    /// shared fixture for the overload tests.
    fn overload_fixture() -> (ForkJoinRuntime<'static>, f64) {
        use std::sync::OnceLock;
        static MODEL: OnceLock<LinearModel> = OnceLock::new();
        static PLAN: OnceLock<ExecutionPlan> = OnceLock::new();
        let platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let vgg = MODEL.get_or_init(zoo::vgg11);
        let plan = PLAN.get_or_init(|| DpPartitioner::default().partition(vgg, &perf).unwrap());
        let predicted = predict_plan(vgg, plan, &perf).unwrap().latency_ms;
        let runtime = ForkJoinRuntime::new(vgg, plan, platform).unwrap();
        (runtime, predicted)
    }

    #[test]
    fn shedding_bounds_admitted_tail_latency_at_overload() {
        // The tentpole acceptance criterion: at 2x the no-shed saturation
        // rate, the protected deployment keeps the p99 of admitted queries
        // near the SLO by shedding honestly, while the unprotected bounded
        // front door lets the queue (and every admitted latency) grow
        // without bound.
        let (runtime, predicted) = overload_fixture();
        let concurrency = 4;
        let slo_ms = 2.0 * predicted;
        let saturation_qps = 1000.0 * concurrency as f64 / predicted;
        let rate = 2.0 * saturation_qps;
        let queries = 400;

        let unprotected = runtime
            .clone()
            .with_overload(OverloadPolicy::unprotected(concurrency))
            .unwrap()
            .serve_open_loop(rate, queries, concurrency, 11)
            .unwrap();
        let protected = runtime
            .clone()
            .with_overload(OverloadPolicy::for_slo(slo_ms, concurrency))
            .unwrap()
            .serve_open_loop(rate, queries, concurrency, 11)
            .unwrap();

        assert_eq!(unprotected.overload.shed(), 0);
        assert!(
            protected.overload.shed() > 0,
            "2x saturation must shed: {:?}",
            protected.overload
        );
        assert_eq!(
            protected.overload.admitted + protected.overload.shed(),
            queries as u64,
            "every arrival is admitted or shed, never lost"
        );
        let protected_p99 = protected.latency.percentile(99.0);
        let unprotected_p99 = unprotected.latency.percentile(99.0);
        assert!(
            protected_p99 <= 1.5 * slo_ms,
            "admitted p99 {protected_p99:.1} ms vs SLO {slo_ms:.1} ms"
        );
        assert!(
            unprotected_p99 > 3.0 * slo_ms,
            "unprotected front door should collapse: p99 {unprotected_p99:.1} ms"
        );
        // Shed queries never run: they appear in resilience accounting but
        // not in any latency series.
        assert_eq!(protected.resilience.shed_queries, protected.overload.shed());
        assert_eq!(
            protected.latency.count() as u64,
            protected.overload.admitted
        );
    }

    #[test]
    fn deadline_cancellation_abandons_doomed_work() {
        // A deadline far below the plan latency (with predictive shedding
        // off, so queries are admitted anyway) must cancel mid-plan: the
        // master abandons the remaining groups and their would-be worker
        // attempts are counted, not completed.
        let (runtime, predicted) = overload_fixture();
        let policy = OverloadPolicy {
            shed_on_predicted_miss: false,
            ..OverloadPolicy::for_slo(0.3 * predicted, 2)
        };
        let report = runtime
            .clone()
            .with_overload(policy)
            .unwrap()
            // Sub-saturation rate: no queueing, so recorded latencies are
            // pure service times.
            .serve_open_loop(2.0, 40, 2, 5)
            .unwrap();
        assert_eq!(report.overload.shed(), 0, "predictive shedding disabled");
        assert!(
            report.resilience.deadline_exceeded_queries > 0,
            "{:?}",
            report.resilience
        );
        assert!(
            report.overload.cancelled_attempts > 0,
            "cancellation must abandon outstanding attempts: {:?}",
            report.overload
        );
        assert_eq!(
            report.by_status.deadline_exceeded.count() as u64,
            report.resilience.deadline_exceeded_queries
        );
        // Deadline-expired queries still return (an error response) early:
        // the master abandons at the next group boundary instead of running
        // the plan to completion.
        let max_ms = report.latency.percentile(100.0);
        assert!(
            max_ms < predicted,
            "max {max_ms:.1} ms vs plan {predicted:.1} ms"
        );
    }

    #[test]
    fn breakers_route_around_dead_lanes_before_retry_budget() {
        // With every invocation failing, a breaker-enabled deployment stops
        // burning the retry budget on known-bad lanes: after
        // `failure_threshold` consecutive failures the lane short-circuits
        // straight to master-local degraded execution.
        let (runtime, _) = overload_fixture();
        let chaos = ChaosConfig::invoke_only(1.0, 77);
        let workload = || ClosedLoop::new(2, 30, Micros::ZERO).unwrap();

        let without = runtime
            .clone()
            .with_chaos(chaos.clone())
            .unwrap()
            .serve_workload(workload(), 3)
            .unwrap();
        let with_breaker = runtime
            .clone()
            .with_chaos(chaos)
            .unwrap()
            .with_overload(OverloadPolicy {
                breaker: BreakerPolicy::standard(),
                ..OverloadPolicy::unprotected(2)
            })
            .unwrap()
            .serve_workload(workload(), 3)
            .unwrap();

        assert!(with_breaker.overload.breaker_opens > 0);
        assert!(
            with_breaker.overload.breaker_short_circuits > 0,
            "{:?}",
            with_breaker.overload
        );
        assert!(
            with_breaker.resilience.retries < without.resilience.retries,
            "breaker {} retries vs unguarded {}",
            with_breaker.resilience.retries,
            without.resilience.retries
        );
        // Every query still completes (degraded), so protection does not
        // trade availability for the saved retries.
        assert_eq!(
            with_breaker.resilience.degraded_queries + with_breaker.resilience.ok_queries,
            30
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(4))]

        /// Overload decisions are pure functions of seed and query identity:
        /// the full report — shed set, admission counters, breaker
        /// transitions, every latency — is bit-identical run to run, and
        /// the accounting never loses an arrival.
        #[test]
        fn overload_serving_is_deterministic_and_accounts_for_every_arrival(
            (seed, rate_scale, queries) in (0u64..1000, 1u32..5, 20usize..60),
        ) {
            let (runtime, predicted) = overload_fixture();
            let concurrency = 2;
            let rate = rate_scale as f64 * 500.0 * concurrency as f64 / predicted;
            let runtime = runtime
                .with_overload(OverloadPolicy::for_slo(2.0 * predicted, concurrency))
                .unwrap();
            let a = runtime.serve_open_loop(rate, queries, concurrency, seed).unwrap();
            let b = runtime.serve_open_loop(rate, queries, concurrency, seed).unwrap();
            proptest::prop_assert_eq!(a.latency.mean().to_bits(), b.latency.mean().to_bits());
            proptest::prop_assert_eq!(
                a.latency.percentile(99.0).to_bits(),
                b.latency.percentile(99.0).to_bits()
            );
            proptest::prop_assert_eq!(&a.resilience, &b.resilience);
            proptest::prop_assert_eq!(&a.overload, &b.overload);
            proptest::prop_assert_eq!(
                a.overload.admitted + a.overload.shed(),
                queries as u64
            );
            proptest::prop_assert_eq!(a.latency.count() as u64, a.overload.admitted);
            proptest::prop_assert_eq!(a.by_status.count(), a.latency.count());
        }

        /// Cooperative cancellation is deterministic at any thread count:
        /// checkpoints are consumed only on the sequential master path, so a
        /// token that fires after `k` checkpoints cancels at the same group
        /// — or lets the query finish with bit-identical output — whether
        /// pieces run inline or on 8 pool threads.
        #[test]
        fn cancellation_is_bit_identical_across_thread_counts(
            (weight_seed, chaos_seed, k) in (0u64..500, 0u64..500, 0u64..8),
        ) {
            let tiny = zoo::tiny_vgg();
            let weights = init_weights(tiny.graph(), weight_seed).unwrap();
            let input = Tensor::from_fn(tiny.input_shape().clone(), |i| {
                ((i % 13) as f32 - 6.0) / 7.0
            });
            let plan = forced_split_plan(&tiny);
            let injector = stress_chaos(chaos_seed).build().unwrap();
            let policy = ResiliencePolicy::default();
            let run = |threads: usize| {
                execute_plan_tensors_cancellable(
                    &tiny,
                    &plan,
                    &weights,
                    &input,
                    Some(&injector),
                    &policy,
                    threads,
                    &CancelToken::after_checkpoints(k),
                )
            };
            let seq = run(1);
            for threads in [2usize, 8] {
                let par = run(threads);
                match (&seq, &par) {
                    (Ok((st, sc)), Ok((pt, pc))) => {
                        proptest::prop_assert_eq!(st.data().len(), pt.data().len());
                        for (a, b) in st.data().iter().zip(pt.data()) {
                            proptest::prop_assert_eq!(a.to_bits(), b.to_bits());
                        }
                        proptest::prop_assert_eq!(sc, pc);
                    }
                    (
                        Err(CoreError::Cancelled { group: sg }),
                        Err(CoreError::Cancelled { group: pg }),
                    ) => proptest::prop_assert_eq!(sg, pg),
                    (s, p) => proptest::prop_assert!(
                        false,
                        "divergent outcomes: seq {s:?} vs {threads}-thread {p:?}"
                    ),
                }
            }
        }
    }

    use gillis_faas::batch::{BatchPolicy, SloClass};

    /// VGG-11 model, plan, analytic batch-1 prediction, and the Lambda
    /// platform — the shared fixture for the batched-serving tests.
    fn batch_fixture() -> (
        &'static LinearModel,
        &'static ExecutionPlan,
        PlatformProfile,
        crate::predict::PlanPrediction,
    ) {
        use std::sync::OnceLock;
        static MODEL: OnceLock<LinearModel> = OnceLock::new();
        static PLAN: OnceLock<ExecutionPlan> = OnceLock::new();
        let platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let vgg = MODEL.get_or_init(zoo::vgg11);
        let plan = PLAN.get_or_init(|| DpPartitioner::default().partition(vgg, &perf).unwrap());
        let prediction = crate::predict::predict_plan(vgg, plan, &perf).unwrap();
        (vgg, plan, platform, prediction)
    }

    #[test]
    fn batch_schedule_picks_cost_optimal_sizes_per_class_and_rate() {
        // The configurator trades window wait against per-query cost: a
        // high-rate class with a loose deadline gets a real batch, a
        // too-tight deadline is infeasible, and a starved class falls back
        // to small batches because windows would close underfilled.
        let (vgg, plan, platform, pred1) = batch_fixture();
        let mut policy = BatchPolicy::single(20.0 * pred1.latency_ms, 8);
        policy.max_window_ms = 10.0 * pred1.latency_ms;
        let busy = plan_batch_schedule(
            vgg,
            plan,
            &platform,
            TransferFormat::F32,
            &policy,
            // ~20 arrivals per plan latency: windows fill fast.
            20_000.0 / pred1.latency_ms,
        )
        .unwrap();
        assert_eq!(busy.memory_bytes, platform.instance_memory_bytes);
        assert!(busy.classes[0].batch > 1, "{:?}", busy.classes[0]);
        assert!(
            busy.classes[0].usd_per_query < pred1.usd,
            "batched {:.9} $/q vs batch-1 {:.9}",
            busy.classes[0].usd_per_query,
            pred1.usd
        );
        assert!(busy.classes[0].window_ms > 0.0);
        assert!(
            busy.classes[0].predicted_ms + policy.window_margin_ms <= policy.classes[0].deadline_ms
        );

        // A trickle of arrivals cannot fill large windows: the chosen batch
        // shrinks even though the deadline would allow more.
        let starved = plan_batch_schedule(
            vgg,
            plan,
            &platform,
            TransferFormat::F32,
            &policy,
            0.05 / pred1.latency_ms * 1000.0,
        )
        .unwrap();
        assert!(
            starved.classes[0].batch < busy.classes[0].batch,
            "starved {:?} vs busy {:?}",
            starved.classes[0],
            busy.classes[0]
        );

        // A deadline below the batch-1 latency is infeasible outright.
        let tight = BatchPolicy::single(0.5 * pred1.latency_ms, 4);
        let err = plan_batch_schedule(vgg, plan, &platform, TransferFormat::F32, &tight, 100.0)
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidArgument(_)), "{err}");
    }

    #[test]
    fn batch_schedule_joint_memory_pick_weighs_spend_rate() {
        // Memory candidates scale compute speed and price together; the
        // configurator must reject sizes the plan no longer fits and pick
        // the cheapest feasible spend rate among the rest.
        let (vgg, plan, platform, pred1) = batch_fixture();
        let base_mb = platform.instance_memory_bytes / 1_000_000;
        let mut policy = BatchPolicy::single(20.0 * pred1.latency_ms, 4);
        policy.memory_mb = vec![base_mb / 64, base_mb, 2 * base_mb];
        let schedule = plan_batch_schedule(
            vgg,
            plan,
            &platform,
            TransferFormat::F32,
            &policy,
            10_000.0 / pred1.latency_ms,
        )
        .unwrap();
        // The tiny candidate cannot hold VGG-11's weights; the big one is
        // faster but proportionally pricier per second, so the billed cost
        // per query never improves enough to beat the base size.
        assert_ne!(schedule.memory_bytes, (base_mb / 64) * 1_000_000);
        assert!(
            schedule.classes[0].usd_per_query <= pred1.usd,
            "{:?}",
            schedule.classes[0]
        );
        // Only listed candidates are eligible.
        assert!(policy
            .memory_mb
            .iter()
            .any(|&mb| mb * 1_000_000 == schedule.memory_bytes));
    }

    #[test]
    fn batch_one_serving_is_bit_identical_to_unbatched() {
        // The serving-level batch-1 fast path: a schedule that never forms
        // a batch must reproduce serve_open_loop exactly — same RNG
        // consumption, same starts, same latency series, same billing.
        let (vgg, plan, platform, pred1) = batch_fixture();
        let policy = BatchPolicy::batch_one();
        let rate = 500.0 / pred1.latency_ms; // sub-saturation
        let schedule =
            plan_batch_schedule(vgg, plan, &platform, TransferFormat::F32, &policy, rate).unwrap();
        assert_eq!(schedule.classes[0].batch, 1);
        let runtime = ForkJoinRuntime::new(vgg, plan, platform.clone())
            .unwrap()
            .with_overload(OverloadPolicy::unprotected(2))
            .unwrap();
        let plain = runtime.serve_open_loop(rate, 60, 2, 21).unwrap();
        let batched = runtime
            .serve_open_loop_batched(&policy, &schedule, rate, 60, 2, 21)
            .unwrap();
        assert_eq!(batched.batch.batches, 60);
        assert_eq!(batched.batch.batch_one_fast_path, 60);
        assert_eq!(batched.batch.batched_queries, 0);
        assert_eq!(
            batched.latency.mean().to_bits(),
            plain.latency.mean().to_bits()
        );
        assert_eq!(
            batched.latency.percentile(99.0).to_bits(),
            plain.latency.percentile(99.0).to_bits()
        );
        assert_eq!(
            batched.billing.usd_total().to_bits(),
            plain.billing.usd_total().to_bits()
        );
        assert_eq!(batched.resilience, plain.resilience);
        assert_eq!(batched.overload, plain.overload);
        assert_eq!(batched.cold_starts, plain.cold_starts);
    }

    #[test]
    fn batched_serving_amortizes_cost_under_load() {
        // Two SLO classes at a rate that fills windows: real batches form,
        // the fork wave is shared, and the billed cost per admitted query
        // drops below the batch-1 baseline.
        let (vgg, plan, platform, pred1) = batch_fixture();
        let policy = BatchPolicy {
            classes: vec![
                SloClass {
                    deadline_ms: 12.0 * pred1.latency_ms,
                    weight: 3.0,
                },
                SloClass {
                    deadline_ms: f64::INFINITY,
                    weight: 1.0,
                },
            ],
            max_batch: 8,
            max_window_ms: 6.0 * pred1.latency_ms,
            window_margin_ms: 1.0,
            amortized_fraction: 0.25,
            memory_mb: Vec::new(),
        };
        let rate = 8_000.0 / pred1.latency_ms;
        let queries = 160;
        let schedule =
            plan_batch_schedule(vgg, plan, &platform, TransferFormat::F32, &policy, rate).unwrap();
        assert!(schedule.classes.iter().any(|c| c.batch > 1));
        let runtime = ForkJoinRuntime::new(vgg, plan, platform.clone()).unwrap();
        let batched = runtime
            .serve_open_loop_batched(&policy, &schedule, rate, queries, 4, 3)
            .unwrap();
        let baseline = runtime
            .clone()
            .with_overload_predicted(OverloadPolicy::unprotected(4), pred1.latency_ms)
            .unwrap()
            .serve_open_loop(rate, queries, 4, 3)
            .unwrap();

        // Accounting: every arrival admitted or shed; every admitted query
        // is a member of exactly one dispatched batch.
        assert_eq!(
            batched.overload.admitted + batched.overload.shed(),
            queries as u64
        );
        assert_eq!(
            batched.batch.batched_queries + batched.batch.batch_one_fast_path,
            batched.overload.admitted
        );
        assert_eq!(batched.latency.count() as u64, batched.overload.admitted);
        assert!(
            batched.batch.batches < batched.overload.admitted,
            "{:?}",
            batched.batch
        );
        assert!(batched.batch.mean_batch() > 1.2, "{:?}", batched.batch);

        // The economics: fewer invocation waves, cheaper per query.
        let batched_usd = batched.billing.usd_total() / batched.overload.admitted as f64;
        let baseline_usd = baseline.billing.usd_total() / baseline.overload.admitted as f64;
        assert!(
            batched_usd < 0.8 * baseline_usd,
            "batched {batched_usd:.9} $/q vs baseline {baseline_usd:.9} $/q"
        );
    }

    #[test]
    fn batched_serving_is_deterministic_and_composes_with_chaos_and_overload() {
        // The full stack at once — fault injection, admission control with
        // breakers, and batch windows: two identical runs are bit-identical
        // and the accounting still never loses an arrival.
        let (vgg, plan, platform, pred1) = batch_fixture();
        let policy = BatchPolicy {
            classes: vec![
                SloClass {
                    deadline_ms: 10.0 * pred1.latency_ms,
                    weight: 1.0,
                },
                SloClass {
                    deadline_ms: f64::INFINITY,
                    weight: 1.0,
                },
            ],
            max_batch: 4,
            max_window_ms: 4.0 * pred1.latency_ms,
            window_margin_ms: 1.0,
            amortized_fraction: 0.25,
            memory_mb: Vec::new(),
        };
        let rate = 6_000.0 / pred1.latency_ms;
        let schedule =
            plan_batch_schedule(vgg, plan, &platform, TransferFormat::F32, &policy, rate).unwrap();
        let runtime = ForkJoinRuntime::new(vgg, plan, platform.clone())
            .unwrap()
            .with_chaos(ChaosConfig::invoke_only(0.05, 99))
            .unwrap()
            .with_overload(OverloadPolicy {
                breaker: BreakerPolicy::standard(),
                ..OverloadPolicy::for_slo(10.0 * pred1.latency_ms, 3)
            })
            .unwrap();
        let run = || {
            runtime
                .serve_open_loop_batched(&policy, &schedule, rate, 120, 3, 17)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.latency.mean().to_bits(), b.latency.mean().to_bits());
        assert_eq!(
            a.latency.percentile(99.0).to_bits(),
            b.latency.percentile(99.0).to_bits()
        );
        assert_eq!(
            a.billing.usd_total().to_bits(),
            b.billing.usd_total().to_bits()
        );
        assert_eq!(a.resilience, b.resilience);
        assert_eq!(a.overload, b.overload);
        assert_eq!(a.batch, b.batch);
        assert_eq!(a.overload.admitted + a.overload.shed(), 120);
        assert_eq!(
            a.batch.batched_queries + a.batch.batch_one_fast_path,
            a.overload.admitted
        );
        assert!(a.batch.batches > 0);
        // Chaos actually fired somewhere in the run.
        assert!(
            a.resilience.retries + a.resilience.degraded_queries + a.resilience.hedges > 0,
            "{:?}",
            a.resilience
        );
    }

    #[test]
    fn batched_serving_rejects_mismatched_schedules() {
        let (vgg, plan, platform, pred1) = batch_fixture();
        let policy = BatchPolicy::single(20.0 * pred1.latency_ms, 4);
        let schedule =
            plan_batch_schedule(vgg, plan, &platform, TransferFormat::F32, &policy, 100.0).unwrap();
        let runtime = ForkJoinRuntime::new(vgg, plan, platform).unwrap();
        // Wrong memory: the schedule insists on the platform it was
        // planned for.
        let mut wrong = schedule.clone();
        wrong.memory_bytes += 1;
        let err = runtime
            .serve_open_loop_batched(&policy, &wrong, 100.0, 10, 2, 1)
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidArgument(_)), "{err}");
        // Wrong class count.
        let mut short = schedule.clone();
        short.classes.clear();
        let err = runtime
            .serve_open_loop_batched(&policy, &short, 100.0, 10, 2, 1)
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidArgument(_)), "{err}");
    }

    /// Chaos with a baseline failure rate that a severity-8 outage episode
    /// pushes deep into correlated-failure territory.
    fn outage_chaos(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            invoke_failure_rate: 0.04,
            crash_rate: 0.0,
            straggler_rate: 0.02,
            straggler_slowdown: 4.0,
            corrupt_rate: 0.0,
            orchestrator_crash_rate: 0.0,
        }
    }

    #[test]
    fn outage_episodes_scale_failures_and_stay_deterministic() {
        // During severe platform episodes the invoke-failure rate multiplies
        // by the severity: serving with the outage enabled must retry and
        // degrade more than the same run without it, and two identical runs
        // must agree bit-for-bit.
        let (runtime, predicted) = overload_fixture();
        let rate = 0.3 * 1000.0 * 4.0 / predicted;
        let calm = runtime
            .clone()
            .with_chaos(outage_chaos(7))
            .unwrap()
            .with_policy(ResiliencePolicy::backoff())
            .serve_open_loop(rate, 200, 4, 11)
            .unwrap();
        let run = || {
            runtime
                .clone()
                .with_chaos(outage_chaos(7))
                .unwrap()
                .with_policy(ResiliencePolicy::backoff())
                .with_outage(OutageConfig::severe(8.0, 21))
                .unwrap()
                .serve_open_loop(rate, 200, 4, 11)
                .unwrap()
        };
        let stormy = run();
        let again = run();
        assert_eq!(stormy.resilience, again.resilience);
        assert_eq!(
            stormy.latency.mean().to_bits(),
            again.latency.mean().to_bits()
        );
        assert!(
            stormy.resilience.retries > calm.resilience.retries,
            "outage should force extra retries: {} vs {}",
            stormy.resilience.retries,
            calm.resilience.retries
        );
        assert!(stormy.retry_amplification() > calm.retry_amplification());
        // First-attempt accounting is self-consistent: one per worker lane
        // per served query.
        let lanes: u64 = runtime
            .plan
            .groups()
            .iter()
            .map(|g| g.worker_count() as u64)
            .sum();
        assert_eq!(calm.resilience.first_attempts, 200 * lanes);
    }

    #[test]
    fn retry_budget_collapses_amplification_under_outage() {
        // The tentpole acceptance criterion: under a severe correlated
        // outage, naive retries amplify every admitted query into ~2x+
        // worker invocations, while the token bucket caps the amplification
        // and converts the excess into (honest) local-fallback degradation.
        let (runtime, predicted) = overload_fixture();
        let rate = 0.3 * 1000.0 * 4.0 / predicted;
        let stormy = |rt: ForkJoinRuntime<'static>| {
            rt.with_chaos(ChaosConfig::invoke_only(0.35, 7))
                .unwrap()
                .serve_open_loop(rate, 300, 4, 11)
                .unwrap()
        };
        let naive = stormy(runtime.clone().with_policy(ResiliencePolicy::naive_retry()));
        let budgeted = stormy(
            runtime
                .clone()
                .with_policy(ResiliencePolicy::naive_retry())
                .with_retry_budget(RetryBudgetPolicy {
                    max_tokens: 16.0,
                    initial_tokens: 16.0,
                    refill_per_success: 0.05,
                })
                .unwrap(),
        );
        assert!(
            naive.retry_amplification() >= 1.4,
            "naive amplification {:.2}",
            naive.retry_amplification()
        );
        assert!(
            budgeted.retry_amplification() <= 1.2,
            "budgeted amplification {:.2}",
            budgeted.retry_amplification()
        );
        assert!(budgeted.resilience.budget_denied_retries > 0);
        // Denied retries become local fallbacks, not failures.
        assert_eq!(budgeted.resilience.failed_queries, 0);
        assert!(budgeted.resilience.degraded_queries > 0);
    }

    #[test]
    fn brownout_ladder_steps_down_under_outage_and_recovers() {
        // A long stream with episodic outages: the ladder must step down
        // during episodes (degraded arrivals appear below Full) and step
        // back up in the clean stretches (step_ups > 0), never ending the
        // run stuck when health has recovered.
        let (runtime, predicted) = overload_fixture();
        let rate = 0.3 * 1000.0 * 4.0 / predicted;
        // Sparse but devastating episodes: long clean stretches between
        // them give the probe-driven recovery something to observe.
        let outage = OutageConfig {
            seed: 3,
            window_ms: 200.0,
            start_prob: 0.01,
            min_windows: 10,
            max_windows: 25,
            severity: 60.0,
            platform: true,
            lanes: false,
            memory_tiers: false,
            orchestrators: false,
        };
        let brownout_policy = BrownoutPolicy {
            window_lanes: 16,
            probe_interval: 2,
            ..BrownoutPolicy::default()
        };
        let report = runtime
            .clone()
            .with_chaos(outage_chaos(7))
            .unwrap()
            .with_policy(ResiliencePolicy::backoff())
            .with_outage(outage)
            .unwrap()
            .with_brownout(brownout_policy)
            .unwrap()
            .serve_open_loop(rate, 600, 4, 11)
            .unwrap();
        assert!(
            report.brownout.step_downs > 0,
            "episodes must trip the ladder: {:?}",
            report.brownout
        );
        assert!(
            report.brownout.step_ups > 0,
            "clean windows must recover: {:?}",
            report.brownout
        );
        assert!(report.brownout.degraded_arrivals() > 0);
        // Every arrival is accounted at exactly one ladder level.
        assert_eq!(report.brownout.arrivals(), 600);
        // Identical runs agree bit-for-bit, counters included.
        let again = runtime
            .clone()
            .with_chaos(outage_chaos(7))
            .unwrap()
            .with_policy(ResiliencePolicy::backoff())
            .with_outage(outage)
            .unwrap()
            .with_brownout(brownout_policy)
            .unwrap()
            .serve_open_loop(rate, 600, 4, 11)
            .unwrap();
        assert_eq!(report.brownout, again.brownout);
        assert_eq!(report.resilience, again.resilience);
    }

    #[test]
    fn healthy_platform_is_bit_identical_with_budget_and_brownout_installed() {
        // On a healthy platform the resilience additions are pure
        // observers: the bucket never runs dry, the ladder never leaves
        // Full, and the serving report matches the plain runtime
        // bit-for-bit (latency, billing, and all pre-existing counters).
        let (runtime, predicted) = overload_fixture();
        let rate = 0.3 * 1000.0 * 4.0 / predicted;
        let plain = runtime.clone().serve_open_loop(rate, 200, 4, 13).unwrap();
        let guarded = runtime
            .clone()
            .with_retry_budget(RetryBudgetPolicy::default())
            .unwrap()
            .with_brownout(BrownoutPolicy::default())
            .unwrap()
            .serve_open_loop(rate, 200, 4, 13)
            .unwrap();
        assert_eq!(
            plain.latency.mean().to_bits(),
            guarded.latency.mean().to_bits()
        );
        assert_eq!(
            plain.billing.usd_total().to_bits(),
            guarded.billing.usd_total().to_bits()
        );
        assert_eq!(plain.resilience, guarded.resilience);
        assert_eq!(guarded.brownout.queries_at_level[0], 200);
        assert_eq!(guarded.brownout.step_downs, 0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(4))]

        /// Outage acceptance criterion: episode membership is a pure
        /// function of `(outage seed, domain, window)`, so chaotic serving
        /// under correlated outages — every counter included — is
        /// bit-identical for any `GILLIS_THREADS`.
        #[test]
        fn outage_simulation_is_bit_identical_across_thread_counts(
            (chaos_seed, outage_seed, n) in (0u64..1000, 0u64..1000, 10usize..40),
        ) {
            let platform = PlatformProfile::aws_lambda();
            let perf = PerfModel::analytic(&platform);
            let vgg = zoo::vgg11();
            let plan = DpPartitioner::default().partition(&vgg, &perf).unwrap();
            let runtime = ForkJoinRuntime::new(&vgg, &plan, platform)
                .unwrap()
                .with_chaos(stress_chaos(chaos_seed))
                .unwrap()
                .with_policy(ResiliencePolicy::backoff_hedged())
                .with_outage(OutageConfig::severe(8.0, outage_seed))
                .unwrap();
            let seq = runtime.simulate_many_with_threads(n, 5, 1);
            for threads in [2usize, 8] {
                let par = runtime.simulate_many_with_threads(n, 5, threads);
                proptest::prop_assert_eq!(
                    seq.latency.mean().to_bits(),
                    par.latency.mean().to_bits()
                );
                proptest::prop_assert_eq!(&seq.resilience, &par.resilience);
            }
        }

        /// Corruption is detected, never silent: under transfer corruption
        /// the tensor path's checksum verification rejects every corrupted
        /// payload, so any returned output is bit-identical to the
        /// fault-free run — and the detections are counted.
        #[test]
        fn corruption_never_reaches_an_ok_query(
            (weight_seed, chaos_seed) in (0u64..500, 0u64..500),
        ) {
            let tiny = zoo::tiny_vgg();
            let weights = init_weights(tiny.graph(), weight_seed).unwrap();
            let input = Tensor::from_fn(tiny.input_shape().clone(), |i| {
                ((i % 13) as f32 - 6.0) / 7.0
            });
            let plan = forced_split_plan(&tiny);
            let clean = execute_plan_tensors_resilient(
                &tiny, &plan, &weights, &input, None, &ResiliencePolicy::default(), 1,
            )
            .unwrap()
            .0;
            let injector = ChaosConfig {
                seed: chaos_seed,
                corrupt_rate: 0.3,
                ..ChaosConfig::default()
            }
            .build()
            .unwrap();
            for threads in [1usize, 4] {
                let (out, counters) = execute_plan_tensors_resilient(
                    &tiny, &plan, &weights, &input,
                    Some(&injector), &ResiliencePolicy::default(), threads,
                )
                .unwrap();
                for (a, b) in clean.data().iter().zip(out.data()) {
                    proptest::prop_assert_eq!(a.to_bits(), b.to_bits());
                }
                // At a 30% corrupt rate over dozens of pieces, at least one
                // corruption fires and every one is detected at the join.
                proptest::prop_assert!(counters.corruptions_detected > 0);
            }
        }
    }

    // ──────────────────────── pipelined serving ────────────────────────

    #[test]
    fn pipelined_single_group_delegates_to_fork_join() {
        // A single-group plan has nothing to overlap: the pipelined entry
        // point must produce a bit-identical report to the plain open loop
        // (same RNG stream, same recorders), with zero pipeline accounting.
        let tiny = zoo::tiny_vgg();
        let plan = ExecutionPlan::single_function(&tiny);
        let platform = PlatformProfile::aws_lambda();
        let runtime = ForkJoinRuntime::new(&tiny, &plan, platform).unwrap();
        let plain = runtime.serve_open_loop(40.0, 60, 2, 9).unwrap();
        let piped = runtime
            .serve_open_loop_pipelined(&PipelinePolicy::with_lanes(4), 40.0, 60, 2, 9)
            .unwrap();
        assert_eq!(plain.latency.count(), piped.latency.count());
        assert_eq!(
            plain.latency.mean().to_bits(),
            piped.latency.mean().to_bits()
        );
        assert_eq!(plain.resilience, piped.resilience);
        assert_eq!(plain.cold_starts, piped.cold_starts);
        assert_eq!(piped.pipeline, PipelineCounters::default());
    }

    #[test]
    fn pipelined_serving_is_deterministic_with_backpressure_and_chaos() {
        // The full stack at once — multi-stage plan, faults, hedged
        // retries, single-lane stages with depth-1 queues at ~3x the
        // bottleneck rate — must (a) replay bit-identically from the seed
        // (the loop is sequential over a totally ordered event stream, so
        // `GILLIS_THREADS` cannot influence it), and (b) park upstream
        // completions instead of dropping them when downstream queues fill.
        let tiny = zoo::tiny_vgg();
        let plan = forced_split_plan(&tiny);
        let platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let predicted = predict_plan(&tiny, &plan, &perf).unwrap().latency_ms;
        let runtime = ForkJoinRuntime::new(&tiny, &plan, platform)
            .unwrap()
            .with_chaos(stress_chaos(7))
            .unwrap()
            .with_policy(ResiliencePolicy::backoff_hedged());
        let policy = PipelinePolicy {
            lanes: 1,
            queue_depth: 1,
        };
        // Single-lane saturation is 1000/bottleneck >= stages/predicted
        // queries per ms; 3x the upper bound overloads every stage.
        let stages = plan.groups().len();
        let rate = 3.0 * stages as f64 * 1000.0 / predicted;
        let queries = 150;
        let run = || -> ServingReport {
            runtime
                .serve_open_loop_pipelined(&policy, rate, queries, 1, 21)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.latency.count(), b.latency.count());
        assert_eq!(a.latency.mean().to_bits(), b.latency.mean().to_bits());
        assert_eq!(
            a.latency.percentile(99.0).to_bits(),
            b.latency.percentile(99.0).to_bits()
        );
        assert_eq!(a.resilience, b.resilience);
        assert_eq!(a.overload, b.overload);
        assert_eq!(a.pipeline, b.pipeline);
        assert_eq!(
            a.billing.usd_total().to_bits(),
            b.billing.usd_total().to_bits()
        );
        assert_eq!(a.billing.invocations(), b.billing.invocations());

        assert_eq!(a.pipeline.stages, stages as u64);
        assert!(
            a.pipeline.backpressure_stalls > 0,
            "depth-1 queues at 3x saturation must park: {:?}",
            a.pipeline
        );
        assert!(
            a.pipeline.peak_stage_queue <= policy.queue_depth as u64,
            "queues are bounded: {:?}",
            a.pipeline
        );
        assert!(a.pipeline.handoffs > 0);
        // Sheds happen (bounded admission), and no admitted query is lost.
        assert!(a.overload.shed_queue_full > 0);
        assert_eq!(a.overload.admitted + a.overload.shed(), queries as u64);
        assert_eq!(a.latency.count() as u64, a.overload.admitted);
    }

    #[test]
    fn pipelining_beats_fork_join_goodput_at_saturation() {
        // The tentpole claim in miniature: with per-stage lane pools equal
        // to the fork-join concurrency, streaming queries through stages
        // admits and completes substantially more of an overloaded arrival
        // stream, because throughput is bounded by the slowest stage rather
        // than the end-to-end latency.
        let tiny = zoo::tiny_vgg();
        let plan = forced_split_plan(&tiny);
        let platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let predicted = predict_plan(&tiny, &plan, &perf).unwrap().latency_ms;
        let runtime = ForkJoinRuntime::new(&tiny, &plan, platform).unwrap();
        let concurrency = 2;
        let slo_ms = 4.0 * predicted;
        let rate = 2.0 * 1000.0 * concurrency as f64 / predicted;
        let queries = 300;
        let forkjoin = runtime
            .clone()
            .with_overload(OverloadPolicy::for_slo(slo_ms, concurrency))
            .unwrap()
            .serve_open_loop(rate, queries, concurrency, 11)
            .unwrap();
        let pipelined = runtime
            .clone()
            .with_overload(OverloadPolicy::for_slo(slo_ms, concurrency))
            .unwrap()
            .serve_open_loop_pipelined(
                &PipelinePolicy::with_lanes(concurrency),
                rate,
                queries,
                concurrency,
                11,
            )
            .unwrap();
        assert!(
            pipelined.overload.admitted > forkjoin.overload.admitted,
            "pipeline {} vs fork-join {} admitted",
            pipelined.overload.admitted,
            forkjoin.overload.admitted
        );
        let fj_ok = forkjoin.by_status.ok.count() + forkjoin.by_status.degraded.count();
        let pp_ok = pipelined.by_status.ok.count() + pipelined.by_status.degraded.count();
        assert!(
            pp_ok as f64 >= 1.3 * fj_ok as f64,
            "goodput: pipeline {pp_ok} vs fork-join {fj_ok}"
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(4))]

        /// Backpressure never loses a query: for any seed, rate, and lane
        /// count — with chaos, retries, deadlines, and bounded stage queues
        /// all active — every arrival is either shed at admission or
        /// recorded with a terminal status, and stage queues never exceed
        /// the policy depth.
        #[test]
        fn pipelined_serving_never_loses_a_query(
            (seed, rate_scale, lanes) in (0u64..1000, 1u32..6, 1usize..4),
        ) {
            let tiny = zoo::tiny_vgg();
            let plan = forced_split_plan(&tiny);
            let platform = PlatformProfile::aws_lambda();
            let perf = PerfModel::analytic(&platform);
            let predicted = predict_plan(&tiny, &plan, &perf).unwrap().latency_ms;
            let stages = plan.groups().len();
            let runtime = ForkJoinRuntime::new(&tiny, &plan, platform)
                .unwrap()
                .with_chaos(stress_chaos(seed ^ 0xabc))
                .unwrap()
                .with_policy(ResiliencePolicy::backoff_hedged())
                .with_overload(OverloadPolicy::for_slo(3.0 * predicted, lanes))
                .unwrap();
            let rate = rate_scale as f64 * stages as f64 * 1000.0 / predicted;
            let queries = 120usize;
            let policy = PipelinePolicy { lanes, queue_depth: 2 };
            let report = runtime
                .serve_open_loop_pipelined(&policy, rate, queries, lanes, seed)
                .unwrap();
            proptest::prop_assert_eq!(
                report.overload.admitted + report.overload.shed(),
                queries as u64
            );
            proptest::prop_assert_eq!(report.latency.count() as u64, report.overload.admitted);
            proptest::prop_assert_eq!(report.resilience.shed_queries, report.overload.shed());
            proptest::prop_assert!(
                report.pipeline.peak_stage_queue <= policy.queue_depth as u64
            );
            proptest::prop_assert!(report.pipeline.handoffs <= report.pipeline.stage_dispatches);
        }
    }

    /// Chaos that only crashes orchestrators: worker lanes stay perfectly
    /// healthy, so any behavioral difference is the recovery machinery's.
    fn orchestrator_chaos(rate: f64, seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            orchestrator_crash_rate: rate,
            ..ChaosConfig::default()
        }
    }

    /// Runs `queries` back-to-back queries through the fleet path with the
    /// runtime's own checkpoint cache, returning total service latency (ms)
    /// plus the resilience and recovery counters.
    fn drain_queries(
        rt: &ForkJoinRuntime<'_>,
        queries: u64,
        seed: u64,
        deadline_ms: Option<f64>,
    ) -> (f64, ResilienceCounters, RecoveryCounters) {
        let mut fleet = Fleet::new(rt.platform.clone());
        rt.deploy(&mut fleet).unwrap();
        let mut billing = BillingMeter::new(1, 0.0, 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut overload = OverloadCounters::default();
        let mut res = ResilienceCounters::default();
        let mut rec = RecoveryCounters::default();
        let mut cache = rt.recovery.map(CheckpointCache::new);
        let mut now = Micros::ZERO;
        let mut total_ms = 0.0;
        for q in 0..queries {
            let deadline = deadline_ms.map(|d| now + Micros::from_ms(d));
            let (done, _status) = rt
                .run_query_on_fleet(
                    &mut fleet,
                    &mut billing,
                    now,
                    &mut rng,
                    q,
                    deadline,
                    None,
                    &mut overload,
                    &mut res,
                    BrownoutLevel::Full,
                    None,
                    &mut rec,
                    cache.as_mut(),
                )
                .unwrap();
            total_ms += (done - now).as_ms();
            now = done;
        }
        (total_ms, res, rec)
    }

    /// Shared fixture for the recovery tests: a multi-group tiny-VGG plan
    /// (stage boundaries are where checkpoints live).
    fn recovery_fixture() -> (ForkJoinRuntime<'static>, f64) {
        use std::sync::OnceLock;
        static MODEL: OnceLock<LinearModel> = OnceLock::new();
        static PLAN: OnceLock<ExecutionPlan> = OnceLock::new();
        let platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let tiny = MODEL.get_or_init(zoo::tiny_vgg);
        let plan = PLAN.get_or_init(|| forced_split_plan(tiny));
        let predicted = predict_plan(tiny, plan, &perf).unwrap().latency_ms;
        assert!(plan.groups().len() >= 2, "fixture needs stage boundaries");
        (
            ForkJoinRuntime::new(tiny, plan, platform).unwrap(),
            predicted,
        )
    }

    #[test]
    fn failover_replays_resume_without_reexecuting_stages() {
        // The tentpole identity: with a capacious cache every orchestrator
        // crash finds its own boundary's checkpoint, so the replacement
        // re-executes *nothing* — worker invocations match the crash-free
        // run exactly, and total latency grows by exactly one failover per
        // crash. That equality is also the no-double-billing statement:
        // every worker-side stage execution is billed once.
        let (runtime, _) = recovery_fixture();
        let base = runtime
            .clone()
            .with_chaos(orchestrator_chaos(0.0, 5))
            .unwrap();
        let crashy = runtime
            .clone()
            .with_chaos(orchestrator_chaos(0.35, 5))
            .unwrap()
            .with_recovery(RecoveryPolicy::default())
            .unwrap();
        let (base_ms, base_res, base_rec) = drain_queries(&base, 40, 9, None);
        let (ms, res, rec) = drain_queries(&crashy, 40, 9, None);
        assert_eq!(base_rec.orchestrator_crashes, 0);
        assert!(rec.orchestrator_crashes > 0, "chaos must actually crash");
        assert_eq!(rec.failover_replays, rec.orchestrator_crashes);
        assert_eq!(rec.full_restarts, 0, "capacious cache never misses");
        assert!(rec.stages_saved >= rec.failover_replays);
        assert!(rec.recompute_avoided_ms > 0.0);
        assert_eq!(res.worker_invocations, base_res.worker_invocations);
        let expect =
            base_ms + rec.orchestrator_crashes as f64 * RecoveryPolicy::default().failover_ms;
        assert!(
            (ms - expect).abs() < 1e-6,
            "latency {ms:.3} vs base + crashes x failover {expect:.3}"
        );
    }

    #[test]
    fn crashes_without_checkpoints_pay_full_restarts() {
        // The baseline arm the bench compares against: same crashes, no
        // recovery policy — every crash redoes every completed stage.
        let (runtime, _) = recovery_fixture();
        let base = runtime
            .clone()
            .with_chaos(orchestrator_chaos(0.0, 5))
            .unwrap();
        let restart = runtime
            .clone()
            .with_chaos(orchestrator_chaos(0.35, 5))
            .unwrap();
        let (base_ms, base_res, _) = drain_queries(&base, 40, 9, None);
        let (ms, res, rec) = drain_queries(&restart, 40, 9, None);
        assert!(rec.orchestrator_crashes > 0);
        assert_eq!(rec.failover_replays, 0);
        assert_eq!(rec.full_restarts, rec.orchestrator_crashes);
        assert_eq!(rec.checkpoints_stored, 0, "no policy, no cache");
        assert!(
            res.worker_invocations > base_res.worker_invocations,
            "restarts re-execute stages: {} vs {}",
            res.worker_invocations,
            base_res.worker_invocations
        );
        assert!(ms > base_ms + rec.orchestrator_crashes as f64 * DEFAULT_FAILOVER_MS);
    }

    #[test]
    fn failed_groups_resume_retry_from_checkpoints() {
        // Worker lanes that exhaust a single attempt fail the group when
        // local fallback is off; with recovery on, the master retries the
        // group once from the checkpointed upstream boundary and turns some
        // of those failures into successes.
        let (runtime, _) = recovery_fixture();
        let fragile = ResiliencePolicy {
            max_attempts: 1,
            local_fallback: false,
            ..ResiliencePolicy::default()
        };
        let chaos = ChaosConfig {
            seed: 11,
            invoke_failure_rate: 0.25,
            ..ChaosConfig::default()
        };
        let bare = runtime
            .clone()
            .with_chaos(chaos)
            .unwrap()
            .with_policy(fragile);
        let resumed = bare
            .clone()
            .with_recovery(RecoveryPolicy::default())
            .unwrap();
        let (_, res0, rec0) = drain_queries(&bare, 60, 3, None);
        let (_, res1, rec1) = drain_queries(&resumed, 60, 3, None);
        assert!(res0.failed_queries > 0, "fixture must actually fail");
        assert_eq!(rec0.resume_retries, 0);
        assert!(rec1.resume_retries > 0);
        assert!(rec1.resume_retry_wins > 0);
        assert!(
            res1.failed_queries < res0.failed_queries,
            "resume retries should rescue failures: {} vs {}",
            res1.failed_queries,
            res0.failed_queries
        );
    }

    #[test]
    fn straggler_speculation_wins_races_from_checkpoints() {
        // Heavy stragglers: a stage past spec_factor x its p95 races a
        // duplicate execution seeded from the cached upstream output, and
        // the earlier finisher wins.
        let (runtime, _) = recovery_fixture();
        let chaos = ChaosConfig {
            seed: 13,
            straggler_rate: 0.3,
            straggler_slowdown: 25.0,
            ..ChaosConfig::default()
        };
        let slow = runtime.clone().with_chaos(chaos).unwrap();
        let spec = slow
            .clone()
            .with_recovery(RecoveryPolicy {
                spec_factor: 1.5,
                max_speculations: 4,
                ..RecoveryPolicy::default()
            })
            .unwrap();
        let (slow_ms, _, _) = drain_queries(&slow, 60, 3, None);
        let (spec_ms, _, rec) = drain_queries(&spec, 60, 3, None);
        assert!(rec.speculative_executions > 0);
        assert_eq!(
            rec.speculation_wins + rec.speculation_cancelled,
            rec.speculative_executions,
            "every speculation is resolved"
        );
        assert!(rec.speculation_wins > 0);
        assert!(
            spec_ms < slow_ms,
            "speculation should cut straggler latency: {spec_ms:.1} vs {slow_ms:.1}"
        );
    }

    #[test]
    fn doomed_resumes_are_skipped_at_the_deadline() {
        // A deadline with less slack than one failover + the remaining
        // stages: a crash fails the query fast instead of paying for a
        // resume that cannot finish in time.
        let (runtime, predicted) = recovery_fixture();
        let crashy = runtime
            .clone()
            .with_chaos(orchestrator_chaos(1.0, 3))
            .unwrap()
            .with_recovery(RecoveryPolicy::default())
            .unwrap();
        let (_, res, rec) = drain_queries(&crashy, 30, 7, Some(1.05 * predicted));
        assert!(rec.orchestrator_crashes > 0);
        assert!(
            rec.resume_skipped_deadline > 0,
            "tight deadline must skip some resumes: {rec:?}"
        );
        assert!(res.deadline_exceeded_queries > 0);
    }

    #[test]
    fn recovery_prices_retries_at_marginal_cost() {
        // Same worker chaos, same tiny token bucket: with recovery on, each
        // retry debits only its stage's share of the plan, so the bucket
        // funds strictly more retries before denying.
        let (runtime, _) = recovery_fixture();
        let bp = RetryBudgetPolicy {
            max_tokens: 4.0,
            initial_tokens: 4.0,
            refill_per_success: 0.0,
        };
        let flat = runtime
            .clone()
            .with_chaos(ChaosConfig::invoke_only(0.3, 7))
            .unwrap()
            .with_policy(ResiliencePolicy::naive_retry())
            .with_retry_budget(bp)
            .unwrap();
        let marginal = flat
            .clone()
            .with_recovery(RecoveryPolicy::default())
            .unwrap();
        let flat_r = flat.serve_open_loop(20.0, 200, 4, 11).unwrap();
        let marg_r = marginal.serve_open_loop(20.0, 200, 4, 11).unwrap();
        assert!(flat_r.resilience.budget_denied_retries > 0);
        assert!(
            marg_r.resilience.retries > flat_r.resilience.retries,
            "marginal pricing funds more retries: {} vs {}",
            marg_r.resilience.retries,
            flat_r.resilience.retries
        );
    }

    #[test]
    fn recovered_serving_is_deterministic() {
        // End-to-end: crashes + recovery through the public serving loop,
        // twice, bit-identical — the CI smoke contract in miniature.
        let (runtime, predicted) = recovery_fixture();
        let rate = 0.3 * 1000.0 * 4.0 / predicted;
        let chaos = ChaosConfig {
            seed: 7,
            invoke_failure_rate: 0.05,
            orchestrator_crash_rate: 0.2,
            ..ChaosConfig::default()
        };
        let run = || {
            runtime
                .clone()
                .with_chaos(chaos)
                .unwrap()
                .with_policy(ResiliencePolicy::backoff())
                .with_recovery(RecoveryPolicy::default())
                .unwrap()
                .serve_open_loop(rate, 150, 4, 11)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.recovery, b.recovery);
        assert_eq!(a.resilience, b.resilience);
        assert_eq!(a.latency.mean().to_bits(), b.latency.mean().to_bits());
        assert!(a.recovery.orchestrator_crashes > 0);
        assert!(a.recovery.checkpoints_stored > 0);
    }

    #[test]
    fn pipelined_serving_recovers_from_crashes_deterministically() {
        // The pipeline path has its own orchestrators (one per stage lane):
        // crashes there also replay from checkpoints, and downstream stages
        // stay bit-identical because normal execution never re-keys its RNG.
        let (runtime, predicted) = recovery_fixture();
        let lanes = 2;
        let rate = 0.5 * 1000.0 * lanes as f64 / predicted;
        let run = || {
            runtime
                .clone()
                .with_chaos(orchestrator_chaos(0.25, 9))
                .unwrap()
                .with_recovery(RecoveryPolicy::default())
                .unwrap()
                .with_overload(OverloadPolicy::for_slo(6.0 * predicted, lanes))
                .unwrap()
                .serve_open_loop_pipelined(&PipelinePolicy::with_lanes(lanes), rate, 150, lanes, 7)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.recovery, b.recovery);
        assert_eq!(a.latency.mean().to_bits(), b.latency.mean().to_bits());
        assert!(a.recovery.orchestrator_crashes > 0);
        assert!(a.recovery.failover_replays > 0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(4))]

        /// Resume bit-identity and billing, over seeds and crash rates:
        /// with a capacious cache, a crashing run re-executes no stage
        /// (worker invocations equal the crash-free run — no double
        /// billing) and its latency is exactly crashes x failover_ms more.
        #[test]
        fn failover_cost_is_exactly_crashes_times_failover(
            (seed, rate_centi) in (0u64..500, 5u32..40),
        ) {
            let (runtime, _) = recovery_fixture();
            let base = runtime
                .clone()
                .with_chaos(orchestrator_chaos(0.0, seed))
                .unwrap();
            let crashy = runtime
                .clone()
                .with_chaos(orchestrator_chaos(rate_centi as f64 / 100.0, seed))
                .unwrap()
                .with_recovery(RecoveryPolicy::default())
                .unwrap();
            let (base_ms, base_res, _) = drain_queries(&base, 25, seed ^ 0xd15, None);
            let (ms, res, rec) = drain_queries(&crashy, 25, seed ^ 0xd15, None);
            proptest::prop_assert_eq!(rec.full_restarts, 0);
            proptest::prop_assert_eq!(res.worker_invocations, base_res.worker_invocations);
            let expect = base_ms
                + rec.orchestrator_crashes as f64 * RecoveryPolicy::default().failover_ms;
            proptest::prop_assert!(
                (ms - expect).abs() < 1e-6,
                "latency {} vs base + crashes x failover {}", ms, expect
            );
        }
    }
}
