//! The fork-join serving runtime (paper §III-B).
//!
//! Three entry points:
//!
//! - [`ForkJoinRuntime::simulate_query`] — one warm query with sampled
//!   noise, following the plan group by group (master forks workers, waits
//!   for the slowest, assembles, continues). This is the "actual" latency
//!   the Fig 9–12 reproductions measure.
//! - [`ForkJoinRuntime::serve_workload`] — a closed-loop client population
//!   served against warm pools with cold starts and billing (the §V-C
//!   experiments: 100 clients × 1000 queries).
//! - [`execute_plan_tensors`] — runs the plan with *real tensor math*
//!   (slicing inputs with halos, running partitions, stitching outputs),
//!   proving the plan is semantics-preserving.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use gillis_faas::billing::BillingMeter;
use gillis_faas::des::EventQueue;
use gillis_faas::fleet::{Fleet, FunctionSpec};
use gillis_faas::metrics::LatencyStats;
use gillis_faas::workload::ClosedLoop;
use gillis_faas::{Micros, PlatformProfile};
use gillis_model::exec::Executor;
use gillis_model::weights::ModelWeights;
use gillis_model::LinearModel;
use gillis_tensor::Tensor;

use crate::partition::{balanced_ranges, GroupAnalysis, PartDim, PartitionOption, PartitionWork};
use crate::plan::{ExecutionPlan, Placement};
use crate::Result;

/// Outcome of a single simulated query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// End-to-end latency (the master's duration).
    pub latency_ms: f64,
    /// Per-group breakdown: `(fork, compute, join)` in milliseconds.
    pub group_ms: Vec<(f64, f64, f64)>,
    /// Durations of every worker execution, for billing.
    pub worker_ms: Vec<f64>,
    /// Worker invocations that failed and were retried by the master.
    pub retries: u64,
}

/// Retry budget per worker invocation. The final attempt is treated as
/// successful so a query always completes; with realistic failure rates the
/// probability of exhausting the budget is negligible.
const MAX_ATTEMPTS: u32 = 4;

/// Result of serving a closed-loop workload.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Query latency distribution.
    pub latency: LatencyStats,
    /// Accumulated billing.
    pub billing: BillingMeter,
    /// Cold starts observed across all functions.
    pub cold_starts: u64,
    /// Worker invocations that failed and were retried.
    pub retries: u64,
}

/// The plan executor over the simulated platform.
#[derive(Debug, Clone)]
pub struct ForkJoinRuntime<'a> {
    model: &'a LinearModel,
    plan: &'a ExecutionPlan,
    platform: PlatformProfile,
    analyses: Vec<GroupAnalysis>,
}

impl<'a> ForkJoinRuntime<'a> {
    /// Prepares a runtime for a validated plan.
    ///
    /// # Errors
    ///
    /// Returns plan-validation errors; the plan must fit the platform's
    /// model memory budget.
    pub fn new(
        model: &'a LinearModel,
        plan: &'a ExecutionPlan,
        platform: PlatformProfile,
    ) -> Result<Self> {
        plan.validate(model, platform.model_memory_budget)?;
        let analyses = plan.analyses(model)?;
        Ok(ForkJoinRuntime {
            model,
            plan,
            platform,
            analyses,
        })
    }

    fn sample_compute_ms<R: RngExt + ?Sized>(&self, work: &PartitionWork, rng: &mut R) -> f64 {
        work.flops
            .iter()
            .map(|&(class, flops)| self.platform.compute_ms_noisy(flops, class, rng))
            .sum()
    }

    /// Samples the master-side delay of exchanging one payload per part with
    /// `sizes.len()` functions: payload streams serialize over the master's
    /// egress (one transfer of the total bytes) while the per-invocation
    /// jitters overlap and cost their maximum. This is *the* fork/join
    /// model — [`ForkJoinRuntime::simulate_query`] and the fleet path
    /// ([`ForkJoinRuntime::run_query_at`] / workload serving) both sample
    /// it, so single-query simulation and fleet serving agree by
    /// construction, and both match the order-statistic predictor
    /// (`CommModel::group_transfer_parts_ms`) in expectation.
    fn sample_transfer_parts<R: RngExt + ?Sized>(&self, sizes: &[u64], rng: &mut R) -> f64 {
        let total: u64 = sizes.iter().sum();
        let jitter_max = (0..sizes.len())
            .map(|_| self.platform.invoke_latency_ms.sample(rng))
            .fold(0.0f64, f64::max);
        jitter_max + self.platform.transfer_ms(total)
    }

    /// Samples the delay a worker invocation spends on failed attempts
    /// before one succeeds: each failure costs the invocation jitter plus a
    /// fraction of the compute (the platform detects the crash and returns
    /// an error). Returns `(extra_delay_ms, retries)`.
    fn sample_failures<R: RngExt + ?Sized>(&self, compute_ms: f64, rng: &mut R) -> (f64, u64) {
        let rate = self.platform.invocation_failure_rate;
        if rate <= 0.0 {
            return (0.0, 0);
        }
        let mut extra = 0.0;
        let mut retries = 0;
        for _ in 0..MAX_ATTEMPTS - 1 {
            if rng.random::<f64>() >= rate {
                break;
            }
            extra += self.platform.invoke_latency_ms.sample(rng) + 0.3 * compute_ms;
            retries += 1;
        }
        (extra, retries)
    }

    /// Simulates one query on warm instances, sampling compute noise and
    /// communication jitter.
    pub fn simulate_query<R: RngExt + ?Sized>(&self, rng: &mut R) -> QueryOutcome {
        let mut latency = 0.0;
        let mut group_ms = Vec::with_capacity(self.analyses.len());
        let mut worker_ms = Vec::new();
        let mut retries = 0u64;
        for (g, a) in self.plan.groups().iter().zip(self.analyses.iter()) {
            let (fork, compute, join) = match g.placement {
                Placement::Master => (0.0, self.sample_compute_ms(&a.partitions[0], rng), 0.0),
                Placement::Workers | Placement::MasterAndWorkers => {
                    let worker_parts: &[PartitionWork] = if g.placement == Placement::Workers {
                        &a.partitions
                    } else {
                        &a.partitions[1..]
                    };
                    let master_compute = if g.placement == Placement::MasterAndWorkers {
                        self.sample_compute_ms(&a.partitions[0], rng)
                    } else {
                        0.0
                    };
                    if worker_parts.is_empty() {
                        (0.0, master_compute, 0.0)
                    } else {
                        let ins: Vec<u64> = worker_parts.iter().map(|p| p.input_bytes).collect();
                        let outs: Vec<u64> = worker_parts.iter().map(|p| p.output_bytes).collect();
                        let fork = self.sample_transfer_parts(&ins, rng);
                        let join = self.sample_transfer_parts(&outs, rng);
                        let mut slowest = master_compute;
                        for p in worker_parts {
                            let c = self.sample_compute_ms(p, rng);
                            let (extra, r) = self.sample_failures(c, rng);
                            retries += r;
                            slowest = slowest.max(extra + c);
                            worker_ms.push(
                                extra
                                    + c
                                    + self.platform.transfer_ms(p.input_bytes + p.output_bytes),
                            );
                        }
                        (fork, slowest, join)
                    }
                }
            };
            latency += fork + compute + join;
            group_ms.push((fork, compute, join));
        }
        QueryOutcome {
            latency_ms: latency,
            group_ms,
            worker_ms,
            retries,
        }
    }

    /// Mean latency over `n` simulated warm queries.
    ///
    /// Replications are independent Monte-Carlo draws, each seeded with
    /// [`replication_seed`]`(seed, i)` and evaluated on the shared
    /// [`gillis_pool::Pool`]; the sum reduces sequentially in replication
    /// order, so the result is bit-identical for any `GILLIS_THREADS`.
    pub fn mean_latency_ms(&self, n: usize, seed: u64) -> f64 {
        self.mean_latency_ms_with_threads(n, seed, gillis_pool::gillis_threads())
    }

    /// [`mean_latency_ms`](Self::mean_latency_ms) with an explicit thread
    /// count (`threads <= 1` runs inline on the caller).
    pub fn mean_latency_ms_with_threads(&self, n: usize, seed: u64, threads: usize) -> f64 {
        let n = n.max(1);
        let latencies: Vec<f64> = if threads <= 1 || n == 1 {
            (0..n)
                .map(|i| {
                    let mut rng = StdRng::seed_from_u64(replication_seed(seed, i as u64));
                    self.simulate_query(&mut rng).latency_ms
                })
                .collect()
        } else {
            gillis_pool::Pool::global().run(n, |i| {
                let mut rng = StdRng::seed_from_u64(replication_seed(seed, i as u64));
                self.simulate_query(&mut rng).latency_ms
            })
        };
        latencies.iter().sum::<f64>() / n as f64
    }

    /// Deploys the plan's functions into a fleet: one master (holding the
    /// partitions it computes) and one function per worker partition.
    ///
    /// # Errors
    ///
    /// Propagates deployment errors (e.g. out-of-memory specs).
    pub fn deploy(&self, fleet: &mut Fleet) -> Result<()> {
        let master_pkg = self.plan.master_weight_bytes(self.model)?;
        fleet.deploy(FunctionSpec {
            name: "master".into(),
            memory_bytes: self.platform.instance_memory_bytes,
            package_bytes: master_pkg,
        })?;
        for (gi, (g, a)) in self
            .plan
            .groups()
            .iter()
            .zip(self.analyses.iter())
            .enumerate()
        {
            let offset = if g.placement == Placement::Workers {
                0
            } else {
                1
            };
            for (pi, p) in a.partitions.iter().enumerate().skip(offset) {
                if g.placement == Placement::Master {
                    continue;
                }
                fleet.deploy(FunctionSpec {
                    name: format!("g{gi}p{pi}"),
                    memory_bytes: self.platform.instance_memory_bytes,
                    package_bytes: p.weight_bytes,
                })?;
            }
        }
        Ok(())
    }

    /// Serves a closed-loop workload end to end: warm pools, cold starts,
    /// and per-function billing. Clients issue their first queries at time
    /// zero and re-issue upon response.
    ///
    /// Functions are pre-warmed with one instance per client before the
    /// first query, mirroring Gillis's periodic warm-up pings (§III-A): the
    /// paper amortizes cold starts across "numerous inference queries" and
    /// measures warm behaviour.
    ///
    /// # Errors
    ///
    /// Propagates deployment and fleet errors.
    pub fn serve_workload(&self, mut workload: ClosedLoop, seed: u64) -> Result<ServingReport> {
        let mut fleet = Fleet::new(self.platform.clone());
        self.deploy(&mut fleet)?;
        self.prewarm(&mut fleet, workload.clients)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut billing = BillingMeter::new(
            self.platform.billing_granularity_ms,
            self.platform.price_per_gb_s,
            self.platform.price_per_invocation,
        );
        let mut latency = LatencyStats::new();
        let mut retries = 0u64;

        // Event = a client ready to issue a query.
        let mut queue: EventQueue<usize> = EventQueue::new();
        for client in 0..workload.clients {
            queue.push(Micros::ZERO, client);
        }
        while let Some((now, client)) = queue.pop() {
            if !workload.try_issue() {
                continue;
            }
            let done =
                self.run_query_on_fleet(&mut fleet, &mut billing, now, &mut rng, &mut retries)?;
            latency.record((done - now).as_ms());
            queue.push(done + workload.think_time, client);
        }

        let mut cold_starts = 0;
        let (c, _, _) = fleet.stats("master")?;
        cold_starts += c;
        for (gi, g) in self.plan.groups().iter().enumerate() {
            if g.placement == Placement::Master {
                continue;
            }
            let offset = if g.placement == Placement::Workers {
                0
            } else {
                1
            };
            for pi in offset..g.option.parts() {
                let (c, _, _) = fleet.stats(&format!("g{gi}p{pi}"))?;
                cold_starts += c;
            }
        }
        Ok(ServingReport {
            latency,
            billing,
            cold_starts,
            retries,
        })
    }

    /// Serves an open-loop Poisson arrival stream of `queries` queries at
    /// `rate_per_sec`, against pre-warmed pools sized for `prewarm_clients`
    /// concurrent queries. Unlike the closed loop, arrivals do not wait for
    /// responses — overload shows up as cold-start scale-out beyond the
    /// pre-warmed pool (the §II-A motivation for serverless burst capacity).
    ///
    /// # Errors
    ///
    /// Propagates deployment and fleet errors, and rejects non-positive
    /// rates.
    pub fn serve_open_loop(
        &self,
        rate_per_sec: f64,
        queries: usize,
        prewarm_clients: usize,
        seed: u64,
    ) -> Result<ServingReport> {
        let arrivals = gillis_faas::workload::PoissonArrivals::new(rate_per_sec)?;
        let mut fleet = Fleet::new(self.platform.clone());
        self.deploy(&mut fleet)?;
        self.prewarm(&mut fleet, prewarm_clients)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut billing = BillingMeter::new(
            self.platform.billing_granularity_ms,
            self.platform.price_per_gb_s,
            self.platform.price_per_invocation,
        );
        let mut latency = LatencyStats::new();
        let mut retries = 0u64;
        let mut now = Micros::ZERO;
        for _ in 0..queries {
            now += arrivals.next_gap(&mut rng);
            let done =
                self.run_query_on_fleet(&mut fleet, &mut billing, now, &mut rng, &mut retries)?;
            latency.record((done - now).as_ms());
        }
        let mut cold_starts = 0;
        let (c, _, _) = fleet.stats("master")?;
        cold_starts += c;
        for (gi, g) in self.plan.groups().iter().enumerate() {
            if g.placement == Placement::Master {
                continue;
            }
            let offset = if g.placement == Placement::Workers {
                0
            } else {
                1
            };
            for pi in offset..g.option.parts() {
                let (c, _, _) = fleet.stats(&format!("g{gi}p{pi}"))?;
                cold_starts += c;
            }
        }
        Ok(ServingReport {
            latency,
            billing,
            cold_starts,
            retries,
        })
    }

    /// Pre-warms `count` instances of the master and of every worker
    /// function (Gillis's concurrent warm-up pings, §III-A).
    ///
    /// # Errors
    ///
    /// Propagates fleet errors.
    pub fn prewarm(&self, fleet: &mut Fleet, count: usize) -> Result<()> {
        fleet.prewarm("master", count, Micros::ZERO)?;
        for (gi, g) in self.plan.groups().iter().enumerate() {
            if g.placement == Placement::Master {
                continue;
            }
            let offset = if g.placement == Placement::Workers {
                0
            } else {
                1
            };
            for pi in offset..g.option.parts() {
                fleet.prewarm(&format!("g{gi}p{pi}"), count, Micros::ZERO)?;
            }
        }
        Ok(())
    }

    /// Executes one query against an externally-managed fleet starting at
    /// `start`, charging `billing`, and returns its completion time. Public
    /// for cold-start studies that need control over pre-warming; workload
    /// serving should use [`ForkJoinRuntime::serve_workload`].
    ///
    /// # Errors
    ///
    /// Propagates fleet errors (e.g. undeployed functions).
    pub fn run_query_at(
        &self,
        fleet: &mut Fleet,
        billing: &mut BillingMeter,
        start: Micros,
        rng: &mut StdRng,
        retries: &mut u64,
    ) -> Result<Micros> {
        self.run_query_on_fleet(fleet, billing, start, rng, retries)
    }

    /// Executes one query against the fleet, charging billing, and returns
    /// its completion time.
    fn run_query_on_fleet(
        &self,
        fleet: &mut Fleet,
        billing: &mut BillingMeter,
        start: Micros,
        rng: &mut StdRng,
        attempts: &mut u64,
    ) -> Result<Micros> {
        let master = fleet.acquire("master", start)?;
        let mut now = master.ready_at;
        let master_began = now;
        for (gi, (g, a)) in self
            .plan
            .groups()
            .iter()
            .zip(self.analyses.iter())
            .enumerate()
        {
            match g.placement {
                Placement::Master => {
                    now += Micros::from_ms(self.sample_compute_ms(&a.partitions[0], rng));
                }
                Placement::Workers | Placement::MasterAndWorkers => {
                    let offset = if g.placement == Placement::Workers {
                        0
                    } else {
                        1
                    };
                    let worker_parts = &a.partitions[offset..];
                    let master_compute = if offset == 1 {
                        self.sample_compute_ms(&a.partitions[0], rng)
                    } else {
                        0.0
                    };
                    if worker_parts.is_empty() {
                        now += Micros::from_ms(master_compute);
                        continue;
                    }
                    // Fork: same egress model as `simulate_query` — one
                    // shared helper, so fleet serving and single-query
                    // simulation cannot drift apart.
                    let ins: Vec<u64> = worker_parts.iter().map(|p| p.input_bytes).collect();
                    let outs: Vec<u64> = worker_parts.iter().map(|p| p.output_bytes).collect();
                    let dispatched = now + Micros::from_ms(self.sample_transfer_parts(&ins, rng));
                    let mut compute_end = dispatched + Micros::from_ms(master_compute);
                    for (pi, p) in worker_parts.iter().enumerate() {
                        let fname = format!("g{gi}p{}", pi + offset);
                        // Invoke with retries: a failed attempt bills its
                        // partial duration, releases the instance, and the
                        // master re-invokes (possibly on a fresh instance)
                        // after a fresh jitter draw.
                        let mut attempt_at = dispatched;
                        let mut local_attempts = 0u32;
                        let end = loop {
                            let acq = fleet.acquire(&fname, attempt_at)?;
                            let work_start = acq.ready_at.max(attempt_at);
                            let compute = Micros::from_ms(self.sample_compute_ms(p, rng));
                            let failed = self.platform.invocation_failure_rate > 0.0
                                && local_attempts < MAX_ATTEMPTS - 1
                                && rng.random::<f64>() < self.platform.invocation_failure_rate;
                            if failed {
                                *attempts += 1;
                                local_attempts += 1;
                                let crash = work_start + Micros::from_ms(0.3 * compute.as_ms());
                                billing.record(
                                    (crash - work_start).as_ms(),
                                    self.platform.instance_memory_bytes,
                                );
                                fleet.release(&fname, crash)?;
                                attempt_at = crash
                                    + Micros::from_ms(self.platform.invoke_latency_ms.sample(rng));
                                continue;
                            }
                            let end = work_start + compute;
                            // Billed from payload receipt to response
                            // emission, as in `QueryOutcome::worker_ms`.
                            billing.record(
                                (end - work_start).as_ms()
                                    + self.platform.transfer_ms(p.input_bytes + p.output_bytes),
                                self.platform.instance_memory_bytes,
                            );
                            fleet.release(&fname, end)?;
                            break end;
                        };
                        compute_end = compute_end.max(end);
                    }
                    // Join: collection jitter + serialized replies, again via
                    // the shared helper.
                    now = compute_end + Micros::from_ms(self.sample_transfer_parts(&outs, rng));
                }
            }
        }
        billing.record(
            (now - master_began).as_ms(),
            self.platform.instance_memory_bytes,
        );
        fleet.release("master", now)?;
        Ok(now)
    }
}

/// Derives the RNG seed for Monte-Carlo replication `index` of a run keyed
/// by `seed` (splitmix64 finalizer). Replications get decorrelated streams
/// that depend only on `(seed, index)` — never on which thread runs them —
/// so parallel simulation and training stay bit-identical at any pool width.
#[must_use]
pub fn replication_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Executes a plan with real tensor math: for each group, slices the input
/// according to the partition option (halo rows for spatial splits, whole
/// input for weight splits), runs every partition through the reference
/// executor, and stitches the outputs back together. The result must equal
/// the unpartitioned forward pass — Gillis's no-accuracy-loss property.
///
/// Partitions within a [`PartitionOption::Split`] group are independent (they
/// read the shared group input and each produces a disjoint output slice), so
/// they run concurrently on the shared [`gillis_pool::Pool`]; pieces are
/// collected and concatenated in range order, making the output bit-identical
/// to the sequential path.
///
/// # Errors
///
/// Propagates executor errors; returns [`crate::CoreError::InvalidPlan`] if the
/// plan does not validate against the model.
pub fn execute_plan_tensors(
    model: &LinearModel,
    plan: &ExecutionPlan,
    weights: &ModelWeights,
    input: &Tensor,
) -> Result<Tensor> {
    execute_plan_tensors_with_threads(model, plan, weights, input, gillis_pool::gillis_threads())
}

/// [`execute_plan_tensors`] with an explicit thread count (`threads <= 1`
/// runs every partition inline on the caller).
///
/// # Errors
///
/// Propagates executor errors; returns [`crate::CoreError::InvalidPlan`] if the
/// plan does not validate against the model.
pub fn execute_plan_tensors_with_threads(
    model: &LinearModel,
    plan: &ExecutionPlan,
    weights: &ModelWeights,
    input: &Tensor,
    threads: usize,
) -> Result<Tensor> {
    plan.validate(model, u64::MAX)?;
    let exec = Executor::new(model.graph(), weights);
    let mut cur = input.clone();
    for g in plan.groups() {
        let layers = &model.layers()[g.start..g.end];
        cur = match g.option {
            PartitionOption::Single => exec.run_segment(layers, &cur)?,
            PartitionOption::Split { dim, parts } => {
                let (axis, total) = match dim {
                    PartDim::Height => (1usize, layers[layers.len() - 1].out_shape.dims()[1]),
                    PartDim::Width => (2usize, layers[layers.len() - 1].out_shape.dims()[2]),
                    PartDim::Channel => (0usize, layers[layers.len() - 1].out_shape.dims()[0]),
                };
                let ranges = balanced_ranges(total, parts);
                let run_piece = |r: std::ops::Range<usize>| match dim {
                    PartDim::Height => exec.run_segment_rows(layers, &cur, r),
                    PartDim::Width => exec.run_segment_cols(layers, &cur, r),
                    PartDim::Channel => exec.run_segment_channels(layers, &cur, r),
                };
                let results: Vec<gillis_model::Result<Tensor>> = if threads <= 1
                    || ranges.len() <= 1
                {
                    ranges.into_iter().map(run_piece).collect()
                } else {
                    gillis_pool::Pool::global().run(ranges.len(), |i| run_piece(ranges[i].clone()))
                };
                // Surface the first error in partition order, matching the
                // sequential path's early return.
                let mut pieces = Vec::with_capacity(results.len());
                for r in results {
                    pieces.push(r?);
                }
                Tensor::concat(&pieces, axis).map_err(gillis_model::ModelError::from)?
            }
        };
    }
    Ok(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::{DpPartitioner, PartitionerConfig};
    use crate::predict::predict_plan;
    use gillis_model::weights::init_weights;
    use gillis_model::zoo;
    use gillis_perf::PerfModel;

    #[test]
    fn simulated_latency_matches_prediction() {
        // Fig 15 (bottom): end-to-end prediction error within ~6%.
        let platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let vgg = zoo::vgg16();
        let plan = DpPartitioner::default().partition(&vgg, &perf).unwrap();
        let predicted = predict_plan(&vgg, &plan, &perf).unwrap().latency_ms;
        let runtime = ForkJoinRuntime::new(&vgg, &plan, platform).unwrap();
        let actual = runtime.mean_latency_ms(50, 7);
        let rel = (predicted - actual).abs() / actual;
        assert!(rel < 0.06, "predicted {predicted:.1}, actual {actual:.1}");
    }

    #[test]
    fn plan_execution_preserves_semantics() {
        // The headline property: a partitioned plan computes exactly the
        // same logits as the unpartitioned model.
        let tiny = zoo::tiny_vgg();
        let weights = init_weights(tiny.graph(), 77).unwrap();
        let exec = Executor::new(tiny.graph(), &weights);
        let input = Tensor::from_fn(tiny.input_shape().clone(), |i| {
            ((i % 17) as f32 - 8.0) / 8.0
        });
        let full = exec.forward(&tiny, &input).unwrap();

        let platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let config = PartitionerConfig {
            degrees: vec![2, 4],
            ..PartitionerConfig::default()
        };
        let plan = DpPartitioner::new(config).partition(&tiny, &perf).unwrap();
        let out = execute_plan_tensors(&tiny, &plan, &weights, &input).unwrap();
        assert!(full.max_abs_diff(&out).unwrap() < 1e-4);
    }

    #[test]
    fn forced_parallel_plan_execution_preserves_semantics() {
        use crate::plan::PlannedGroup;
        let tiny = zoo::tiny_vgg();
        let weights = init_weights(tiny.graph(), 78).unwrap();
        let exec = Executor::new(tiny.graph(), &weights);
        let input = Tensor::from_fn(tiny.input_shape().clone(), |i| (i as f32 * 0.37).sin());
        let full = exec.forward(&tiny, &input).unwrap();

        // Hand-built aggressive plan: conv group split 4-way spatially,
        // pools split 2-way, dense layers split by output units.
        let n = tiny.layers().len();
        let mut groups = Vec::new();
        for i in 0..n {
            let layer = &tiny.layers()[i];
            let option =
                if layer.class.supports_spatial() && tiny.layers()[i].out_shape.dims()[1] >= 4 {
                    PartitionOption::Split {
                        dim: PartDim::Height,
                        parts: 4,
                    }
                } else if layer.class.channel_splittable() && layer.out_shape.dims()[0] >= 2 {
                    PartitionOption::Split {
                        dim: PartDim::Channel,
                        parts: 2,
                    }
                } else {
                    PartitionOption::Single
                };
            groups.push(PlannedGroup {
                start: i,
                end: i + 1,
                option,
                placement: if option == PartitionOption::Single {
                    Placement::Master
                } else {
                    Placement::Workers
                },
            });
        }
        let plan = ExecutionPlan::new(groups);
        let out = execute_plan_tensors(&tiny, &plan, &weights, &input).unwrap();
        assert!(full.max_abs_diff(&out).unwrap() < 1e-4);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(4))]

        /// Tentpole determinism contract: the pooled tensor path produces
        /// *bit-identical* floats to the sequential path for any thread
        /// count, because partitions own disjoint output slices and are
        /// concatenated in range order.
        #[test]
        fn plan_execution_is_bit_identical_across_thread_counts(
            (weight_seed, input_scale) in (0u64..1000, 1usize..5),
        ) {
            let tiny = zoo::tiny_vgg();
            let weights = init_weights(tiny.graph(), weight_seed).unwrap();
            let input = Tensor::from_fn(tiny.input_shape().clone(), |i| {
                ((i % (7 * input_scale)) as f32 - 3.0) / (4.0 * input_scale as f32)
            });
            let platform = PlatformProfile::aws_lambda();
            let perf = PerfModel::analytic(&platform);
            let config = PartitionerConfig {
                degrees: vec![2, 4],
                ..PartitionerConfig::default()
            };
            let plan = DpPartitioner::new(config).partition(&tiny, &perf).unwrap();
            let seq = execute_plan_tensors_with_threads(&tiny, &plan, &weights, &input, 1).unwrap();
            for threads in [2usize, 8] {
                let par =
                    execute_plan_tensors_with_threads(&tiny, &plan, &weights, &input, threads)
                        .unwrap();
                proptest::prop_assert_eq!(seq.data().len(), par.data().len());
                for (a, b) in seq.data().iter().zip(par.data()) {
                    proptest::prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }

        /// Monte-Carlo replications are seeded per index, so the simulated
        /// mean is bit-identical for any thread count.
        #[test]
        fn mean_latency_is_bit_identical_across_thread_counts(
            (seed, n) in (0u64..1000, 1usize..60),
        ) {
            let platform = PlatformProfile::aws_lambda();
            let perf = PerfModel::analytic(&platform);
            let vgg = zoo::vgg11();
            let plan = DpPartitioner::default().partition(&vgg, &perf).unwrap();
            let runtime = ForkJoinRuntime::new(&vgg, &plan, platform).unwrap();
            let seq = runtime.mean_latency_ms_with_threads(n, seed, 1);
            for threads in [2usize, 8] {
                let par = runtime.mean_latency_ms_with_threads(n, seed, threads);
                proptest::prop_assert_eq!(seq.to_bits(), par.to_bits());
            }
        }
    }

    #[test]
    fn workload_serving_reports_latency_and_cost() {
        let platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let vgg = zoo::vgg11();
        let plan = DpPartitioner::default().partition(&vgg, &perf).unwrap();
        let runtime = ForkJoinRuntime::new(&vgg, &plan, platform).unwrap();
        let workload = ClosedLoop::new(8, 40, Micros::ZERO).unwrap();
        let report = runtime.serve_workload(workload, 3).unwrap();
        assert_eq!(report.latency.count(), 40);
        assert!(report.billing.billed_ms_total() > 0);
        assert!(report.billing.invocations() >= 40);
        // Pre-warming (paper §III-A) eliminates cold starts entirely.
        assert_eq!(report.cold_starts, 0);
        // The workload mean matches the warm single-query mean.
        let mean = report.latency.mean();
        let warm = runtime.mean_latency_ms(40, 5);
        assert!(
            (mean - warm).abs() / warm < 0.25,
            "workload mean {mean} vs warm mean {warm}"
        );
    }

    #[test]
    fn failure_injection_adds_retries_and_latency() {
        let mut platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let vgg = zoo::vgg11();
        let plan = DpPartitioner::default().partition(&vgg, &perf).unwrap();

        // Healthy platform: zero retries.
        let healthy = ForkJoinRuntime::new(&vgg, &plan, platform.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        let h: Vec<QueryOutcome> = (0..50).map(|_| healthy.simulate_query(&mut rng)).collect();
        assert!(h.iter().all(|q| q.retries == 0));
        let h_mean = h.iter().map(|q| q.latency_ms).sum::<f64>() / 50.0;

        // 15% of worker invocations fail: queries still complete, retries
        // appear, and the mean latency rises.
        platform.invocation_failure_rate = 0.15;
        let flaky = ForkJoinRuntime::new(&vgg, &plan, platform.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        let f: Vec<QueryOutcome> = (0..50).map(|_| flaky.simulate_query(&mut rng)).collect();
        let total_retries: u64 = f.iter().map(|q| q.retries).sum();
        assert!(
            total_retries > 0,
            "expected some retries at 15% failure rate"
        );
        let f_mean = f.iter().map(|q| q.latency_ms).sum::<f64>() / 50.0;
        assert!(f_mean > h_mean, "flaky {f_mean} vs healthy {h_mean}");

        // Workload serving also completes and reports the retries.
        let report = flaky
            .serve_workload(ClosedLoop::new(4, 40, Micros::ZERO).unwrap(), 7)
            .unwrap();
        assert_eq!(report.latency.count(), 40);
        assert!(report.retries > 0);
    }

    #[test]
    fn retry_budget_bounds_worst_case() {
        // Even at an absurd failure rate every query completes within the
        // retry budget (the final attempt always succeeds).
        let mut platform = PlatformProfile::aws_lambda();
        platform.invocation_failure_rate = 0.95;
        let perf = PerfModel::analytic(&PlatformProfile::aws_lambda());
        let vgg = zoo::vgg11();
        let plan = DpPartitioner::default().partition(&vgg, &perf).unwrap();
        let rt = ForkJoinRuntime::new(&vgg, &plan, platform).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let q = rt.simulate_query(&mut rng);
        let invocations: usize = rt.plan.groups().iter().map(|g| g.worker_count()).sum();
        assert!(q.latency_ms.is_finite());
        assert!(q.retries <= (invocations as u64) * (MAX_ATTEMPTS as u64 - 1));
    }

    #[test]
    fn cold_first_wave_is_slower_without_prewarm() {
        // Serve the same workload with a manual (non-prewarmed) fleet: the
        // first wave pays cold starts, later queries reuse warm instances.
        let platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let vgg = zoo::vgg11();
        let plan = DpPartitioner::default().partition(&vgg, &perf).unwrap();
        let runtime = ForkJoinRuntime::new(&vgg, &plan, platform.clone()).unwrap();

        let mut fleet = Fleet::new(platform);
        runtime.deploy(&mut fleet).unwrap();
        let mut billing = BillingMeter::new(1, 0.0, 0.0);
        let mut rng = StdRng::seed_from_u64(9);
        // Query 1: all-cold. Query 2 (starting after 1 finished): all-warm.
        let mut retries = 0;
        let done_first = runtime
            .run_query_on_fleet(
                &mut fleet,
                &mut billing,
                Micros::ZERO,
                &mut rng,
                &mut retries,
            )
            .unwrap();
        let start_later = done_first;
        let done_later = runtime
            .run_query_on_fleet(
                &mut fleet,
                &mut billing,
                start_later,
                &mut rng,
                &mut retries,
            )
            .unwrap();
        let first = done_first.as_ms();
        let later = (done_later - start_later).as_ms();
        assert!(
            first > later * 1.5,
            "cold first query {first} vs warm later {later}"
        );
    }
}
