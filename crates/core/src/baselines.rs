//! The paper's serving baselines (§V-B).
//!
//! - **Default**: a single function serves the whole model; infeasible
//!   (OOM) when the weights exceed the memory budget.
//! - **Pipeline**: layers are divided into stages small enough to fit the
//!   budget and staged in external storage; a single function streams each
//!   stage's weights in and executes it sequentially. Its latency decomposes
//!   into weight loading and computation — the breakdown Fig 11 shows.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use gillis_faas::store::ObjectStore;
use gillis_faas::PlatformProfile;
use gillis_model::LinearModel;
use gillis_perf::{flops_by_class, PerfModel};

use crate::error::CoreError;
use crate::plan::ExecutionPlan;
use crate::predict::predict_plan;
use crate::Result;

/// Latency of Default serving (single warm function), predicted by the
/// performance model.
///
/// # Errors
///
/// Returns [`CoreError::OutOfMemory`] when the model does not fit the
/// platform's model-memory budget — the condition that motivates Gillis.
pub fn default_serving_ms(model: &LinearModel, perf: &PerfModel) -> Result<f64> {
    let budget = perf.platform.model_memory_budget;
    if model.weight_bytes() > budget {
        return Err(CoreError::OutOfMemory {
            required: model.weight_bytes(),
            budget,
        });
    }
    let plan = ExecutionPlan::single_function(model);
    Ok(predict_plan(model, &plan, perf)?.latency_ms)
}

/// One pipeline stage: consecutive merged layers whose weights fit the
/// budget together.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineStage {
    /// First merged-layer index (inclusive).
    pub start: usize,
    /// Last merged-layer index (exclusive).
    pub end: usize,
    /// Stage weight bytes (one storage object).
    pub weight_bytes: u64,
}

/// Simulated latency of Pipeline serving, with its load/compute breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineOutcome {
    /// End-to-end latency.
    pub total_ms: f64,
    /// Time spent streaming weights from the object store.
    pub load_ms: f64,
    /// Time spent computing.
    pub compute_ms: f64,
    /// Number of stages.
    pub stages: usize,
}

/// Splits the model into pipeline stages greedily: each stage takes as many
/// consecutive layers as fit within `budget_fraction` of the platform's
/// model budget (leaving headroom for activations and double-buffering).
///
/// # Errors
///
/// Returns [`CoreError::Infeasible`] if a single merged layer exceeds the
/// stage budget.
pub fn pipeline_stages(
    model: &LinearModel,
    platform: &PlatformProfile,
    budget_fraction: f64,
) -> Result<Vec<PipelineStage>> {
    let budget = (platform.model_memory_budget as f64 * budget_fraction) as u64;
    let mut stages = Vec::new();
    let mut start = 0;
    let mut acc = 0u64;
    for (i, layer) in model.layers().iter().enumerate() {
        if layer.weight_bytes > budget {
            return Err(CoreError::Infeasible(format!(
                "layer {} ({} bytes) exceeds the pipeline stage budget {budget}",
                layer.name, layer.weight_bytes
            )));
        }
        if acc + layer.weight_bytes > budget && i > start {
            stages.push(PipelineStage {
                start,
                end: i,
                weight_bytes: acc,
            });
            start = i;
            acc = 0;
        }
        acc += layer.weight_bytes;
    }
    if start < model.layers().len() {
        stages.push(PipelineStage {
            start,
            end: model.layers().len(),
            weight_bytes: acc,
        });
    }
    Ok(stages)
}

/// Simulates Pipeline serving of one query: a single function sequentially
/// loads each stage from the object store and executes it.
///
/// # Errors
///
/// Propagates stage-construction failures.
pub fn pipeline_serving(
    model: &LinearModel,
    platform: &PlatformProfile,
    seed: u64,
) -> Result<PipelineOutcome> {
    let stages = pipeline_stages(model, platform, 0.5)?;
    let mut store = ObjectStore::new();
    for (i, s) in stages.iter().enumerate() {
        store.put(format!("{}-stage-{i}", model.name()), s.weight_bytes);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut load_ms = 0.0;
    let mut compute_ms = 0.0;
    for (i, s) in stages.iter().enumerate() {
        load_ms += store.read_ms(&format!("{}-stage-{i}", model.name()), platform)?;
        for layer in &model.layers()[s.start..s.end] {
            for (class, flops) in flops_by_class(model, layer) {
                compute_ms += platform.compute_ms_noisy(flops, class, &mut rng);
            }
        }
        let _ = rng.random::<u8>(); // decorrelate stage noise streams
    }
    Ok(PipelineOutcome {
        total_ms: load_ms + compute_ms,
        load_ms,
        compute_ms,
        stages: stages.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gillis_model::zoo;
    use gillis_perf::PerfModel;

    #[test]
    fn default_serving_predicts_fig1_shape() {
        // Fig 1: latency grows ~quadratically with the widening scalar and
        // OOMs beyond the memory budget.
        let platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let t1 = default_serving_ms(&zoo::wrn50(1), &perf).unwrap();
        let t2 = default_serving_ms(&zoo::wrn50(2), &perf).unwrap();
        let t3 = default_serving_ms(&zoo::wrn50(3), &perf).unwrap();
        assert!(t2 / t1 > 2.5, "t2/t1 = {}", t2 / t1);
        assert!(t3 / t1 > 6.0, "t3/t1 = {}", t3 / t1);
        assert!(
            t3 > 2000.0,
            "WRN-50-3 on Lambda should exceed 2 s, got {t3}"
        );
        assert!(matches!(
            default_serving_ms(&zoo::wrn50(4), &perf),
            Err(CoreError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn gcf_serves_one_size_larger() {
        // Fig 1: GCF (4 GB) serves WRN-50-4 but OOMs at widening 5.
        let perf = PerfModel::analytic(&PlatformProfile::gcf());
        assert!(default_serving_ms(&zoo::wrn50(4), &perf).unwrap() > 2000.0);
        assert!(default_serving_ms(&zoo::wrn50(5), &perf).is_err());
    }

    #[test]
    fn pipeline_stages_fit_budget_and_cover_model() {
        let platform = PlatformProfile::aws_lambda();
        let wrn = zoo::wrn34(5);
        let stages = pipeline_stages(&wrn, &platform, 0.5).unwrap();
        assert!(stages.len() >= 3, "{} stages", stages.len());
        let budget = platform.model_memory_budget / 2;
        let mut expected = 0;
        for s in &stages {
            assert_eq!(s.start, expected);
            expected = s.end;
            assert!(s.weight_bytes <= budget);
        }
        assert_eq!(expected, wrn.layers().len());
        let total: u64 = stages.iter().map(|s| s.weight_bytes).sum();
        assert_eq!(total, wrn.weight_bytes());
    }

    #[test]
    fn pipeline_is_dominated_by_weight_loading() {
        // Fig 11: network transfer dominates Pipeline's end-to-end latency.
        let platform = PlatformProfile::aws_lambda();
        let out = pipeline_serving(&zoo::wrn50(4), &platform, 1).unwrap();
        assert!(
            out.load_ms > out.compute_ms,
            "load {} vs compute {}",
            out.load_ms,
            out.compute_ms
        );
        assert!(out.total_ms > 10_000.0, "total {}", out.total_ms);
        assert_eq!(out.total_ms, out.load_ms + out.compute_ms);
        assert!(out.stages >= 3);
    }
}
