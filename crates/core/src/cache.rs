//! Memoized group evaluations shared across DP cells, RL episodes, and BO
//! plan scoring.
//!
//! Every planner in the workspace keeps re-deriving the same two quantities:
//!
//! 1. **Group analyses** — the partition geometry of a `(start, end, option)`
//!    triple ([`analyze_group`](crate::partition::analyze_group)). The DP
//!    visits each once per run, but the RL trainer re-analyzes the groups of
//!    every sampled episode and the BO baseline re-analyzes every candidate
//!    plan it scores.
//! 2. **Group choices** — Algorithm 1's best worker-only /
//!    master-participating evaluations `t(group, b)` for a `(i, j,
//!    budget-bucket)` key, which repeated [`DpPartitioner`](crate::dp)
//!    invocations (RL incumbent seeding, ablation sweeps, serving loops)
//!    recompute from scratch.
//!
//! [`EvalCache`] memoizes both behind a [`parking_lot::RwLock`]. Entries are
//! scoped by content fingerprints of the model (and, for choices, the
//! performance model and partitioner configuration), so a cache can be
//! shared freely across models and platforms without invalidation hazards:
//! a different model or perf surface simply hashes to a different key space.
//! Cached values are returned verbatim, so results are bit-identical with
//! the cache on, off, or warm.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use gillis_faas::compute::EffClass;
use gillis_model::LinearModel;
use gillis_perf::PerfModel;

use crate::dp::GroupEval;
use crate::partition::{analyze_group_with, GroupAnalysis, ModelFlops, PartitionOption};
use crate::Result;

/// The pair of Algorithm 1 results for one `(group, budget)` cell: best
/// worker-only choice and best master-participating choice.
pub type ChoicePair = (Option<GroupEval>, Option<GroupEval>);

/// Counters describing a cache's effectiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Group analyses currently stored.
    pub analyses: usize,
    /// DP choice pairs currently stored.
    pub choices: usize,
}

#[derive(Default)]
struct State {
    /// Hoisted per-layer FLOPs tables, one per model fingerprint.
    flops: HashMap<u64, Arc<ModelFlops>>,
    /// `(model, start, end, option)` → analysis.
    analyses: HashMap<(u64, usize, usize, PartitionOption), Arc<GroupAnalysis>>,
    /// `(eval scope, i, j, budget bucket)` → Algorithm 1 result. The eval
    /// scope fingerprints the model, the performance model, and the
    /// partitioner knobs that shape the result — degrees, master
    /// participation, memory grid — so distinct configurations occupy
    /// disjoint key spaces.
    choices: HashMap<(u64, usize, usize, u64), ChoicePair>,
}

/// A concurrent memoization layer over group analyses and DP group choices.
///
/// Cheap to share (`Arc`) and safe to use from multiple threads: lookups
/// take a read lock, inserts a write lock. See the module docs for the
/// scoping rules.
#[derive(Default)]
pub struct EvalCache {
    state: RwLock<State>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for EvalCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("EvalCache")
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .field("analyses", &stats.analyses)
            .field("choices", &stats.choices)
            .finish()
    }
}

impl EvalCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        EvalCache::default()
    }

    /// Content fingerprint of a model: its name, layer count, and total
    /// weight bytes. Two models agreeing on all three share cache entries —
    /// names in the zoo encode the architecture, so this is an identity in
    /// practice while surviving re-construction of equal models.
    pub fn model_key(model: &LinearModel) -> u64 {
        let mut h = DefaultHasher::new();
        model.name().hash(&mut h);
        model.layers().len().hash(&mut h);
        model.weight_bytes().hash(&mut h);
        h.finish()
    }

    /// Content fingerprint of a DP evaluation scope: the model, a probe of
    /// the performance model's prediction surface, and the partitioner
    /// configuration tag ([`crate::dp::PartitionerConfig`] knobs that affect
    /// Algorithm 1's result).
    pub fn eval_key(model: &LinearModel, perf: &PerfModel, config_tag: &[u64]) -> u64 {
        let mut h = DefaultHasher::new();
        Self::model_key(model).hash(&mut h);
        for bits in perf_probe(perf) {
            bits.hash(&mut h);
        }
        config_tag.hash(&mut h);
        h.finish()
    }

    /// The hoisted [`ModelFlops`] table for `model`, computed on first use.
    pub fn flops(&self, model: &LinearModel) -> Arc<ModelFlops> {
        let key = Self::model_key(model);
        if let Some(f) = self.state.read().flops.get(&key) {
            return Arc::clone(f);
        }
        let table = Arc::new(ModelFlops::new(model));
        let mut state = self.state.write();
        Arc::clone(state.flops.entry(key).or_insert(table))
    }

    /// Memoized [`analyze_group`](crate::partition::analyze_group): returns
    /// the cached analysis of `(start, end, option)` for `model`, computing
    /// and storing it on a miss. Errors (invalid group/option pairs) are not
    /// cached.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::InvalidArgument`](crate::CoreError) from the
    /// underlying analysis.
    pub fn analysis(
        &self,
        model: &LinearModel,
        start: usize,
        end: usize,
        option: PartitionOption,
    ) -> Result<Arc<GroupAnalysis>> {
        let key = (Self::model_key(model), start, end, option);
        if let Some(a) = self.state.read().analyses.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(a));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let flops = self.flops(model);
        let analysis = Arc::new(analyze_group_with(model, &flops, start, end, option)?);
        let mut state = self.state.write();
        Ok(Arc::clone(state.analyses.entry(key).or_insert(analysis)))
    }

    /// Looks up the memoized Algorithm 1 result for cell `(i, j)` under
    /// `budget` bytes in the given evaluation scope.
    pub fn choice(&self, eval_key: u64, i: usize, j: usize, budget: u64) -> Option<ChoicePair> {
        let found = self
            .state
            .read()
            .choices
            .get(&(eval_key, i, j, budget))
            .copied();
        match found {
            Some(pair) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(pair)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores an Algorithm 1 result for later [`EvalCache::choice`] lookups.
    pub fn store_choice(&self, eval_key: u64, i: usize, j: usize, budget: u64, pair: ChoicePair) {
        self.state
            .write()
            .choices
            .insert((eval_key, i, j, budget), pair);
    }

    /// Current hit/miss counters and entry counts.
    pub fn stats(&self) -> CacheStats {
        let state = self.state.read();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            analyses: state.analyses.len(),
            choices: state.choices.len(),
        }
    }

    /// Drops every entry and resets the counters.
    pub fn clear(&self) {
        let mut state = self.state.write();
        state.flops.clear();
        state.analyses.clear();
        state.choices.clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

/// Samples the performance model's prediction surface at fixed probe points.
/// Two `PerfModel`s producing identical probes are interchangeable for the
/// planner's purposes (same regressions, same communication model, same
/// budget), so the probe bit patterns serve as the perf fingerprint.
fn perf_probe(perf: &PerfModel) -> Vec<u64> {
    const CLASSES: [EffClass; 5] = [
        EffClass::Conv,
        EffClass::Dense,
        EffClass::ElementWise,
        EffClass::Pool,
        EffClass::Recurrent,
    ];
    let mut probe = Vec::with_capacity(CLASSES.len() * 2 + 5);
    for class in CLASSES {
        probe.push(perf.predict_compute_ms(1_000_000, class).to_bits());
        probe.push(perf.predict_compute_ms(10_000_000_000, class).to_bits());
    }
    probe.push(perf.fork_ms(65_536, 1).to_bits());
    probe.push(perf.fork_ms(8 << 20, 4).to_bits());
    probe.push(perf.join_ms(1 << 20, 16).to_bits());
    probe.push(perf.platform.model_memory_budget);
    probe.push(perf.platform.billing_granularity_ms);
    probe
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::analyze_group;
    use gillis_faas::PlatformProfile;
    use gillis_model::zoo;

    #[test]
    fn analysis_matches_uncached_and_hits_on_reuse() {
        let cache = EvalCache::new();
        let vgg = zoo::vgg11();
        let option = PartitionOption::Split {
            dim: crate::partition::PartDim::Height,
            parts: 4,
        };
        let direct = analyze_group(&vgg, 0, 2, option).unwrap();
        let first = cache.analysis(&vgg, 0, 2, option).unwrap();
        assert_eq!(*first, direct);
        let second = cache.analysis(&vgg, 0, 2, option).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.analyses, 1);
    }

    #[test]
    fn models_occupy_disjoint_key_spaces() {
        let cache = EvalCache::new();
        let vgg = zoo::vgg11();
        let resnet = zoo::resnet34();
        let a = cache.analysis(&vgg, 0, 1, PartitionOption::Single).unwrap();
        let b = cache
            .analysis(&resnet, 0, 1, PartitionOption::Single)
            .unwrap();
        assert_ne!(*a, *b);
        assert_eq!(cache.stats().analyses, 2);
        // Rebuilding an equal model still hits.
        cache
            .analysis(&zoo::vgg11(), 0, 1, PartitionOption::Single)
            .unwrap();
        assert_eq!(cache.stats().analyses, 2);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn eval_key_scopes_perf_and_config() {
        let vgg = zoo::vgg11();
        let lambda = PerfModel::analytic(&PlatformProfile::aws_lambda());
        let knix = PerfModel::analytic(&PlatformProfile::knix());
        let k1 = EvalCache::eval_key(&vgg, &lambda, &[2, 4, 1]);
        assert_eq!(k1, EvalCache::eval_key(&vgg, &lambda, &[2, 4, 1]));
        assert_ne!(k1, EvalCache::eval_key(&vgg, &knix, &[2, 4, 1]));
        assert_ne!(k1, EvalCache::eval_key(&vgg, &lambda, &[2, 4, 0]));
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = EvalCache::new();
        let rnn = zoo::rnn(2);
        let bad = PartitionOption::Split {
            dim: crate::partition::PartDim::Height,
            parts: 2,
        };
        assert!(cache.analysis(&rnn, 0, 1, bad).is_err());
        assert_eq!(cache.stats().analyses, 0);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = EvalCache::new();
        let vgg = zoo::vgg11();
        cache.analysis(&vgg, 0, 1, PartitionOption::Single).unwrap();
        cache.store_choice(7, 0, 1, 1024, (None, None));
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats, CacheStats::default());
        assert_eq!(cache.choice(7, 0, 1, 1024), None);
    }
}
