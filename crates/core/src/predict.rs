//! Plan latency and cost prediction using the performance model.
//!
//! This is the evaluation function both partitioning algorithms optimize:
//! the DP consults it inside Algorithm 1, and the RL agents receive its
//! outputs as reward signals during simulated training episodes (§IV-C).

use serde::{Deserialize, Serialize};

use gillis_faas::billing::billed_ms;
use gillis_model::LinearModel;
use gillis_perf::PerfModel;

use crate::cache::EvalCache;
use crate::partition::{GroupAnalysis, PartitionWork};
use crate::plan::{ExecutionPlan, Placement};
use crate::Result;

/// Predicted timing of one group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupPrediction {
    /// Master → workers dispatch time (0 for master-only groups).
    pub fork_ms: f64,
    /// Parallel compute phase: max over partitions.
    pub compute_ms: f64,
    /// Workers → master collection time.
    pub join_ms: f64,
    /// Per-worker function durations (for billing).
    pub worker_ms: Vec<f64>,
}

impl GroupPrediction {
    /// End-to-end group latency.
    pub fn latency_ms(&self) -> f64 {
        self.fork_ms + self.compute_ms + self.join_ms
    }
}

/// Predicted timing and cost of a whole plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanPrediction {
    /// Per-group predictions, in execution order.
    pub groups: Vec<GroupPrediction>,
    /// End-to-end inference latency (also the master's duration).
    pub latency_ms: f64,
    /// Billed duration across master + workers at the platform granularity —
    /// the paper's cost metric (Eq. 2).
    pub billed_ms: u64,
    /// Dollar cost at the platform's GB-second price (all functions billed
    /// at the instance size).
    pub usd: f64,
}

/// Predicts compute time of one partition: the sum of per-class regression
/// predictions.
pub fn partition_compute_ms(perf: &PerfModel, work: &PartitionWork) -> f64 {
    work.flops
        .iter()
        .map(|&(class, flops)| perf.predict_compute_ms(flops, class))
        .sum()
}

/// Predicts one group's timing given its analysis and placement.
pub fn predict_group(
    perf: &PerfModel,
    analysis: &GroupAnalysis,
    placement: Placement,
) -> GroupPrediction {
    let parts = &analysis.partitions;
    match placement {
        Placement::Master => GroupPrediction {
            fork_ms: 0.0,
            compute_ms: partition_compute_ms(perf, &parts[0]),
            join_ms: 0.0,
            worker_ms: Vec::new(),
        },
        Placement::Workers | Placement::MasterAndWorkers => {
            let worker_parts: &[PartitionWork] = if placement == Placement::Workers {
                parts
            } else {
                &parts[1..]
            };
            let master_compute = if placement == Placement::MasterAndWorkers {
                partition_compute_ms(perf, &parts[0])
            } else {
                0.0
            };
            if worker_parts.is_empty() {
                // Degenerate: "MasterAndWorkers" of a single partition.
                return GroupPrediction {
                    fork_ms: 0.0,
                    compute_ms: master_compute,
                    join_ms: 0.0,
                    worker_ms: Vec::new(),
                };
            }
            // Partition analyses report raw f32 activation sizes; the wire
            // format (f32 or int8) decides what actually crosses the network.
            let in_sizes: Vec<u64> = worker_parts
                .iter()
                .map(|p| perf.wire_bytes(p.input_bytes))
                .collect();
            let out_sizes: Vec<u64> = worker_parts
                .iter()
                .map(|p| perf.wire_bytes(p.output_bytes))
                .collect();
            let fork_ms = perf.comm.group_transfer_parts_ms(&in_sizes);
            let join_ms = perf.comm.group_transfer_parts_ms(&out_sizes);
            let worker_compute: Vec<f64> = worker_parts
                .iter()
                .map(|p| partition_compute_ms(perf, p))
                .collect();
            let compute_ms = worker_compute
                .iter()
                .copied()
                .fold(master_compute, f64::max);
            // A worker is billed from payload receipt to response emission.
            let worker_ms = in_sizes
                .iter()
                .zip(out_sizes.iter())
                .zip(worker_compute.iter())
                .map(|((&i, &o), &c)| c + perf.comm.per_byte_ms() * (i + o) as f64)
                .collect();
            GroupPrediction {
                fork_ms,
                compute_ms,
                join_ms,
                worker_ms,
            }
        }
    }
}

/// Predicts the latency and cost of a full plan (paper §IV-A's end-to-end
/// prediction, evaluated for accuracy in Fig 15 bottom).
///
/// # Errors
///
/// Propagates group-analysis failures for invalid plans.
pub fn predict_plan(
    model: &LinearModel,
    plan: &ExecutionPlan,
    perf: &PerfModel,
) -> Result<PlanPrediction> {
    let analyses = plan.analyses(model)?;
    Ok(predict_plan_from(plan, perf, analyses.iter()))
}

/// [`predict_plan`] with group analyses served from (and stored into) a
/// shared [`EvalCache`] — the hot path of RL reward evaluation and BO
/// candidate scoring, which re-analyze overlapping groups constantly.
/// Predictions are identical to the uncached path.
///
/// # Errors
///
/// Propagates group-analysis failures for invalid plans.
pub fn predict_plan_cached(
    model: &LinearModel,
    plan: &ExecutionPlan,
    perf: &PerfModel,
    cache: &EvalCache,
) -> Result<PlanPrediction> {
    let analyses: Vec<_> = plan
        .groups()
        .iter()
        .map(|g| cache.analysis(model, g.start, g.end, g.option))
        .collect::<Result<_>>()?;
    Ok(predict_plan_from(
        plan,
        perf,
        analyses.iter().map(|a| a.as_ref()),
    ))
}

/// Default fraction of a group's compute cost that is paid once per batch
/// rather than once per item — weight-matrix traversal, panel-cache lookup,
/// and packed-panel streaming, which the widened-B batched kernels share
/// across all items of a batch. Calibrated against the `ext_batch` bench:
/// the amortized share of a VGG-style conv stack's runtime sits between the
/// pointwise-conv extreme (weights dominate, ~0.4) and the large-spatial
/// extreme (im2col dominates, ~0.15).
pub const BATCH_AMORTIZED_FRACTION: f64 = 0.25;

/// Scales a group analysis from one query to an `n`-query batch: transfer
/// and activation bytes scale linearly with `n` (every item's payload
/// crosses the wire), while compute scales as
/// `amortized + (1 - amortized) · n` — the amortized fraction (packing,
/// weight streaming) is paid once per batch. Weight bytes are unchanged:
/// the function holds one copy regardless of batch size.
///
/// `n == 1` returns the analysis unchanged (the scale factor is exactly 1),
/// so batch-aware planners price the batch-1 path identically to the
/// pre-batching model.
///
/// # Panics
///
/// Panics if `n == 0` or `amortized_fraction` is outside `[0, 1]`.
pub fn scale_analysis_for_batch(
    analysis: &GroupAnalysis,
    n: usize,
    amortized_fraction: f64,
) -> GroupAnalysis {
    assert!(n > 0, "batch must be non-empty");
    assert!(
        (0.0..=1.0).contains(&amortized_fraction),
        "amortized fraction must be in [0, 1]"
    );
    let compute_scale = amortized_fraction + (1.0 - amortized_fraction) * n as f64;
    GroupAnalysis {
        option: analysis.option,
        partitions: analysis
            .partitions
            .iter()
            .map(|p| PartitionWork {
                flops: p
                    .flops
                    .iter()
                    .map(|&(class, f)| (class, (f as f64 * compute_scale).round() as u64))
                    .collect(),
                weight_bytes: p.weight_bytes,
                input_bytes: p.input_bytes * n as u64,
                output_bytes: p.output_bytes * n as u64,
            })
            .collect(),
    }
}

/// [`predict_plan`] for an `n`-query batch executed in one invocation wave:
/// the `t_batch(plan, n)` term batching policies price admission against.
/// Transfer legs carry `n` payloads; compute amortizes the
/// `amortized_fraction` share of each group's work across the batch. The
/// returned prediction is the *whole batch's* latency and cost — per-item
/// figures are `latency_ms` (every item waits for the batch) and `usd / n`.
///
/// `n == 1` is exactly [`predict_plan`].
///
/// # Errors
///
/// Propagates group-analysis failures for invalid plans.
pub fn predict_plan_batched(
    model: &LinearModel,
    plan: &ExecutionPlan,
    perf: &PerfModel,
    n: usize,
    amortized_fraction: f64,
) -> Result<PlanPrediction> {
    let analyses = plan.analyses(model)?;
    let scaled: Vec<GroupAnalysis> = analyses
        .iter()
        .map(|a| scale_analysis_for_batch(a, n, amortized_fraction))
        .collect();
    Ok(predict_plan_from(plan, perf, scaled.iter()))
}

/// Predicted timing and cost of one pipeline stage (one layer group run as
/// a stage with its own orchestrator function).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StagePrediction {
    /// Inbound activation hand-off from the upstream stage (0 for the first
    /// stage, which receives the query payload from the client).
    pub handoff_ms: f64,
    /// The stage's group execution (fork / compute / join).
    pub group: GroupPrediction,
    /// Total stage time: `handoff_ms + group.latency_ms()`, possibly
    /// stretched by a down-sized orchestrator's slower master compute.
    pub stage_ms: f64,
    /// Orchestrator memory size picked for this stage (HarmonyBatch-style
    /// heterogeneous sizing: the smallest ladder size whose scaled model
    /// budget fits the stage's master-resident weights without moving the
    /// pipeline bottleneck).
    pub memory_bytes: u64,
    /// Billed duration per query across the stage orchestrator + workers.
    pub billed_ms: u64,
    /// Per-query dollar cost of this stage.
    pub usd: f64,
}

/// Predicted steady-state behavior of a plan served as a pipeline: each
/// group is a stage, different queries occupy different stages concurrently.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelinePrediction {
    /// Per-stage predictions, in execution order.
    pub stages: Vec<StagePrediction>,
    /// The pipeline bottleneck: the max stage time. Steady-state inter-
    /// departure time per lane.
    pub bottleneck_ms: f64,
    /// Steady-state throughput of one lane per stage: `1000 / bottleneck`.
    pub steady_state_qps: f64,
    /// Pipeline-fill latency: the sum of stage times — what a query
    /// traversing an idle pipeline experiences end to end.
    pub fill_ms: f64,
    /// Tail-latency estimate at steady state: the fill latency plus one
    /// bottleneck interval of queueing headroom.
    pub p99_ms: f64,
    /// Billed duration per query across all stages (orchestrators +
    /// workers), at the platform granularity.
    pub billed_ms: u64,
    /// Per-query dollar cost with heterogeneous per-stage memory sizes.
    pub usd: f64,
}

/// The pipeline stage-time bound `t_pipeline(plan)`: the maximum over
/// groups of (inbound hand-off + group latency), in milliseconds. The
/// reciprocal is the steady-state per-lane throughput the pipelined serving
/// path approaches; it is always ≥ the slowest single group's latency.
///
/// # Errors
///
/// Propagates group-analysis failures for invalid plans.
pub fn t_pipeline(model: &LinearModel, plan: &ExecutionPlan, perf: &PerfModel) -> Result<f64> {
    let analyses = plan.analyses(model)?;
    Ok(plan
        .groups()
        .iter()
        .zip(analyses.iter())
        .map(|(g, a)| {
            let handoff = if g.start == 0 {
                0.0
            } else {
                perf.handoff_ms(model.layers()[g.start].in_bytes())
            };
            handoff + predict_group(perf, a, g.placement).latency_ms()
        })
        .fold(0.0, f64::max))
}

/// Memory-size ladder for per-stage orchestrator sizing, as eighths of the
/// platform instance size: a stage that only shuttles activations (worker-
/// only placement) can run in a small cheap function, while a stage whose
/// orchestrator computes resident partitions needs the memory — and the
/// proportional CPU — to do so without becoming the bottleneck.
const STAGE_MEMORY_EIGHTHS: [u64; 4] = [1, 2, 4, 8];

/// [`predict_plan`] for pipeline-parallel serving: each group is a stage
/// with its own orchestrator function and worker pool; queries stream
/// through stages concurrently, so steady-state throughput is bounded by
/// the *max* stage time ([`t_pipeline`]) while a single query's latency is
/// the *sum* (the pipeline-fill latency).
///
/// Per-stage memory reuses the existing billing math with HarmonyBatch-style
/// heterogeneous sizing: each orchestrator gets the smallest ladder size
/// whose memory-scaled model budget holds the stage's master-resident
/// weights and whose proportionally slower master compute does not push the
/// stage past the unscaled bottleneck. Workers stay at the platform
/// instance size, exactly as in [`predict_plan`].
///
/// # Errors
///
/// Propagates group-analysis failures for invalid plans.
pub fn predict_plan_pipelined(
    model: &LinearModel,
    plan: &ExecutionPlan,
    perf: &PerfModel,
) -> Result<PipelinePrediction> {
    let analyses = plan.analyses(model)?;
    let platform = &perf.platform;
    let d = platform.billing_granularity_ms;
    let gb_full = platform.instance_memory_bytes as f64 / 1e9;

    // First pass: unscaled stage times fix the bottleneck the sizing pass
    // below must not move.
    let mut base: Vec<(f64, GroupPrediction)> = Vec::with_capacity(plan.groups().len());
    for (g, a) in plan.groups().iter().zip(analyses.iter()) {
        let handoff = if g.start == 0 {
            0.0
        } else {
            perf.handoff_ms(model.layers()[g.start].in_bytes())
        };
        let gp = predict_group(perf, a, g.placement);
        base.push((handoff, gp));
    }
    let bottleneck_unscaled = base
        .iter()
        .map(|(h, gp)| h + gp.latency_ms())
        .fold(0.0, f64::max);

    let mut stages = Vec::with_capacity(base.len());
    let mut fill = 0.0f64;
    let mut bottleneck = 0.0f64;
    let mut billed_total = 0u64;
    let mut usd_total = 0.0;
    for ((g, a), (handoff, gp)) in plan.groups().iter().zip(analyses.iter()).zip(base) {
        // Master-resident work and weights of this stage.
        let (master_ms, resident_bytes) = if g.placement == Placement::Workers {
            (0.0, 0u64)
        } else {
            (
                partition_compute_ms(perf, &a.partitions[0]),
                a.partitions[0].weight_bytes,
            )
        };
        let worker_max_ms = if g.placement == Placement::Workers {
            gp.compute_ms
        } else {
            a.partitions[1..]
                .iter()
                .map(|p| partition_compute_ms(perf, p))
                .fold(0.0, f64::max)
        };
        // Smallest ladder memory that (a) fits the resident weights in the
        // proportionally scaled model budget and (b) keeps the stage at or
        // below the unscaled bottleneck despite the slower master compute.
        let mut chosen_mem = platform.instance_memory_bytes;
        let mut chosen_stage_ms = handoff + gp.latency_ms();
        for &eighths in &STAGE_MEMORY_EIGHTHS {
            let mem = platform.instance_memory_bytes * eighths / 8;
            let budget = platform.model_memory_budget * eighths / 8;
            if resident_bytes > budget {
                continue;
            }
            let factor = eighths as f64 / 8.0;
            let scaled_compute = worker_max_ms.max(master_ms / factor);
            let stage_ms = handoff + gp.fork_ms + scaled_compute + gp.join_ms;
            if stage_ms <= bottleneck_unscaled {
                chosen_mem = mem;
                chosen_stage_ms = stage_ms;
                break;
            }
        }
        // Existing billing math at heterogeneous sizes: the orchestrator is
        // busy for the whole stage and bills at the stage size; workers
        // bill at the platform instance size as in `predict_plan`.
        let gb_stage = chosen_mem as f64 / 1e9;
        let mut billed = billed_ms(chosen_stage_ms, d);
        let mut usd = billed as f64 / 1000.0 * gb_stage * platform.price_per_gb_s
            + platform.price_per_invocation;
        for &w in &gp.worker_ms {
            let b = billed_ms(w, d);
            billed += b;
            usd += b as f64 / 1000.0 * gb_full * platform.price_per_gb_s
                + platform.price_per_invocation;
        }
        fill += chosen_stage_ms;
        bottleneck = bottleneck.max(chosen_stage_ms);
        billed_total += billed;
        usd_total += usd;
        stages.push(StagePrediction {
            handoff_ms: handoff,
            group: gp,
            stage_ms: chosen_stage_ms,
            memory_bytes: chosen_mem,
            billed_ms: billed,
            usd,
        });
    }
    Ok(PipelinePrediction {
        stages,
        bottleneck_ms: bottleneck,
        steady_state_qps: if bottleneck > 0.0 {
            1000.0 / bottleneck
        } else {
            f64::INFINITY
        },
        fill_ms: fill,
        p99_ms: fill + bottleneck,
        billed_ms: billed_total,
        usd: usd_total,
    })
}

fn predict_plan_from<'a>(
    plan: &ExecutionPlan,
    perf: &PerfModel,
    analyses: impl Iterator<Item = &'a GroupAnalysis>,
) -> PlanPrediction {
    let mut groups = Vec::with_capacity(plan.groups().len());
    let mut latency = 0.0;
    for (g, a) in plan.groups().iter().zip(analyses) {
        let gp = predict_group(perf, a, g.placement);
        latency += gp.latency_ms();
        groups.push(gp);
    }
    let d = perf.platform.billing_granularity_ms;
    let gb = perf.platform.instance_memory_bytes as f64 / 1e9;
    let mut billed = billed_ms(latency, d);
    let mut usd = billed as f64 / 1000.0 * gb * perf.platform.price_per_gb_s
        + perf.platform.price_per_invocation;
    for gp in &groups {
        for &w in &gp.worker_ms {
            let b = billed_ms(w, d);
            billed += b;
            usd += b as f64 / 1000.0 * gb * perf.platform.price_per_gb_s
                + perf.platform.price_per_invocation;
        }
    }
    PlanPrediction {
        groups,
        latency_ms: latency,
        billed_ms: billed,
        usd,
    }
}

/// Expected-wasted-work comparison for a plan under orchestrator crashes:
/// full-restart recovery vs stage-checkpointed resume (see
/// `gillis_perf::expected_waste_restart_ms` /
/// `expected_waste_resumed_ms`). This is the term the serving runtime's
/// timeout/hedge decisions and retry-budget debits use to price resumed
/// attempts at their true marginal cost.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPrediction {
    /// Predicted per-group latencies, in execution order (the stage costs
    /// the waste terms integrate over).
    pub stage_ms: Vec<f64>,
    /// Expected milliseconds of redundant recompute per query when every
    /// crash restarts from group 0.
    pub full_restart_ms: f64,
    /// Expected milliseconds lost per query when every crash resumes from
    /// the last checkpoint (failover replay only).
    pub resumed_ms: f64,
    /// Marginal retry-budget cost per group: each group's share of the
    /// plan's total predicted latency, floored at 5%.
    pub marginal_costs: Vec<f64>,
}

impl RecoveryPrediction {
    /// Expected milliseconds saved per query by checkpointed resume.
    pub fn savings_ms(&self) -> f64 {
        (self.full_restart_ms - self.resumed_ms).max(0.0)
    }
}

/// Predicts the expected wasted work of a plan under per-boundary
/// orchestrator crash probability `crash_prob`, comparing full-restart
/// recovery to checkpointed resume paying `failover_ms` per crash.
///
/// # Errors
///
/// Propagates plan-analysis errors.
pub fn predict_recovery(
    model: &LinearModel,
    plan: &ExecutionPlan,
    perf: &PerfModel,
    crash_prob: f64,
    failover_ms: f64,
) -> Result<RecoveryPrediction> {
    let prediction = predict_plan(model, plan, perf)?;
    let stage_ms: Vec<f64> = prediction
        .groups
        .iter()
        .map(GroupPrediction::latency_ms)
        .collect();
    let total: f64 = stage_ms.iter().sum();
    let marginal_costs = stage_ms
        .iter()
        .map(|&s| gillis_perf::marginal_retry_cost(s, total))
        .collect();
    Ok(RecoveryPrediction {
        full_restart_ms: gillis_perf::expected_waste_restart_ms(&stage_ms, crash_prob),
        resumed_ms: gillis_perf::expected_waste_resumed_ms(&stage_ms, crash_prob, failover_ms),
        stage_ms,
        marginal_costs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{PartDim, PartitionOption};
    use crate::plan::PlannedGroup;
    use gillis_faas::PlatformProfile;
    use gillis_model::zoo;
    use gillis_perf::PerfModel;

    fn perf() -> PerfModel {
        PerfModel::analytic(&PlatformProfile::aws_lambda())
    }

    #[test]
    fn single_function_prediction_equals_model_runtime() {
        let vgg = zoo::vgg11();
        let perf = perf();
        let plan = ExecutionPlan::single_function(&vgg);
        let pred = predict_plan(&vgg, &plan, &perf).unwrap();
        let runtime = perf.layer.predict_model_ms(&vgg);
        assert!(
            (pred.latency_ms - runtime).abs() / runtime < 0.01,
            "{} vs {}",
            pred.latency_ms,
            runtime
        );
        // One master invocation, no workers.
        assert!(pred.groups.iter().all(|g| g.worker_ms.is_empty()));
    }

    #[test]
    fn naive_per_layer_parallelization_is_communication_bound() {
        // Layer-wise parallelization ships every intermediate activation
        // through the master — the overhead the paper's coarse-grained
        // grouping exists to avoid (§III-C, Fig 7). At 224x224 activations
        // this is strictly worse than serving in one function.
        let vgg = zoo::vgg16();
        let perf = perf();
        let n = vgg.layers().len();
        let single = predict_plan(&vgg, &ExecutionPlan::single_function(&vgg), &perf).unwrap();

        let mut groups = Vec::new();
        for (i, layer) in vgg.layers().iter().enumerate() {
            let spatial = layer.class.supports_spatial();
            groups.push(PlannedGroup {
                start: i,
                end: i + 1,
                option: if spatial {
                    PartitionOption::Split {
                        dim: PartDim::Height,
                        parts: 4,
                    }
                } else {
                    PartitionOption::Single
                },
                placement: if spatial {
                    Placement::MasterAndWorkers
                } else {
                    Placement::Master
                },
            });
        }
        assert_eq!(groups.len(), n);
        let plan = ExecutionPlan::new(groups);
        plan.validate(&vgg, 1_400_000_000).unwrap();
        let par = predict_plan(&vgg, &plan, &perf).unwrap();
        // Communication dominates the parallel plan...
        let comm: f64 = par.groups.iter().map(|g| g.fork_ms + g.join_ms).sum();
        let compute: f64 = par.groups.iter().map(|g| g.compute_ms).sum();
        assert!(comm > compute, "comm {comm:.0} vs compute {compute:.0}");
        // ...and the billed cost exceeds single-function serving.
        assert!(par.billed_ms > single.billed_ms);
        assert!(par.usd > single.usd);
    }

    #[test]
    fn worker_only_pays_an_extra_round_trip() {
        let vgg = zoo::vgg11();
        let perf = perf();
        let a = crate::partition::analyze_group(
            &vgg,
            0,
            1,
            PartitionOption::Split {
                dim: PartDim::Height,
                parts: 4,
            },
        )
        .unwrap();
        let with_master = predict_group(&perf, &a, Placement::MasterAndWorkers);
        let workers_only = predict_group(&perf, &a, Placement::Workers);
        // Worker-only ships one more payload.
        assert!(workers_only.fork_ms > with_master.fork_ms);
        assert_eq!(with_master.worker_ms.len(), 3);
        assert_eq!(workers_only.worker_ms.len(), 4);
    }

    #[test]
    fn master_only_group_has_no_comm() {
        let vgg = zoo::vgg11();
        let perf = perf();
        let a = crate::partition::analyze_group(&vgg, 0, 1, PartitionOption::Single).unwrap();
        let g = predict_group(&perf, &a, Placement::Master);
        assert_eq!(g.fork_ms, 0.0);
        assert_eq!(g.join_ms, 0.0);
        assert!(g.compute_ms > 0.0);
    }

    #[test]
    fn cached_prediction_matches_uncached() {
        let vgg = zoo::vgg11();
        let perf = perf();
        let cache = EvalCache::new();
        let plan = crate::DpPartitioner::default()
            .partition(&vgg, &perf)
            .unwrap();
        let direct = predict_plan(&vgg, &plan, &perf).unwrap();
        let cached = predict_plan_cached(&vgg, &plan, &perf, &cache).unwrap();
        assert_eq!(direct, cached);
        // Second call answers every group from the cache.
        let before = cache.stats().misses;
        let again = predict_plan_cached(&vgg, &plan, &perf, &cache).unwrap();
        assert_eq!(direct, again);
        assert_eq!(cache.stats().misses, before);
    }

    #[test]
    fn int8_wire_shrinks_predicted_comm_but_not_compute() {
        let vgg = zoo::vgg11();
        let f32_perf = perf();
        let int8_perf = perf().with_transfer_format(gillis_perf::TransferFormat::Int8);
        let a = crate::partition::analyze_group(
            &vgg,
            0,
            1,
            PartitionOption::Split {
                dim: PartDim::Height,
                parts: 4,
            },
        )
        .unwrap();
        let f = predict_group(&f32_perf, &a, Placement::Workers);
        let q = predict_group(&int8_perf, &a, Placement::Workers);
        // ~4x fewer bytes on every transfer leg; compute untouched.
        assert!(q.fork_ms < f.fork_ms);
        assert!(q.join_ms < f.join_ms);
        assert_eq!(q.compute_ms, f.compute_ms);
        for (qw, fw) in q.worker_ms.iter().zip(f.worker_ms.iter()) {
            assert!(qw < fw);
        }
    }

    #[test]
    fn batch_one_prediction_is_exactly_the_per_query_prediction() {
        let vgg = zoo::vgg11();
        let perf = perf();
        let plan = ExecutionPlan::single_function(&vgg);
        let per_query = predict_plan(&vgg, &plan, &perf).unwrap();
        let batch1 = predict_plan_batched(&vgg, &plan, &perf, 1, 0.25).unwrap();
        assert_eq!(per_query, batch1);
    }

    #[test]
    fn batching_amortizes_compute_but_not_transfer() {
        let vgg = zoo::vgg11();
        let perf = perf();
        let plan = ExecutionPlan::new(vec![PlannedGroup {
            start: 0,
            end: vgg.layers().len(),
            option: PartitionOption::Single,
            placement: Placement::Master,
        }]);
        let one = predict_plan_batched(&vgg, &plan, &perf, 1, 0.25).unwrap();
        let four = predict_plan_batched(&vgg, &plan, &perf, 4, 0.25).unwrap();
        // A 4-batch costs less than 4 sequential queries (the amortized
        // fraction is paid once)...
        assert!(four.latency_ms < 4.0 * one.latency_ms);
        // ...but more than a single query (per-item work still scales).
        assert!(four.latency_ms > one.latency_ms);
        // Per-item cost improves: one invocation wave serves four queries.
        assert!(four.usd / 4.0 < one.usd);
    }

    #[test]
    fn batched_group_transfer_scales_linearly_with_n() {
        let vgg = zoo::vgg11();
        let perf = perf();
        let a = crate::partition::analyze_group(
            &vgg,
            0,
            1,
            PartitionOption::Split {
                dim: PartDim::Height,
                parts: 4,
            },
        )
        .unwrap();
        let one = predict_group(&perf, &a, Placement::Workers);
        let scaled = scale_analysis_for_batch(&a, 3, 0.25);
        let three = predict_group(&perf, &scaled, Placement::Workers);
        // Every item's activations cross the wire: fork/join legs see 3x
        // the bytes. The comm model adds a per-transfer jitter floor that
        // does not scale with payload, so growth is affine, not
        // proportional — but strictly monotone in the batch size.
        assert!(three.fork_ms > one.fork_ms);
        assert!(three.join_ms > one.join_ms);
        let extra_fork = three.fork_ms - one.fork_ms;
        assert!(extra_fork > 0.0);
        // Compute grows sublinearly.
        assert!(three.compute_ms < 3.0 * one.compute_ms);
        assert!(three.compute_ms > one.compute_ms);
    }

    #[test]
    fn gcf_billing_rounds_to_100ms() {
        let vgg = zoo::vgg11();
        let perf = PerfModel::analytic(&PlatformProfile::gcf());
        let plan = ExecutionPlan::single_function(&vgg);
        let pred = predict_plan(&vgg, &plan, &perf).unwrap();
        assert_eq!(pred.billed_ms % 100, 0);
        assert!(pred.billed_ms as f64 >= pred.latency_ms);
    }

    #[test]
    fn t_pipeline_bounds_the_slowest_stage_from_above() {
        let vgg = zoo::vgg11();
        let perf = perf();
        let plan = crate::DpPartitioner::default()
            .partition(&vgg, &perf)
            .unwrap();
        let t = t_pipeline(&vgg, &plan, &perf).unwrap();
        let analyses = plan.analyses(&vgg).unwrap();
        let max_group = plan
            .groups()
            .iter()
            .zip(analyses.iter())
            .map(|(g, a)| predict_group(&perf, a, g.placement).latency_ms())
            .fold(0.0, f64::max);
        assert!(t >= max_group, "t_pipeline {t} < max group {max_group}");
        // ...and never exceeds the whole plan's serial latency.
        let serial = predict_plan(&vgg, &plan, &perf).unwrap().latency_ms;
        assert!(t <= serial + 1e-9, "t_pipeline {t} > serial {serial}");
    }

    #[test]
    fn pipelined_prediction_sums_fill_and_maxes_bottleneck() {
        let vgg = zoo::vgg11();
        let perf = perf();
        let plan = crate::DpPartitioner::default()
            .with_objective(crate::PlanObjective::PipelineBottleneck)
            .partition(&vgg, &perf)
            .unwrap();
        let pred = predict_plan_pipelined(&vgg, &plan, &perf).unwrap();
        assert_eq!(pred.stages.len(), plan.groups().len());
        let max_stage = pred.stages.iter().map(|s| s.stage_ms).fold(0.0, f64::max);
        let sum_stage: f64 = pred.stages.iter().map(|s| s.stage_ms).sum();
        assert_eq!(pred.bottleneck_ms, max_stage);
        assert!((pred.fill_ms - sum_stage).abs() < 1e-9);
        assert!((pred.steady_state_qps - 1000.0 / max_stage).abs() < 1e-9);
        assert_eq!(pred.p99_ms, pred.fill_ms + pred.bottleneck_ms);
        // The first stage receives the query from the client: no hand-off.
        assert_eq!(pred.stages[0].handoff_ms, 0.0);
        assert!(pred.stages[1..].iter().all(|s| s.handoff_ms > 0.0));
        // The fill latency is at least the serial plan latency (hand-offs
        // and down-sized orchestrators only add time per query).
        let serial = predict_plan(&vgg, &plan, &perf).unwrap().latency_ms;
        assert!(pred.fill_ms >= serial - 1e-9);
    }

    #[test]
    fn stage_memory_sizing_shrinks_shuttle_stages_without_moving_the_bottleneck() {
        let vgg = zoo::vgg11();
        let perf = perf();
        let plan = crate::DpPartitioner::default()
            .with_objective(crate::PlanObjective::PipelineBottleneck)
            .partition(&vgg, &perf)
            .unwrap();
        let pred = predict_plan_pipelined(&vgg, &plan, &perf).unwrap();
        let full = perf.platform.instance_memory_bytes;
        // A worker-only stage's orchestrator holds no weights and does no
        // compute: it must shrink to the smallest ladder size.
        for (g, s) in plan.groups().iter().zip(pred.stages.iter()) {
            assert!(s.memory_bytes <= full);
            if g.placement == Placement::Workers {
                assert_eq!(s.memory_bytes, full / 8);
            }
        }
        // Sizing never moves the bottleneck above the unscaled stage times.
        let unscaled = t_pipeline(&vgg, &plan, &perf).unwrap();
        assert!(pred.bottleneck_ms <= unscaled + 1e-9);
    }
}
