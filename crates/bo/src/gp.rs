//! Gaussian-process regression with an RBF kernel.

use gillis_core::CoreError;

use crate::Result;

/// GP hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpConfig {
    /// RBF length scale.
    pub length_scale: f64,
    /// Signal variance (kernel amplitude).
    pub signal_var: f64,
    /// Observation noise variance (added to the kernel diagonal).
    pub noise_var: f64,
}

impl Default for GpConfig {
    fn default() -> Self {
        GpConfig {
            length_scale: 1.0,
            signal_var: 1.0,
            noise_var: 1e-4,
        }
    }
}

/// A fitted Gaussian process over standardized targets.
#[derive(Debug, Clone)]
pub struct Gp {
    config: GpConfig,
    xs: Vec<Vec<f64>>,
    /// Cholesky factor L of (K + noise I), lower-triangular, row-major.
    chol: Vec<Vec<f64>>,
    /// alpha = (K + noise I)^-1 y (on standardized y).
    alpha: Vec<f64>,
    y_mean: f64,
    y_std: f64,
}

fn rbf(a: &[f64], b: &[f64], config: &GpConfig) -> f64 {
    let d2: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum();
    config.signal_var * (-0.5 * d2 / (config.length_scale * config.length_scale)).exp()
}

impl Gp {
    /// Fits the GP to observations.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] for empty or mismatched data
    /// and for numerically non-positive-definite kernels.
    pub fn fit(xs: Vec<Vec<f64>>, ys: &[f64], config: GpConfig) -> Result<Gp> {
        let n = xs.len();
        if n == 0 || n != ys.len() {
            return Err(CoreError::InvalidArgument(format!(
                "gp needs matching non-empty data: {n} xs vs {} ys",
                ys.len()
            )));
        }
        let y_mean = ys.iter().sum::<f64>() / n as f64;
        let y_var = ys.iter().map(|y| (y - y_mean) * (y - y_mean)).sum::<f64>() / n as f64;
        let y_std = y_var.sqrt().max(1e-9);
        let ys_std: Vec<f64> = ys.iter().map(|y| (y - y_mean) / y_std).collect();

        // K + noise I.
        let mut k = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..=i {
                let v = rbf(&xs[i], &xs[j], &config);
                k[i][j] = v;
                k[j][i] = v;
            }
            k[i][i] += config.noise_var;
        }
        // Cholesky.
        let mut chol = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = k[i][j];
                for (cit, cjt) in chol[i][..j].iter().zip(&chol[j][..j]) {
                    sum -= cit * cjt;
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(CoreError::InvalidArgument(
                            "kernel matrix not positive definite".into(),
                        ));
                    }
                    chol[i][j] = sum.sqrt();
                } else {
                    chol[i][j] = sum / chol[j][j];
                }
            }
        }
        // alpha = L^-T L^-1 y.
        let mut alpha = ys_std;
        for i in 0..n {
            for t in 0..i {
                alpha[i] -= chol[i][t] * alpha[t];
            }
            alpha[i] /= chol[i][i];
        }
        for i in (0..n).rev() {
            for t in i + 1..n {
                alpha[i] -= chol[t][i] * alpha[t];
            }
            alpha[i] /= chol[i][i];
        }
        Ok(Gp {
            config,
            xs,
            chol,
            alpha,
            y_mean,
            y_std,
        })
    }

    /// Posterior mean and variance at `x` (in original target units).
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        let n = self.xs.len();
        let kstar: Vec<f64> = self.xs.iter().map(|xi| rbf(xi, x, &self.config)).collect();
        let mean_std: f64 = kstar
            .iter()
            .zip(self.alpha.iter())
            .map(|(k, a)| k * a)
            .sum();
        // v = L^-1 k*; var = k(x,x) - v.v
        let mut v = kstar;
        for i in 0..n {
            for t in 0..i {
                v[i] -= self.chol[i][t] * v[t];
            }
            v[i] /= self.chol[i][i];
        }
        let kxx = self.config.signal_var;
        let var_std = (kxx - v.iter().map(|x| x * x).sum::<f64>()).max(1e-12);
        (
            mean_std * self.y_std + self.y_mean,
            var_std * self.y_std * self.y_std,
        )
    }
}

impl Gp {
    /// Log marginal likelihood of the fitted GP (up to a constant), on the
    /// standardized targets: `-0.5 yᵀα − Σ log L_ii`.
    pub fn log_marginal_likelihood(&self) -> f64 {
        // Recover standardized y via alpha: log p(y) = -0.5 yᵀ α − Σ log Lᵢᵢ − n/2 log 2π.
        // yᵀα is not directly stored; recompute y from (K + σ²I) α = y.
        let n = self.xs.len();
        let mut y = vec![0.0; n];
        for (i, yi) in y.iter_mut().enumerate() {
            for j in 0..n {
                let k = rbf(&self.xs[i], &self.xs[j], &self.config)
                    + if i == j { self.config.noise_var } else { 0.0 };
                *yi += k * self.alpha[j];
            }
        }
        let fit: f64 = y.iter().zip(self.alpha.iter()).map(|(y, a)| y * a).sum();
        let logdet: f64 = (0..n).map(|i| self.chol[i][i].ln()).sum();
        -0.5 * fit - logdet - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln()
    }

    /// Fits the GP with the length scale chosen by maximizing the log
    /// marginal likelihood over a small grid — Cherrypick-style automatic
    /// hyper-parameter selection.
    ///
    /// # Errors
    ///
    /// Propagates [`Gp::fit`] failures; at least one grid point must fit.
    pub fn fit_auto(xs: Vec<Vec<f64>>, ys: &[f64], noise_var: f64) -> Result<Gp> {
        let mut best: Option<(f64, Gp)> = None;
        for ls in [0.3, 0.7, 1.0, 1.5, 2.5, 4.0] {
            let config = GpConfig {
                length_scale: ls,
                signal_var: 1.0,
                noise_var,
            };
            if let Ok(gp) = Gp::fit(xs.clone(), ys, config) {
                let lml = gp.log_marginal_likelihood();
                if best.as_ref().map(|(b, _)| lml > *b).unwrap_or(true) {
                    best = Some((lml, gp));
                }
            }
        }
        best.map(|(_, gp)| gp).ok_or_else(|| {
            gillis_core::CoreError::InvalidArgument(
                "no GP hyper-parameter setting produced a valid fit".into(),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_training_points() {
        let xs: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64 * 0.5]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 1.7).sin() * 10.0 + 5.0).collect();
        let gp = Gp::fit(xs.clone(), &ys, GpConfig::default()).unwrap();
        for (x, y) in xs.iter().zip(ys.iter()) {
            let (mean, var) = gp.predict(x);
            assert!((mean - y).abs() < 0.1, "at {x:?}: {mean} vs {y}");
            assert!(var < 0.1, "training-point variance {var}");
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let xs = vec![vec![0.0], vec![1.0]];
        let ys = [0.0, 1.0];
        let gp = Gp::fit(xs, &ys, GpConfig::default()).unwrap();
        let (_, var_near) = gp.predict(&[0.5]);
        let (_, var_far) = gp.predict(&[10.0]);
        assert!(var_far > var_near);
        // Far from data the mean reverts toward the prior (training mean).
        let (mean_far, _) = gp.predict(&[100.0]);
        assert!((mean_far - 0.5).abs() < 0.05);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Gp::fit(vec![], &[], GpConfig::default()).is_err());
        assert!(Gp::fit(vec![vec![0.0]], &[1.0, 2.0], GpConfig::default()).is_err());
    }

    #[test]
    fn marginal_likelihood_prefers_matching_length_scale() {
        // Data generated from a smooth function: a reasonable length scale
        // should beat an absurdly small one.
        let xs: Vec<Vec<f64>> = (0..15).map(|i| vec![i as f64 * 0.4]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0]).sin() * 3.0).collect();
        let smooth = Gp::fit(
            xs.clone(),
            &ys,
            GpConfig {
                length_scale: 1.0,
                signal_var: 1.0,
                noise_var: 1e-4,
            },
        )
        .unwrap();
        let jagged = Gp::fit(
            xs,
            &ys,
            GpConfig {
                length_scale: 0.01,
                signal_var: 1.0,
                noise_var: 1e-4,
            },
        )
        .unwrap();
        assert!(smooth.log_marginal_likelihood() > jagged.log_marginal_likelihood());
    }

    #[test]
    fn fit_auto_generalizes_better_than_worst_grid_point() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.3]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 0.9).cos() * 5.0 + 1.0).collect();
        let auto = Gp::fit_auto(xs.clone(), &ys, 1e-4).unwrap();
        // Held-out point between training samples.
        let x_test = vec![1.05];
        let truth = (1.05f64 * 0.9).cos() * 5.0 + 1.0;
        let (mean, _) = auto.predict(&x_test);
        assert!((mean - truth).abs() < 0.5, "auto mean {mean} vs {truth}");
    }

    #[test]
    fn duplicate_points_survive_via_noise() {
        // Exact duplicates make K singular without the noise jitter.
        let xs = vec![vec![1.0], vec![1.0], vec![2.0]];
        let ys = [3.0, 3.1, 5.0];
        let gp = Gp::fit(xs, &ys, GpConfig::default()).unwrap();
        let (mean, _) = gp.predict(&[1.0]);
        assert!((mean - 3.05).abs() < 0.2);
    }
}
