//! Random valid-plan sampling: the exploration primitive of the BO baseline
//! and the initial design of its Gaussian process.

use rand::rngs::StdRng;
use rand::RngExt;

use gillis_core::partition::{analyze_group, group_options, PartitionOption};
use gillis_core::plan::{ExecutionPlan, Placement, PlannedGroup};
use gillis_model::LinearModel;

/// Samples a uniformly-random *valid* plan: random group boundaries among
/// structurally groupable spans, a random memory-feasible option per group,
/// and a random placement respecting the master budget.
///
/// Returns `None` only if some layer admits no feasible option at all.
pub fn random_plan(
    model: &LinearModel,
    budget: u64,
    degrees: &[usize],
    rng: &mut StdRng,
) -> Option<ExecutionPlan> {
    let n = model.layers().len();
    let mut groups = Vec::new();
    let mut remaining = budget;
    let mut start = 0;
    while start < n {
        // Candidate group ends: structurally valid spans from `start`.
        let mut ends = Vec::new();
        for end in start + 1..=n {
            if group_options(model, start, end, degrees).is_empty() {
                break;
            }
            ends.push(end);
        }
        // Geometric-ish preference for shorter groups keeps fan-out varied.
        let end = *pick_weighted(&ends, rng)?;
        // Memory-feasible options.
        let feasible: Vec<PartitionOption> = group_options(model, start, end, degrees)
            .into_iter()
            .filter(|o| {
                analyze_group(model, start, end, *o)
                    .map(|a| a.partitions.iter().all(|p| p.mem_bytes() <= budget))
                    .unwrap_or(false)
            })
            .collect();
        if feasible.is_empty() {
            // Retry with the shortest group; a singleton may still fail if
            // one layer is simply too large to place anywhere.
            if end == start + 1 {
                return None;
            }
            continue;
        }
        let option = feasible[rng.random_range(0..feasible.len())];
        let analysis = analyze_group(model, start, end, option).ok()?;
        let w0 = analysis.partitions[0].weight_bytes;
        let master = w0 <= remaining && rng.random_bool(0.5);
        let placement = if master {
            remaining -= w0;
            if option.parts() == 1 {
                Placement::Master
            } else {
                Placement::MasterAndWorkers
            }
        } else {
            Placement::Workers
        };
        groups.push(PlannedGroup {
            start,
            end,
            option,
            placement,
        });
        start = end;
    }
    Some(ExecutionPlan::new(groups))
}

fn pick_weighted<'a, T>(items: &'a [T], rng: &mut StdRng) -> Option<&'a T> {
    if items.is_empty() {
        return None;
    }
    // P(i) proportional to 2^-i, truncated.
    let mut idx = 0;
    while idx + 1 < items.len() && rng.random_bool(0.5) {
        idx += 1;
    }
    Some(&items[idx])
}

/// Encodes a plan as a fixed-length feature vector for the GP: per merged
/// layer, `(is_group_start, parallelism_degree/16, master_participates)`.
pub fn encode_plan(model: &LinearModel, plan: &ExecutionPlan) -> Vec<f64> {
    let n = model.layers().len();
    let mut v = vec![0.0; 3 * n];
    for g in plan.groups() {
        for layer in g.start..g.end {
            v[3 * layer] = (layer == g.start) as u8 as f64;
            v[3 * layer + 1] = g.option.parts() as f64 / 16.0;
            v[3 * layer + 2] =
                matches!(g.placement, Placement::Master | Placement::MasterAndWorkers) as u8 as f64;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use gillis_model::zoo;
    use rand::SeedableRng;

    #[test]
    fn random_plans_always_validate() {
        let vgg = zoo::vgg11();
        let budget = 1_400_000_000;
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let plan = random_plan(&vgg, budget, &[2, 4, 8, 16], &mut rng).unwrap();
            plan.validate(&vgg, budget).unwrap();
        }
    }

    #[test]
    fn random_plans_cover_large_models() {
        let wrn = zoo::wrn50(4); // does not fit one function
        let budget = 1_400_000_000;
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let plan = random_plan(&wrn, budget, &[2, 4, 8, 16], &mut rng).unwrap();
            plan.validate(&wrn, budget).unwrap();
        }
    }

    #[test]
    fn random_plans_are_diverse() {
        let vgg = zoo::vgg11();
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_plan(&vgg, 1_400_000_000, &[2, 4, 8], &mut rng).unwrap();
        let b = random_plan(&vgg, 1_400_000_000, &[2, 4, 8], &mut rng).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn encoding_is_fixed_length_and_discriminative() {
        let vgg = zoo::vgg11();
        let n = vgg.layers().len();
        let mut rng = StdRng::seed_from_u64(4);
        let a = random_plan(&vgg, 1_400_000_000, &[2, 4], &mut rng).unwrap();
        let b = random_plan(&vgg, 1_400_000_000, &[2, 4], &mut rng).unwrap();
        let ea = encode_plan(&vgg, &a);
        let eb = encode_plan(&vgg, &b);
        assert_eq!(ea.len(), 3 * n);
        assert_eq!(eb.len(), 3 * n);
        assert_ne!(ea, eb);
        assert_eq!(ea, encode_plan(&vgg, &a));
    }
}
