//! Cherrypick-style Bayesian optimization over partitioning strategies
//! (paper §V-C baseline).
//!
//! The objective is the billed inference cost with an SLO-violation penalty;
//! a Gaussian process models it over encoded plans, and each iteration
//! evaluates the random candidate maximizing expected improvement. Unlike
//! Gillis's RL, the GP treats the system as a black box — it does not use
//! the performance model's structure, which is exactly why the paper finds
//! it weaker.

use rand::rngs::StdRng;
use rand::SeedableRng;

use gillis_core::cache::EvalCache;
use gillis_core::plan::ExecutionPlan;
use gillis_core::predict::{predict_plan_cached, PlanPrediction};
use gillis_core::CoreError;
use gillis_model::LinearModel;
use gillis_perf::PerfModel;

use crate::ei::expected_improvement;
use crate::gp::Gp;
use crate::random::{encode_plan, random_plan};
use crate::Result;

/// Configuration of the BO baseline.
#[derive(Debug, Clone)]
pub struct BoConfig {
    /// Mean-latency SLO in milliseconds.
    pub t_max_ms: f64,
    /// Initial random design size.
    pub init_samples: usize,
    /// BO iterations after the initial design.
    pub iterations: usize,
    /// Random candidates scored by EI per iteration.
    pub candidate_pool: usize,
    /// Penalty (per ms of violation) added to the objective for plans
    /// missing the SLO.
    pub violation_penalty: f64,
    /// Parallelism degrees for random plans.
    pub degrees: Vec<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BoConfig {
    fn default() -> Self {
        BoConfig {
            t_max_ms: 1000.0,
            init_samples: 10,
            iterations: 50,
            candidate_pool: 64,
            violation_penalty: 10.0,
            degrees: vec![2, 4, 8, 16],
            seed: 0,
        }
    }
}

/// Result of a BO run.
#[derive(Debug, Clone)]
pub struct BoResult {
    /// Best plan found (feasible if any candidate met the SLO).
    pub plan: ExecutionPlan,
    /// Its prediction.
    pub predicted: PlanPrediction,
    /// Whether the best plan meets the SLO — the paper observes BO
    /// sometimes fails to (Fig 13).
    pub meets_slo: bool,
    /// Objective value per evaluation (search curve).
    pub objective_history: Vec<f64>,
}

/// The Bayesian-optimization searcher.
#[derive(Debug, Clone)]
pub struct BayesOpt {
    config: BoConfig,
}

impl BayesOpt {
    /// Creates a searcher.
    pub fn new(config: BoConfig) -> Self {
        BayesOpt { config }
    }

    fn objective(&self, pred: &PlanPrediction) -> f64 {
        let violation = (pred.latency_ms - self.config.t_max_ms).max(0.0);
        pred.billed_ms as f64 + self.config.violation_penalty * violation
    }

    /// Runs the search.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Infeasible`] if no valid plan can even be
    /// sampled.
    pub fn search(&self, model: &LinearModel, perf: &PerfModel) -> Result<BoResult> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let budget = perf.platform.model_memory_budget;
        // Candidate plans overlap heavily in their groups: memoize group
        // analyses across every prediction of the search.
        let cache = EvalCache::new();
        let mut xs: Vec<Vec<f64>> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        let mut evaluated: Vec<(ExecutionPlan, PlanPrediction, f64)> = Vec::new();

        let evaluate = |plan: ExecutionPlan,
                        xs: &mut Vec<Vec<f64>>,
                        ys: &mut Vec<f64>,
                        evaluated: &mut Vec<(ExecutionPlan, PlanPrediction, f64)>|
         -> Result<f64> {
            let pred = predict_plan_cached(model, &plan, perf, &cache)?;
            let y = self.objective(&pred);
            xs.push(encode_plan(model, &plan));
            ys.push(y);
            evaluated.push((plan, pred, y));
            Ok(y)
        };

        // Initial design.
        for _ in 0..self.config.init_samples.max(2) {
            let plan = random_plan(model, budget, &self.config.degrees, &mut rng)
                .ok_or_else(|| CoreError::Infeasible("no valid plan can be sampled".into()))?;
            evaluate(plan, &mut xs, &mut ys, &mut evaluated)?;
        }

        // BO loop.
        for _ in 0..self.config.iterations {
            let best_y = ys.iter().copied().fold(f64::INFINITY, f64::min);
            // Length scale chosen by marginal likelihood each iteration
            // (Cherrypick refits its model as observations accumulate).
            let gp = Gp::fit_auto(xs.clone(), &ys, 1e-3)?;
            let mut best_candidate: Option<(f64, ExecutionPlan)> = None;
            for _ in 0..self.config.candidate_pool {
                let Some(plan) = random_plan(model, budget, &self.config.degrees, &mut rng) else {
                    continue;
                };
                let x = encode_plan(model, &plan);
                let (mean, var) = gp.predict(&x);
                let ei = expected_improvement(mean, var, best_y);
                if best_candidate
                    .as_ref()
                    .map(|(b, _)| ei > *b)
                    .unwrap_or(true)
                {
                    best_candidate = Some((ei, plan));
                }
            }
            let Some((_, plan)) = best_candidate else {
                break;
            };
            evaluate(plan, &mut xs, &mut ys, &mut evaluated)?;
        }

        // Best by objective; prefer feasible plans at equal objective.
        let (plan, predicted, _) = evaluated
            .into_iter()
            .min_by(|a, b| a.2.partial_cmp(&b.2).expect("objectives are finite"))
            .expect("at least the initial design was evaluated");
        let meets_slo = predicted.latency_ms <= self.config.t_max_ms;
        Ok(BoResult {
            plan,
            predicted,
            meets_slo,
            objective_history: ys,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gillis_faas::PlatformProfile;
    use gillis_model::zoo;

    fn quick(t_max_ms: f64, seed: u64) -> BoConfig {
        BoConfig {
            t_max_ms,
            init_samples: 6,
            iterations: 15,
            candidate_pool: 24,
            seed,
            ..BoConfig::default()
        }
    }

    #[test]
    fn bo_finds_feasible_plan_under_loose_slo() {
        let platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let tiny = zoo::tiny_vgg();
        let result = BayesOpt::new(quick(10_000.0, 1))
            .search(&tiny, &perf)
            .unwrap();
        assert!(result.meets_slo);
        result
            .plan
            .validate(&tiny, platform.model_memory_budget)
            .unwrap();
        assert!(result.objective_history.len() >= 21);
    }

    #[test]
    fn bo_improves_over_initial_design() {
        let platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let vgg = zoo::vgg11();
        let config = quick(2500.0, 3);
        let init = config.init_samples;
        let result = BayesOpt::new(config).search(&vgg, &perf).unwrap();
        let h = &result.objective_history;
        let best_init = h[..init].iter().copied().fold(f64::INFINITY, f64::min);
        let best_all = h.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(best_all <= best_init);
    }

    #[test]
    fn bo_is_deterministic_in_seed() {
        let platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let tiny = zoo::tiny_vgg();
        let a = BayesOpt::new(quick(5000.0, 9))
            .search(&tiny, &perf)
            .unwrap();
        let b = BayesOpt::new(quick(5000.0, 9))
            .search(&tiny, &perf)
            .unwrap();
        assert_eq!(a.objective_history, b.objective_history);
        assert_eq!(a.plan, b.plan);
    }
}
