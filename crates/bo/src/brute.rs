//! Brute-force optimal search (paper §V-C baseline).
//!
//! Enumerates every (grouping, option, placement) plan by depth-first search
//! with branch-and-bound pruning: partial latency above the SLO or partial
//! cost above the incumbent kills a branch. The paper applies brute force
//! only to VGG-11 — "which still takes over 24 hours" on their menu; with
//! pruning and a configurable node cap it is tractable here for small
//! models and coarse menus.

use std::sync::Arc;

use gillis_core::cache::EvalCache;
use gillis_core::partition::{group_options, GroupAnalysis, PartitionOption};
use gillis_core::plan::{ExecutionPlan, Placement, PlannedGroup};
use gillis_core::predict::{predict_group, predict_plan_cached, PlanPrediction};
use gillis_core::CoreError;
use gillis_faas::billing::billed_ms;
use gillis_model::LinearModel;
use gillis_perf::PerfModel;

use crate::Result;

/// Outcome of the exhaustive search.
#[derive(Debug, Clone)]
pub struct BruteForceResult {
    /// The cost-optimal plan meeting the SLO.
    pub plan: ExecutionPlan,
    /// Its prediction.
    pub predicted: PlanPrediction,
    /// Search nodes expanded.
    pub nodes_expanded: u64,
    /// Whether the node cap truncated the search (result may be
    /// suboptimal).
    pub truncated: bool,
}

struct Search<'a> {
    model: &'a LinearModel,
    perf: &'a PerfModel,
    t_max_ms: f64,
    degrees: Vec<usize>,
    budget: u64,
    max_nodes: u64,
    nodes: u64,
    best_cost: f64,
    best: Option<Vec<PlannedGroup>>,
    /// (analysis, latency, worker billed) memo per (start, end, option).
    memo: std::collections::HashMap<(usize, usize, PartitionOption, Placement), (f64, f64)>,
    /// Group analyses shared with the DP incumbent seeding.
    cache: Arc<EvalCache>,
}

/// Exhaustively finds the cheapest plan whose predicted mean latency meets
/// the SLO.
///
/// # Errors
///
/// Returns [`CoreError::Infeasible`] when no plan meets the SLO (or the
/// model has no layers).
pub fn brute_force(
    model: &LinearModel,
    perf: &PerfModel,
    t_max_ms: f64,
    degrees: &[usize],
    max_nodes: u64,
) -> Result<BruteForceResult> {
    // Branch-and-bound needs a good incumbent to prune effectively: seed
    // with the latency-optimal DP plan when it meets the SLO (a valid plan,
    // so the search remains exact when it completes un-truncated).
    let cache = Arc::new(EvalCache::new());
    let incumbent = gillis_core::DpPartitioner::default()
        .with_cache(Arc::clone(&cache))
        .partition(model, perf)
        .ok()
        .and_then(|plan| {
            let pred = predict_plan_cached(model, &plan, perf, &cache).ok()?;
            (pred.latency_ms <= t_max_ms).then(|| (pred.billed_ms as f64, plan.groups().to_vec()))
        });
    let mut search = Search {
        model,
        perf,
        t_max_ms,
        degrees: degrees.to_vec(),
        budget: perf.platform.model_memory_budget,
        max_nodes,
        nodes: 0,
        best_cost: incumbent.as_ref().map(|(c, _)| *c).unwrap_or(f64::INFINITY),
        best: incumbent.map(|(_, g)| g),
        memo: std::collections::HashMap::new(),
        cache: Arc::clone(&cache),
    };
    let mut prefix = Vec::new();
    search.dfs(0, 0, 0.0, 0.0, &mut prefix)?;
    let truncated = search.nodes >= search.max_nodes;
    match search.best {
        Some(groups) => {
            let plan = ExecutionPlan::new(groups);
            let predicted = predict_plan_cached(model, &plan, perf, &cache)?;
            Ok(BruteForceResult {
                plan,
                predicted,
                nodes_expanded: search.nodes,
                truncated,
            })
        }
        None => Err(CoreError::Infeasible(format!(
            "no plan meets the {t_max_ms} ms SLO (explored {} nodes)",
            search.nodes
        ))),
    }
}

impl Search<'_> {
    /// Group timing: `(group latency, billed worker cost)`, memoized.
    fn group_cost(
        &mut self,
        start: usize,
        end: usize,
        option: PartitionOption,
        placement: Placement,
        analysis: &GroupAnalysis,
    ) -> (f64, f64) {
        if let Some(&v) = self.memo.get(&(start, end, option, placement)) {
            return v;
        }
        let g = predict_group(self.perf, analysis, placement);
        let d = self.perf.platform.billing_granularity_ms;
        let workers: f64 = g.worker_ms.iter().map(|&w| billed_ms(w, d) as f64).sum();
        let v = (g.latency_ms(), workers);
        self.memo.insert((start, end, option, placement), v);
        v
    }

    fn dfs(
        &mut self,
        start: usize,
        master_used: u64,
        latency: f64,
        worker_cost: f64,
        prefix: &mut Vec<PlannedGroup>,
    ) -> Result<()> {
        let n = self.model.layers().len();
        if self.nodes >= self.max_nodes {
            return Ok(());
        }
        self.nodes += 1;
        if start == n {
            if n == 0 {
                return Ok(());
            }
            let d = self.perf.platform.billing_granularity_ms;
            let total = worker_cost + billed_ms(latency, d) as f64;
            if latency <= self.t_max_ms && total < self.best_cost {
                self.best_cost = total;
                self.best = Some(prefix.clone());
            }
            return Ok(());
        }
        // Lower bound on final cost: current workers + master billed so far.
        let d = self.perf.platform.billing_granularity_ms;
        let cost_lb = worker_cost + billed_ms(latency, d) as f64;
        if latency > self.t_max_ms || cost_lb >= self.best_cost {
            return Ok(());
        }
        let degrees = self.degrees.clone();
        for end in start + 1..=n {
            let options = group_options(self.model, start, end, &degrees);
            if options.is_empty() {
                break;
            }
            for option in options {
                let analysis = match self.cache.analysis(self.model, start, end, option) {
                    Ok(a) => a,
                    Err(_) => continue,
                };
                if analysis
                    .partitions
                    .iter()
                    .any(|p| p.mem_bytes() > self.budget)
                {
                    continue;
                }
                let w0 = analysis.partitions[0].weight_bytes;
                // Master participation first: cheaper plans earlier means
                // tighter pruning bounds sooner.
                let mut placements = Vec::with_capacity(2);
                if master_used + w0 <= self.budget {
                    placements.push(if option.parts() == 1 {
                        Placement::Master
                    } else {
                        Placement::MasterAndWorkers
                    });
                }
                placements.push(Placement::Workers);
                for placement in placements {
                    let (glat, gworkers) =
                        self.group_cost(start, end, option, placement, &analysis);
                    let used = if placement == Placement::Workers {
                        0
                    } else {
                        w0
                    };
                    prefix.push(PlannedGroup {
                        start,
                        end,
                        option,
                        placement,
                    });
                    self.dfs(
                        end,
                        master_used + used,
                        latency + glat,
                        worker_cost + gworkers,
                        prefix,
                    )?;
                    prefix.pop();
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gillis_core::predict::predict_plan;
    use gillis_faas::PlatformProfile;
    use gillis_model::zoo;

    #[test]
    fn brute_force_finds_single_function_under_loose_slo() {
        // With a loose SLO, the cheapest plan for a small model is
        // single-function serving (no worker billing at all).
        let platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let tiny = zoo::tiny_vgg();
        let single = predict_plan(&tiny, &ExecutionPlan::single_function(&tiny), &perf).unwrap();
        let result =
            brute_force(&tiny, &perf, single.latency_ms * 5.0, &[2, 4], 2_000_000).unwrap();
        assert!(!result.truncated);
        assert!(result.predicted.billed_ms <= single.billed_ms);
        assert!(result.predicted.latency_ms <= single.latency_ms * 5.0);
    }

    #[test]
    fn brute_force_is_at_least_as_good_as_any_random_plan() {
        use crate::random::random_plan;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let tiny = zoo::tiny_vgg();
        let t_max = 300.0;
        let result = brute_force(&tiny, &perf, t_max, &[2, 4], 2_000_000).unwrap();
        assert!(!result.truncated);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..40 {
            let plan =
                random_plan(&tiny, perf.platform.model_memory_budget, &[2, 4], &mut rng).unwrap();
            let pred = predict_plan(&tiny, &plan, &perf).unwrap();
            if pred.latency_ms <= t_max {
                assert!(
                    result.predicted.billed_ms <= pred.billed_ms,
                    "bf {} beaten by random {}",
                    result.predicted.billed_ms,
                    pred.billed_ms
                );
            }
        }
    }

    #[test]
    fn impossible_slo_is_infeasible() {
        let platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let tiny = zoo::tiny_vgg();
        assert!(matches!(
            brute_force(&tiny, &perf, 0.001, &[2], 100_000),
            Err(CoreError::Infeasible(_))
        ));
    }

    #[test]
    fn node_cap_truncates_gracefully() {
        let platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let vgg = zoo::vgg11();
        // A tiny cap: either truncates with some plan or reports infeasible.
        match brute_force(&vgg, &perf, 5000.0, &[2, 4, 8], 2_000) {
            Ok(r) => assert!(r.truncated || r.nodes_expanded <= 2_000),
            Err(CoreError::Infeasible(_)) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }
}
