//! Baseline searchers for SLO-aware partitioning (paper §V-C):
//!
//! - [`search::BayesOpt`] — the Cherrypick-style Bayesian-optimization
//!   baseline: a Gaussian process models the (SLO-penalized) inference cost
//!   over encoded strategies; candidates are scored with expected
//!   improvement.
//! - [`brute::brute_force`] — exhaustive (branch-and-bound) search for the
//!   optimal cost-minimal plan meeting the SLO; tractable only for small
//!   models, exactly as the paper observes for VGG-11.
//! - [`random::random_plan`] — valid-plan sampling shared by both.

pub mod brute;
pub mod ei;
pub mod gp;
pub mod random;
pub mod search;

pub use brute::brute_force;
pub use search::{BayesOpt, BoConfig, BoResult};

/// Convenient result alias (re-uses the core error type).
pub type Result<T> = std::result::Result<T, gillis_core::CoreError>;
