//! Expected improvement (EI) acquisition for minimization, as used by
//! Cherrypick (paper reference \[42\], §V-C baseline).

use gillis_faas::stats::{normal_cdf, normal_pdf};

/// Expected improvement of a candidate with posterior `(mean, var)` over the
/// current best (minimal) observation.
pub fn expected_improvement(mean: f64, var: f64, best: f64) -> f64 {
    let sigma = var.max(0.0).sqrt();
    if sigma < 1e-12 {
        return (best - mean).max(0.0);
    }
    let z = (best - mean) / sigma;
    (best - mean) * normal_cdf(z) + sigma * normal_pdf(z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_is_nonnegative() {
        for (m, v, b) in [(5.0, 1.0, 3.0), (1.0, 1.0, 3.0), (0.0, 0.0, -1.0)] {
            assert!(expected_improvement(m, v, b) >= 0.0);
        }
    }

    #[test]
    fn lower_mean_is_better() {
        let a = expected_improvement(1.0, 1.0, 2.0);
        let b = expected_improvement(1.5, 1.0, 2.0);
        assert!(a > b);
    }

    #[test]
    fn uncertainty_adds_value() {
        // Same mean above best: only variance gives hope.
        let low = expected_improvement(3.0, 0.01, 2.0);
        let high = expected_improvement(3.0, 4.0, 2.0);
        assert!(high > low);
    }

    #[test]
    fn zero_variance_is_plain_improvement() {
        assert_eq!(expected_improvement(1.0, 0.0, 3.0), 2.0);
        assert_eq!(expected_improvement(4.0, 0.0, 3.0), 0.0);
    }
}
