//! Criterion benchmarks of the tensor kernels backing the reference
//! executor (the reproduction's MXNet stand-in).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use gillis_tensor::ops::{
    conv2d, dense, lstm_cell, max_pool2d, Conv2dParams, LstmParams, LstmState, Pool2dParams,
};
use gillis_tensor::{Shape, Tensor};

fn bench_conv2d(c: &mut Criterion) {
    let input = Tensor::from_fn(Shape::new(vec![16, 32, 32]), |i| (i % 7) as f32 * 0.1);
    let weight = Tensor::from_fn(Shape::new(vec![16, 16, 3, 3]), |i| (i % 5) as f32 * 0.01);
    let bias = Tensor::zeros(Shape::new(vec![16]));
    let params = Conv2dParams::square(3, 1, 1);
    c.bench_function("conv2d_16x32x32_3x3", |b| {
        b.iter(|| conv2d(black_box(&input), &weight, Some(&bias), &params).unwrap())
    });
}

fn bench_pool(c: &mut Criterion) {
    let input = Tensor::from_fn(Shape::new(vec![64, 56, 56]), |i| i as f32);
    let params = Pool2dParams::square(2, 2, 0);
    c.bench_function("max_pool2d_64x56x56", |b| {
        b.iter(|| max_pool2d(black_box(&input), &params).unwrap())
    });
}

fn bench_dense(c: &mut Criterion) {
    let x = Tensor::from_fn(Shape::new(vec![4096]), |i| (i % 13) as f32);
    let w = Tensor::from_fn(Shape::new(vec![1000, 4096]), |i| (i % 11) as f32 * 1e-3);
    let b_t = Tensor::zeros(Shape::new(vec![1000]));
    c.bench_function("dense_4096_to_1000", |b| {
        b.iter(|| dense(black_box(&x), &w, Some(&b_t)).unwrap())
    });
}

fn bench_lstm(c: &mut Criterion) {
    let hidden = 256;
    let params = LstmParams {
        w_ih: Tensor::from_fn(Shape::new(vec![4 * hidden, hidden]), |i| {
            (i % 7) as f32 * 1e-3
        }),
        w_hh: Tensor::from_fn(Shape::new(vec![4 * hidden, hidden]), |i| {
            (i % 5) as f32 * 1e-3
        }),
        bias: Tensor::zeros(Shape::new(vec![4 * hidden])),
    };
    let x = Tensor::from_fn(Shape::new(vec![hidden]), |i| (i % 3) as f32 * 0.1);
    let state = LstmState::zeros(hidden);
    c.bench_function("lstm_cell_h256", |b| {
        b.iter(|| lstm_cell(black_box(&x), &state, &params).unwrap())
    });
}

fn bench_slice_concat(c: &mut Criterion) {
    let t = Tensor::from_fn(Shape::new(vec![64, 112, 112]), |i| i as f32);
    c.bench_function("slice_rows_64x112x112", |b| {
        b.iter(|| t.slice(1, 28..84).unwrap())
    });
    let parts: Vec<Tensor> = (0..4)
        .map(|p| t.slice(1, p * 28..(p + 1) * 28).unwrap())
        .collect();
    c.bench_function("concat_rows_4x_64x28x112", |b| {
        b.iter(|| Tensor::concat(black_box(&parts), 1).unwrap())
    });
}

criterion_group!(
    benches,
    bench_conv2d,
    bench_pool,
    bench_dense,
    bench_lstm,
    bench_slice_concat
);
criterion_main!(benches);
