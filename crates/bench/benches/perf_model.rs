//! Criterion benchmarks of the performance model: the prediction primitives
//! the DP, RL, and BO searches evaluate millions of times.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use gillis_core::{predict_plan, DpPartitioner, ExecutionPlan};
use gillis_faas::{ExGaussian, PlatformProfile};
use gillis_model::zoo;
use gillis_perf::{fit::fit_exgaussian, LinearRegression, PerfModel};

fn bench_predict_plan(c: &mut Criterion) {
    let perf = PerfModel::analytic(&PlatformProfile::aws_lambda());
    let vgg = zoo::vgg16();
    let plan = DpPartitioner::default().partition(&vgg, &perf).unwrap();
    c.bench_function("predict_plan_vgg16", |b| {
        b.iter(|| predict_plan(black_box(&vgg), &plan, &perf).unwrap())
    });
    let single = ExecutionPlan::single_function(&vgg);
    c.bench_function("predict_plan_vgg16_single", |b| {
        b.iter(|| predict_plan(black_box(&vgg), &single, &perf).unwrap())
    });
}

fn bench_order_statistics(c: &mut Criterion) {
    let d = ExGaussian::new(5.0, 1.5, 1.0 / 7.0).unwrap();
    c.bench_function("exgaussian_expected_max_16", |b| {
        b.iter(|| black_box(&d).expected_max(16))
    });
    let perf = PerfModel::analytic(&PlatformProfile::aws_lambda());
    c.bench_function("comm_group_transfer_cached", |b| {
        b.iter(|| perf.comm.group_transfer_ms(black_box(1_000_000), 16))
    });
}

fn bench_fitting(c: &mut Criterion) {
    let d = ExGaussian::new(5.0, 1.5, 1.0 / 7.0).unwrap();
    let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(3);
    let samples: Vec<f64> = (0..2000).map(|_| d.sample(&mut rng)).collect();
    c.bench_function("fit_exgaussian_2000", |b| {
        b.iter(|| fit_exgaussian(black_box(&samples)).unwrap())
    });
    let xs: Vec<Vec<f64>> = (0..500)
        .map(|i| vec![i as f64, (i * i % 97) as f64])
        .collect();
    let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] - x[1] + 1.0).collect();
    c.bench_function("linear_regression_500x2", |b| {
        b.iter(|| LinearRegression::fit(black_box(&xs), &ys).unwrap())
    });
}

criterion_group!(
    benches,
    bench_predict_plan,
    bench_order_statistics,
    bench_fitting
);
criterion_main!(benches);
