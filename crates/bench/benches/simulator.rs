//! Criterion benchmarks of the serverless platform simulator and the
//! fork-join serving runtime.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use gillis_core::{DpPartitioner, ForkJoinRuntime};
use gillis_faas::billing::BillingMeter;
use gillis_faas::fleet::{Fleet, FunctionSpec};
use gillis_faas::workload::ClosedLoop;
use gillis_faas::{Micros, PlatformProfile};
use gillis_model::zoo;
use gillis_perf::PerfModel;
use rand::SeedableRng;

fn bench_simulate_query(c: &mut Criterion) {
    let platform = PlatformProfile::aws_lambda();
    let perf = PerfModel::analytic(&platform);
    let vgg = zoo::vgg16();
    let plan = DpPartitioner::default().partition(&vgg, &perf).unwrap();
    let rt = ForkJoinRuntime::new(&vgg, &plan, platform).unwrap();
    let mut rng: rand::rngs::StdRng = SeedableRng::seed_from_u64(1);
    c.bench_function("simulate_query_vgg16", |b| {
        b.iter(|| rt.simulate_query(black_box(&mut rng)))
    });
}

fn bench_serve_workload(c: &mut Criterion) {
    let platform = PlatformProfile::aws_lambda();
    let perf = PerfModel::analytic(&platform);
    let vgg = zoo::vgg11();
    let plan = DpPartitioner::default().partition(&vgg, &perf).unwrap();
    let rt = ForkJoinRuntime::new(&vgg, &plan, platform).unwrap();
    let mut group = c.benchmark_group("serve_workload");
    group.sample_size(10);
    group.bench_function("vgg11_10x50", |b| {
        b.iter(|| {
            rt.serve_workload(ClosedLoop::new(10, 50, Micros::ZERO).unwrap(), black_box(3))
                .unwrap()
        })
    });
    group.finish();
}

fn bench_fleet(c: &mut Criterion) {
    c.bench_function("fleet_acquire_release", |b| {
        let mut fleet = Fleet::new(PlatformProfile::aws_lambda());
        fleet
            .deploy(FunctionSpec {
                name: "f".into(),
                memory_bytes: 3_000_000_000,
                package_bytes: 1_000_000,
            })
            .unwrap();
        let mut t = 0u64;
        b.iter(|| {
            t += 1000;
            let a = fleet.acquire("f", Micros(t)).unwrap();
            fleet.release("f", a.ready_at + Micros(500)).unwrap();
        })
    });
    c.bench_function("billing_record", |b| {
        let mut meter = BillingMeter::new(1, 0.0000166667, 0.0000002);
        b.iter(|| meter.record(black_box(123.4), 3_000_000_000))
    });
}

criterion_group!(
    benches,
    bench_simulate_query,
    bench_serve_workload,
    bench_fleet
);
criterion_main!(benches);
