//! Criterion benchmarks of the SLO-aware searchers: RL policy steps, GP
//! fitting/prediction, EI scoring, random-plan sampling, and a small brute
//! force.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use gillis_bo::brute_force;
use gillis_bo::gp::{Gp, GpConfig};
use gillis_bo::random::{encode_plan, random_plan};
use gillis_faas::PlatformProfile;
use gillis_model::zoo;
use gillis_perf::PerfModel;
use gillis_rl::agents::{Agents, OptionMenu};
use gillis_rl::nn::Mlp;
use gillis_rl::{slo_aware_partition, SloAwareConfig};
use rand::SeedableRng;

fn bench_mlp(c: &mut Criterion) {
    let mut rng: rand::rngs::StdRng = SeedableRng::seed_from_u64(1);
    let mlp = Mlp::new(10, 16, 8, &mut rng);
    let x = vec![0.3; 10];
    c.bench_function("mlp_forward_10_16_8", |b| {
        b.iter(|| mlp.forward(black_box(&x)))
    });
    let fwd = mlp.forward(&x);
    let dlogits = vec![0.1; 8];
    c.bench_function("mlp_backward_10_16_8", |b| {
        b.iter(|| {
            let mut grads = mlp.zero_grads();
            mlp.backward(black_box(&fwd), &dlogits, &mut grads);
            grads
        })
    });
}

fn bench_rl_training(c: &mut Criterion) {
    let perf = PerfModel::analytic(&PlatformProfile::aws_lambda());
    let tiny = zoo::tiny_vgg();
    let mut group = c.benchmark_group("rl");
    group.sample_size(10);
    group.bench_function("slo_aware_tiny_40_episodes", |b| {
        b.iter(|| {
            slo_aware_partition(
                black_box(&tiny),
                &perf,
                &SloAwareConfig {
                    t_max_ms: 500.0,
                    episodes: 40,
                    batch: 8,
                    ..SloAwareConfig::default()
                },
            )
            .unwrap()
        })
    });
    group.finish();
    let mut rng: rand::rngs::StdRng = SeedableRng::seed_from_u64(2);
    let agents = Agents::new(16, OptionMenu::default(), &mut rng);
    let vgg = zoo::vgg11();
    c.bench_function("menu_mask_vgg11_group", |b| {
        b.iter(|| agents.menu.mask(black_box(&vgg), 0, 3, 1_400_000_000))
    });
}

fn bench_gp(c: &mut Criterion) {
    let perf = PerfModel::analytic(&PlatformProfile::aws_lambda());
    let vgg = zoo::vgg11();
    let mut rng: rand::rngs::StdRng = SeedableRng::seed_from_u64(3);
    let budget = perf.platform.model_memory_budget;
    let plans: Vec<_> = (0..30)
        .map(|_| random_plan(&vgg, budget, &[2, 4, 8], &mut rng).unwrap())
        .collect();
    let xs: Vec<Vec<f64>> = plans.iter().map(|p| encode_plan(&vgg, p)).collect();
    let ys: Vec<f64> = (0..30)
        .map(|i| (i as f64 * 0.7).sin() * 100.0 + 500.0)
        .collect();
    c.bench_function("gp_fit_30_points", |b| {
        b.iter(|| Gp::fit(black_box(xs.clone()), &ys, GpConfig::default()).unwrap())
    });
    let gp = Gp::fit(xs.clone(), &ys, GpConfig::default()).unwrap();
    c.bench_function("gp_predict", |b| b.iter(|| gp.predict(black_box(&xs[0]))));
    c.bench_function("random_plan_vgg11", |b| {
        b.iter(|| random_plan(black_box(&vgg), budget, &[2, 4, 8], &mut rng).unwrap())
    });
}

fn bench_brute_force(c: &mut Criterion) {
    let perf = PerfModel::analytic(&PlatformProfile::aws_lambda());
    let tiny = zoo::tiny_vgg();
    let mut group = c.benchmark_group("brute_force");
    group.sample_size(10);
    group.bench_function("tiny_vgg_slo300", |b| {
        b.iter(|| brute_force(black_box(&tiny), &perf, 300.0, &[2, 4], 500_000).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mlp,
    bench_rl_training,
    bench_gp,
    bench_brute_force
);
criterion_main!(benches);
