//! Criterion benchmarks of the partitioning algorithms: how long does it
//! take Gillis to *plan* (an offline cost, but the paper stresses that the
//! DP is fast and brute force is not).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use gillis_core::{
    analyze_group, group_options, DpPartitioner, PartDim, PartitionOption, PartitionerConfig,
};
use gillis_faas::PlatformProfile;
use gillis_model::zoo;
use gillis_perf::PerfModel;

fn bench_dp(c: &mut Criterion) {
    let perf = PerfModel::analytic(&PlatformProfile::aws_lambda());
    let mut group = c.benchmark_group("dp_partition");
    group.sample_size(10);
    for model in [zoo::vgg11(), zoo::vgg16(), zoo::wrn50(4)] {
        group.bench_function(model.name().to_string(), |b| {
            b.iter(|| {
                DpPartitioner::new(PartitionerConfig::default())
                    .partition(black_box(&model), &perf)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_group_analysis(c: &mut Criterion) {
    let vgg = zoo::vgg16();
    c.bench_function("analyze_group_hx8", |b| {
        b.iter(|| {
            analyze_group(
                black_box(&vgg),
                0,
                4,
                PartitionOption::Split {
                    dim: PartDim::Height,
                    parts: 8,
                },
            )
            .unwrap()
        })
    });
    c.bench_function("group_options_sweep", |b| {
        b.iter(|| {
            let mut count = 0;
            for start in 0..vgg.layers().len() {
                for end in start + 1..=vgg.layers().len().min(start + 6) {
                    count += group_options(black_box(&vgg), start, end, &[2, 4, 8, 16]).len();
                }
            }
            count
        })
    });
}

criterion_group!(benches, bench_dp, bench_group_analysis);
criterion_main!(benches);
