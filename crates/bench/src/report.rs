//! Machine-readable perf reporting for the `bench_report` binary.
//!
//! A small self-contained timing harness (the criterion shim is a
//! dev-dependency, and binaries cannot see dev-dependencies) plus JSON
//! serialization for `BENCH_tensor.json` / `BENCH_planner.json`. Numbers are
//! median ns/iter over calibrated sample loops, the same scheme the criterion
//! shim uses, so bench and report figures are comparable.

use std::time::{Duration, Instant};

/// Wall-clock budget per measured sample.
const SAMPLE_BUDGET: Duration = Duration::from_millis(40);
/// Cap on total time spent on one case (heavy naive kernels can take
/// seconds per iteration; three samples of those is plenty).
const CASE_BUDGET: Duration = Duration::from_secs(8);

/// One benchmark measurement destined for the JSON report.
#[derive(Debug, Clone)]
pub struct ReportEntry {
    /// Op or algorithm name, e.g. `conv2d` or `dp_partition`.
    pub op: String,
    /// Human-readable case/shape description, e.g. `in=256x56x56 w=256x256x3x3 s1 p1`.
    pub shape: String,
    /// Median nanoseconds per iteration in this run.
    pub ns_per_iter: f64,
    /// Number of samples the median was taken over.
    pub samples: usize,
    /// Seed-kernel (pre-optimization) ns/iter for the same case, if recorded.
    pub baseline_ns_per_iter: Option<f64>,
    /// Floating-point operations one iteration performs, when the case has a
    /// closed-form count (GEMM-backed kernels); `None` for ops timed without
    /// a FLOP model.
    pub flops: Option<u64>,
}

impl ReportEntry {
    /// Speedup of this run over the recorded seed baseline.
    pub fn speedup(&self) -> Option<f64> {
        self.baseline_ns_per_iter.map(|b| b / self.ns_per_iter)
    }

    /// Achieved GFLOP/s (= FLOPs per nanosecond), when a FLOP count is
    /// recorded.
    pub fn gflops(&self) -> Option<f64> {
        self.flops.map(|f| f as f64 / self.ns_per_iter)
    }
}

/// Times `routine`, returning (median ns/iter, samples taken).
///
/// Calibrates with a single run, sizes sample loops to [`SAMPLE_BUDGET`],
/// then takes up to `max_samples` samples within [`CASE_BUDGET`].
pub fn measure<O, F: FnMut() -> O>(max_samples: usize, mut routine: F) -> (f64, usize) {
    let start = Instant::now();
    std::hint::black_box(routine());
    let est = start.elapsed().max(Duration::from_nanos(1));
    let iters = (SAMPLE_BUDGET.as_nanos() as f64 / est.as_nanos() as f64)
        .clamp(1.0, 1e9)
        .round() as u64;

    let deadline = Instant::now() + CASE_BUDGET;
    let mut samples = Vec::with_capacity(max_samples);
    for _ in 0..max_samples.max(1) {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        if Instant::now() >= deadline {
            break;
        }
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    (samples[samples.len() / 2], samples.len())
}

/// Renders a report as pretty-printed JSON (hand-rolled: the serde shim has
/// no serializer).
pub fn render_json(suite: &str, threads: usize, entries: &[ReportEntry]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"suite\": \"{suite}\",\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str("  \"results\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let baseline = match e.baseline_ns_per_iter {
            Some(b) => format!("{b:.1}"),
            None => "null".into(),
        };
        let speedup = match e.speedup() {
            Some(s) => format!("{s:.2}"),
            None => "null".into(),
        };
        let gflops = match e.gflops() {
            Some(g) => format!("{g:.2}"),
            None => "null".into(),
        };
        out.push_str(&format!(
            "    {{\"op\": \"{}\", \"shape\": \"{}\", \"ns_per_iter\": {:.1}, \"samples\": {}, \"baseline_ns_per_iter\": {}, \"speedup\": {}, \"gflops\": {}}}{}\n",
            e.op,
            e.shape,
            e.ns_per_iter,
            e.samples,
            baseline,
            speedup,
            gflops,
            if i + 1 == entries.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_positive_time() {
        let (ns, samples) = measure(5, || (0..1000u64).sum::<u64>());
        assert!(ns > 0.0);
        assert!((1..=5).contains(&samples));
    }

    #[test]
    fn json_report_is_well_formed() {
        let entries = vec![
            ReportEntry {
                op: "conv2d".into(),
                shape: "in=16x32x32".into(),
                ns_per_iter: 1234.5,
                samples: 10,
                baseline_ns_per_iter: Some(2469.0),
                flops: Some(123_450),
            },
            ReportEntry {
                op: "dense".into(),
                shape: "4096->1000".into(),
                ns_per_iter: 10.0,
                samples: 3,
                baseline_ns_per_iter: None,
                flops: None,
            },
        ];
        let json = render_json("tensor", 4, &entries);
        assert!(json.contains("\"suite\": \"tensor\""));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"speedup\": 2.00"));
        assert!(json.contains("\"baseline_ns_per_iter\": null"));
        assert!(json.contains("\"gflops\": 100.00"));
        // Exactly one trailing comma between the two entries, none after the last.
        assert_eq!(json.matches("},\n").count(), 1);
        assert!(json.contains("\"gflops\": null}\n"));
    }

    #[test]
    fn speedup_is_baseline_over_current() {
        let e = ReportEntry {
            op: "x".into(),
            shape: "s".into(),
            ns_per_iter: 50.0,
            samples: 1,
            baseline_ns_per_iter: Some(200.0),
            flops: Some(100),
        };
        assert_eq!(e.speedup(), Some(4.0));
        assert_eq!(e.gflops(), Some(2.0));
    }
}
