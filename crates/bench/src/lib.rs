//! Shared helpers for the Gillis benchmark harness.
//!
//! Each paper figure has a binary in `src/bin/` (`fig01_*` … `fig15_*`) that
//! regenerates the corresponding table/series; this library holds the
//! plumbing they share: aligned table printing and the standard
//! latency-optimal measurement loop (100 warm queries, as in §V-B).

pub mod report;

use gillis_core::{DpPartitioner, ExecutionPlan, ForkJoinRuntime, PartitionerConfig};
use gillis_faas::PlatformProfile;
use gillis_model::LinearModel;
use gillis_perf::PerfModel;

/// A simple fixed-width text table for experiment output.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Measured latencies for one model on one platform.
#[derive(Debug, Clone)]
pub struct LoMeasurement {
    /// Mean Default (single-function) latency over the query batch, if the
    /// model fits one function.
    pub default_ms: Option<f64>,
    /// Mean Gillis latency-optimal latency.
    pub gillis_ms: f64,
    /// The latency-optimal plan.
    pub plan: ExecutionPlan,
}

impl LoMeasurement {
    /// Speedup of Gillis over Default (when Default is feasible).
    pub fn speedup(&self) -> Option<f64> {
        self.default_ms.map(|d| d / self.gillis_ms)
    }
}

/// The §V-B measurement loop: partition with the latency-optimal DP, then
/// serve `queries` warm queries and average, against the Default baseline.
///
/// # Panics
///
/// Panics if partitioning fails (the benchmark models are all partitionable
/// on the paper's platforms).
pub fn measure_latency_optimal(
    model: &LinearModel,
    platform: &PlatformProfile,
    queries: usize,
    seed: u64,
) -> LoMeasurement {
    let perf = PerfModel::profiled(platform, seed);
    let plan = DpPartitioner::new(PartitionerConfig::default())
        .partition(model, &perf)
        .expect("benchmark model is partitionable");
    let runtime = ForkJoinRuntime::new(model, &plan, platform.clone())
        .expect("latency-optimal plan is servable");
    let gillis_ms = runtime.mean_latency_ms(queries, seed ^ 0xabcd);

    let default_ms = if model.weight_bytes() <= platform.model_memory_budget {
        let single = ExecutionPlan::single_function(model);
        let rt = ForkJoinRuntime::new(model, &single, platform.clone())
            .expect("single-function plan is servable");
        Some(rt.mean_latency_ms(queries, seed ^ 0x1234))
    } else {
        None
    };
    LoMeasurement {
        default_ms,
        gillis_ms,
        plan,
    }
}

/// The RNG seed a benchmark binary should use: `GILLIS_BENCH_SEED` from the
/// environment when set (and parseable as `u64`), else `default`. Every
/// `fig*`/`ext_*` binary routes its seeds through this, so a whole benchmark
/// run can be re-rolled (or pinned in CI) without touching code.
pub fn bench_seed(default: u64) -> u64 {
    std::env::var("GILLIS_BENCH_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Formats milliseconds compactly.
pub fn ms(v: f64) -> String {
    format!("{v:.0}")
}

/// Formats an optional speedup as `1.7x` or `-`.
pub fn speedup(s: Option<f64>) -> String {
    match s {
        Some(v) => format!("{v:.2}x"),
        None => "-".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gillis_model::zoo;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["model", "ms"]);
        t.row(vec!["vgg11".into(), "123".into()]);
        t.row(vec!["wrn-50-3".into(), "4".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("model"));
        assert!(lines[2].ends_with("123"));
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_validates_columns() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn measurement_loop_produces_speedup_for_tiny_model() {
        let platform = PlatformProfile::aws_lambda();
        let m = measure_latency_optimal(&zoo::tiny_vgg(), &platform, 5, 1);
        assert!(m.default_ms.is_some());
        assert!(m.gillis_ms > 0.0);
        assert!(m.speedup().unwrap() > 0.1);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(123.4), "123");
        assert_eq!(speedup(Some(1.234)), "1.23x");
        assert_eq!(speedup(None), "-");
    }

    #[test]
    fn bench_seed_falls_back_to_default() {
        // The env var is not set under `cargo test`; the default wins.
        if std::env::var("GILLIS_BENCH_SEED").is_err() {
            assert_eq!(bench_seed(42), 42);
        }
    }
}
