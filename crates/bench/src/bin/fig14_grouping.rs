//! Fig 14 reproduction: the latency-optimal grouping/parallelization of
//! WRN-34-5 on AWS Lambda.
//!
//! Paper observations: (1) lower layers (small weights, large feature maps)
//! are fused into longer groups; (2) low groups parallelize across more
//! functions (up to 16); (3) the master tends to compute partitions of the
//! low, weight-light groups.

use gillis_core::{DpPartitioner, Placement};
use gillis_faas::PlatformProfile;
use gillis_model::zoo;
use gillis_perf::PerfModel;

fn main() {
    println!("Fig 14: latency-optimal plan for WRN-34-5 on Lambda\n");
    let platform = PlatformProfile::aws_lambda();
    let perf = PerfModel::profiled(&platform, 7);
    let model = zoo::wrn34(5);
    let plan = DpPartitioner::default()
        .partition(&model, &perf)
        .expect("WRN-34-5 is partitionable");
    println!("{}", plan.describe(&model).expect("plan describes"));

    // Quantify the paper's three observations.
    let groups = plan.groups();
    let n = groups.len();
    let low = &groups[..n / 2];
    let high = &groups[n / 2..];
    let avg_len = |gs: &[gillis_core::PlannedGroup]| {
        gs.iter().map(|g| g.end - g.start).sum::<usize>() as f64 / gs.len() as f64
    };
    let avg_fanout = |gs: &[gillis_core::PlannedGroup]| {
        gs.iter().map(|g| g.option.parts()).sum::<usize>() as f64 / gs.len() as f64
    };
    let master_share = |gs: &[gillis_core::PlannedGroup]| {
        gs.iter()
            .filter(|g| matches!(g.placement, Placement::Master | Placement::MasterAndWorkers))
            .count() as f64
            / gs.len() as f64
    };
    println!("observation checks (low half vs high half of the network):");
    println!(
        "  group length : {:.2} vs {:.2}",
        avg_len(low),
        avg_len(high)
    );
    println!(
        "  fan-out      : {:.2} vs {:.2}",
        avg_fanout(low),
        avg_fanout(high)
    );
    println!(
        "  master share : {:.2} vs {:.2}",
        master_share(low),
        master_share(high)
    );
    println!("\npaper anchors: more fusion at the bottom, wider fan-out (16) for low");
    println!("groups, and master participation concentrated in low groups.");
}
