//! Fig 7 reproduction: end-to-end latency vs number of parallel functions.
//!
//! A model is group-parallelized (Gillis's coarse grouping: one group per
//! convolution stage) across a varying number of functions. More functions
//! shrink the compute share but grow communication/synchronization; on
//! Lambda scaling stops paying off quickly ("8 to 16 does more harm than
//! good"), while KNIX's fast function interaction keeps it useful longer.

use gillis_bench::Table;
use gillis_core::{
    ExecutionPlan, ForkJoinRuntime, PartDim, PartitionOption, Placement, PlannedGroup,
};
use gillis_faas::PlatformProfile;
use gillis_model::zoo;

fn main() {
    println!("Fig 7: latency breakdown vs parallel functions (VGG-16, stage groups)\n");
    let model = zoo::vgg16();
    let n_layers = model.layers().len();
    let spatial_end = model
        .layers()
        .iter()
        .take_while(|l| l.class.supports_spatial())
        .count();

    // Stage boundaries: cut after each pooling layer (the weightless
    // channel-local merged layers).
    let mut boundaries = Vec::new();
    let mut start = 0;
    for i in 0..spatial_end {
        if model.layers()[i].weight_bytes == 0 || i + 1 == spatial_end {
            boundaries.push((start, i + 1));
            start = i + 1;
        }
    }

    for platform in [PlatformProfile::aws_lambda(), PlatformProfile::knix()] {
        println!("{}:", platform.kind.label());
        let mut table = Table::new(&["functions", "total(ms)", "compute(ms)", "comm(ms)"]);
        for parts in [1usize, 2, 4, 8, 16] {
            let mut groups = Vec::new();
            for &(s, e) in &boundaries {
                let extent = model.layers()[e - 1].out_shape.dims()[1];
                let option = if parts == 1 || extent < parts {
                    PartitionOption::Single
                } else {
                    PartitionOption::Split {
                        dim: PartDim::Height,
                        parts,
                    }
                };
                groups.push(PlannedGroup {
                    start: s,
                    end: e,
                    option,
                    placement: if option == PartitionOption::Single {
                        Placement::Master
                    } else {
                        Placement::Workers
                    },
                });
            }
            for i in spatial_end..n_layers {
                groups.push(PlannedGroup {
                    start: i,
                    end: i + 1,
                    option: PartitionOption::Single,
                    placement: Placement::Master,
                });
            }
            let plan = ExecutionPlan::new(groups);
            let rt =
                ForkJoinRuntime::new(&model, &plan, platform.clone()).expect("manual fan-out plan");
            let mut total = 0.0;
            let mut comm = 0.0;
            let mut compute = 0.0;
            let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(7);
            for _ in 0..50 {
                let q = rt.simulate_query(&mut rng);
                total += q.latency_ms;
                for (f, c, j) in q.group_ms {
                    comm += f + j;
                    compute += c;
                }
            }
            table.row(vec![
                format!("{parts}"),
                format!("{:.0}", total / 50.0),
                format!("{:.0}", compute / 50.0),
                format!("{:.0}", comm / 50.0),
            ]);
        }
        table.print();
        println!();
    }
    println!("paper anchor: on Lambda, scaling out stops paying and then hurts;");
    println!("KNIX stays nearly flat (communication an order of magnitude cheaper).");
}
