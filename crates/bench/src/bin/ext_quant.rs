//! Extension: int8-quantized transfers reshape the latency-optimal plan.
//!
//! Gillis prices every fork/join transfer through the performance model's
//! wire format (`PerfModel::wire_bytes`). Switching a deployment from raw
//! f32 payloads to per-payload int8 quantization shrinks each transfer
//! ~4×, which shifts the compute/communication balance the DP planner
//! optimizes: partition degrees that were communication-bound under f32
//! become profitable under int8.
//!
//! For each model this prints the latency-optimal DP plan under both wire
//! formats, the total bytes a query actually puts on the wire, and the
//! predicted latency — demonstrating (a) the ~4× payload reduction and
//! (b) at least one plan changing shape under quantized transfer costs.

use gillis_bench::Table;
use gillis_core::{
    predict_plan, DpPartitioner, ExecutionPlan, PartDim, PartitionOption, Placement,
};
use gillis_faas::PlatformProfile;
use gillis_model::zoo;
use gillis_perf::{PerfModel, TransferFormat};

/// Compact plan shape, e.g. `[0..9 h8 w][9..12 1 m]`.
fn plan_shape(plan: &ExecutionPlan) -> String {
    plan.groups()
        .iter()
        .map(|g| {
            let opt = match g.option {
                PartitionOption::Single => "1".to_string(),
                PartitionOption::Split { dim, parts } => {
                    let d = match dim {
                        PartDim::Height => 'h',
                        PartDim::Width => 'w',
                        PartDim::Channel => 'c',
                    };
                    format!("{d}{parts}")
                }
            };
            let place = match g.placement {
                Placement::Master => "m",
                Placement::Workers => "w",
                Placement::MasterAndWorkers => "mw",
            };
            format!("[{}..{} {opt} {place}]", g.start, g.end)
        })
        .collect()
}

/// Total bytes one query puts on the wire under `perf`'s transfer format:
/// per worker partition, the shipped input plus the returned output.
fn plan_wire_bytes(
    model: &gillis_model::LinearModel,
    plan: &ExecutionPlan,
    perf: &PerfModel,
) -> u64 {
    let analyses = plan.analyses(model).expect("valid plan");
    plan.groups()
        .iter()
        .zip(analyses.iter())
        .map(|(g, a)| {
            let offset = match g.placement {
                Placement::Master => return 0,
                Placement::Workers => 0,
                Placement::MasterAndWorkers => 1,
            };
            a.partitions[offset..]
                .iter()
                .map(|p| perf.wire_bytes(p.input_bytes) + perf.wire_bytes(p.output_bytes))
                .sum()
        })
        .sum()
}

fn main() {
    println!("Extension: DP planning under f32 vs int8 wire formats (AWS Lambda)\n");
    let platform = PlatformProfile::aws_lambda();
    let f32_perf = PerfModel::analytic(&platform);
    let int8_perf = PerfModel::analytic(&platform).with_transfer_format(TransferFormat::Int8);

    let mut table = Table::new(&[
        "model",
        "wire",
        "plan",
        "transfer(MB)",
        "latency(ms)",
        "cost($/1k)",
    ]);
    let mut changed = 0usize;
    for (name, model) in [
        ("vgg11", zoo::vgg11()),
        ("vgg16", zoo::vgg16()),
        ("wrn50x2", zoo::wrn50(2)),
        ("wrn50x4", zoo::wrn50(4)),
    ] {
        let f32_plan = DpPartitioner::default()
            .partition(&model, &f32_perf)
            .expect("f32 plan");
        let int8_plan = DpPartitioner::default()
            .partition(&model, &int8_perf)
            .expect("int8 plan");
        let f32_pred = predict_plan(&model, &f32_plan, &f32_perf).expect("predict");
        let int8_pred = predict_plan(&model, &int8_plan, &int8_perf).expect("predict");
        let f32_shape = plan_shape(&f32_plan);
        let int8_shape = plan_shape(&int8_plan);
        if f32_shape != int8_shape {
            changed += 1;
        }
        for (wire, plan, pred, perf) in [
            ("f32", &f32_plan, &f32_pred, &f32_perf),
            ("int8", &int8_plan, &int8_pred, &int8_perf),
        ] {
            table.row(vec![
                name.to_string(),
                wire.to_string(),
                plan_shape(plan),
                format!("{:.2}", plan_wire_bytes(&model, plan, perf) as f64 / 1e6),
                format!("{:.0}", pred.latency_ms),
                format!("{:.3}", pred.usd * 1000.0),
            ]);
        }

        // The ~4x check on a fixed plan: the f32 plan's payloads, re-priced
        // on the int8 wire.
        let raw = plan_wire_bytes(&model, &f32_plan, &f32_perf);
        let quant = plan_wire_bytes(&model, &f32_plan, &int8_perf);
        if raw > 0 {
            println!(
                "{name}: f32 plan ships {:.2} MB raw, {:.2} MB quantized ({:.2}x reduction)",
                raw as f64 / 1e6,
                quant as f64 / 1e6,
                raw as f64 / quant as f64
            );
        }
    }
    println!();
    table.print();
    println!("\nplans that changed shape under int8 transfer costs: {changed}");
    assert!(changed > 0, "int8 wire must reshape at least one DP plan");
}
