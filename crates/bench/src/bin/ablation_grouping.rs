//! Ablation: coarse-grained layer grouping (§III-C) vs layer-wise
//! parallelization.
//!
//! The paper argues grouping is essential under serverless bandwidth: it
//! trades a little redundant halo compute for far fewer tensor transfers.
//! This ablation runs the DP with grouping disabled (`max_group_len = 1`,
//! every layer its own fork-join round) and with full grouping, on Lambda
//! and KNIX.

use gillis_bench::Table;
use gillis_core::{DpPartitioner, ForkJoinRuntime, PartitionerConfig};
use gillis_faas::PlatformProfile;
use gillis_model::zoo;
use gillis_perf::PerfModel;

fn main() {
    println!("Ablation: coarse-grained grouping vs layer-wise parallelization\n");
    for platform in [PlatformProfile::aws_lambda(), PlatformProfile::knix()] {
        println!("{}:", platform.kind.label());
        let perf = PerfModel::analytic(&platform);
        let mut table = Table::new(&[
            "model",
            "grouped(ms)",
            "layer-wise(ms)",
            "grouping gain",
            "groups",
            "rounds layer-wise",
        ]);
        for model in [zoo::vgg16(), zoo::wrn50(3), zoo::resnet50()] {
            let grouped_plan = DpPartitioner::new(PartitionerConfig::default())
                .partition(&model, &perf)
                .expect("grouped plan");
            let layerwise_plan = DpPartitioner::new(PartitionerConfig {
                max_group_len: Some(1),
                ..PartitionerConfig::default()
            })
            .partition(&model, &perf)
            .expect("layer-wise plan");
            let grouped = ForkJoinRuntime::new(&model, &grouped_plan, platform.clone())
                .expect("runtime")
                .mean_latency_ms(50, 3);
            let layerwise = ForkJoinRuntime::new(&model, &layerwise_plan, platform.clone())
                .expect("runtime")
                .mean_latency_ms(50, 3);
            table.row(vec![
                model.name().to_string(),
                format!("{grouped:.0}"),
                format!("{layerwise:.0}"),
                format!("{:.2}x", layerwise / grouped),
                format!("{}", grouped_plan.groups().len()),
                format!("{}", layerwise_plan.groups().len()),
            ]);
        }
        table.print();
        println!();
    }
    println!("expectation: grouping pays most on Lambda (expensive transfers); even");
    println!("with optimal per-layer decisions, fewer fork-join rounds win.");
}
