//! Fig 13 reproduction: SLO-aware serving — Gillis (RL) vs Bayesian
//! optimization vs brute force, on AWS Lambda.
//!
//! Each algorithm searches for the cost-minimal plan meeting a mean-latency
//! SLO; the found plan then serves the paper's workload (100 clients x 1000
//! queries) and we report the measured mean latency and billed cost. Paper
//! anchors: Gillis always meets the SLO with up to 1.8x (VGG) / 1.5x (WRN)
//! cost savings over BO, which sometimes *misses* SLOs; on VGG-11 Gillis
//! matches the brute-force optimum.

use gillis_bench::Table;
use gillis_bo::{brute_force, BayesOpt, BoConfig};
use gillis_core::{DpPartitioner, ExecutionPlan, ForkJoinRuntime};
use gillis_faas::workload::ClosedLoop;
use gillis_faas::{Micros, PlatformProfile};
use gillis_model::LinearModel;
use gillis_perf::PerfModel;
use gillis_rl::{slo_aware_partition, SloAwareConfig};

struct Measured {
    latency_ms: f64,
    billed_ms: u64,
    met: bool,
}

fn serve(
    model: &LinearModel,
    plan: &ExecutionPlan,
    platform: &PlatformProfile,
    t_max: f64,
    clients: usize,
    queries: usize,
) -> Measured {
    let rt = ForkJoinRuntime::new(model, plan, platform.clone()).expect("plan is servable");
    let report = rt
        .serve_workload(
            ClosedLoop::new(clients, queries, Micros::ZERO).expect("workload"),
            13,
        )
        .expect("workload serving");
    let latency_ms = report.latency.mean();
    Measured {
        latency_ms,
        billed_ms: report.billing.billed_ms_total() / queries as u64,
        met: latency_ms <= t_max,
    }
}

fn fmt(m: &Measured) -> (String, String) {
    (
        format!("{:.0}{}", m.latency_ms, if m.met { "" } else { " (!)" }),
        format!("{}", m.billed_ms),
    )
}

fn main() {
    // The full paper workload is 100 clients x 1000 queries; pass `--quick`
    // for a reduced run.
    let quick = std::env::args().any(|a| a == "--quick");
    let (clients, queries, episodes, bo_iters) = if quick {
        (20, 100, 200, 20)
    } else {
        (100, 1000, 400, 50)
    };
    println!("Fig 13: SLO-aware serving — Gillis(SA) vs BO vs BF on Lambda");
    println!(
        "({clients} clients x {queries} queries; per-query billed cost; '(!)' = SLO missed)\n"
    );

    let platform = PlatformProfile::aws_lambda();
    let perf = PerfModel::profiled(&platform, 99);

    let cases: Vec<(LinearModel, bool)> = vec![
        (gillis_model::zoo::vgg11(), true), // brute force only on VGG-11
        (gillis_model::zoo::vgg16(), false),
        (gillis_model::zoo::wrn50(4), false),
        (gillis_model::zoo::wrn50(5), false),
    ];

    let mut table = Table::new(&[
        "model",
        "T_max(ms)",
        "SA lat",
        "SA cost",
        "BO lat",
        "BO cost",
        "BF lat",
        "BF cost",
    ]);
    for (model, run_bf) in &cases {
        // SLO pair per model: restrictive (just above the latency-optimal
        // plan's latency) and loose (2.5x that).
        let lo_plan = DpPartitioner::default()
            .partition(model, &perf)
            .expect("latency-optimal plan");
        let lo_latency = gillis_core::predict_plan(model, &lo_plan, &perf)
            .expect("prediction")
            .latency_ms;
        for (tag, t_max) in [("tight", lo_latency * 1.25), ("loose", lo_latency * 2.5)] {
            let _ = tag;
            // Gillis SLO-aware (RL). Best of 3 runs, as in the paper.
            let sa = (0..3)
                .filter_map(|seed| {
                    slo_aware_partition(
                        model,
                        &perf,
                        &SloAwareConfig {
                            t_max_ms: t_max,
                            episodes,
                            seed,
                            ..SloAwareConfig::default()
                        },
                    )
                    .ok()
                })
                .min_by_key(|r| r.predicted.billed_ms);
            // Bayesian optimization. Best of 3 runs.
            let bo = (0..3)
                .filter_map(|seed| {
                    BayesOpt::new(BoConfig {
                        t_max_ms: t_max,
                        iterations: bo_iters,
                        seed,
                        ..BoConfig::default()
                    })
                    .search(model, &perf)
                    .ok()
                })
                .min_by(|a, b| {
                    // Prefer SLO-meeting results, then cheaper ones.
                    (b.meets_slo, std::cmp::Reverse(b.predicted.billed_ms))
                        .partial_cmp(&(a.meets_slo, std::cmp::Reverse(a.predicted.billed_ms)))
                        .expect("comparable")
                });

            let (sa_lat, sa_cost) = match &sa {
                Some(r) => {
                    let m = serve(model, &r.plan, &platform, t_max, clients, queries);
                    fmt(&m)
                }
                None => ("fail".into(), "-".into()),
            };
            let (bo_lat, bo_cost) = match &bo {
                Some(r) => {
                    let m = serve(model, &r.plan, &platform, t_max, clients, queries);
                    fmt(&m)
                }
                None => ("fail".into(), "-".into()),
            };
            let (bf_lat, bf_cost) = if *run_bf {
                match brute_force(model, &perf, t_max, &[2, 4, 8, 16], 5_000_000) {
                    Ok(r) => {
                        let m = serve(model, &r.plan, &platform, t_max, clients, queries);
                        let (lat, mut cost) = fmt(&m);
                        if r.truncated {
                            // Node cap hit: the result is an upper bound,
                            // not the exact optimum (paper: BF on VGG-11
                            // "takes over 24 hours").
                            cost.push('~');
                        }
                        (lat, cost)
                    }
                    Err(_) => ("fail".into(), "-".into()),
                }
            } else {
                ("-".into(), "-".into())
            };
            table.row(vec![
                model.name().to_string(),
                format!("{t_max:.0}"),
                sa_lat,
                sa_cost,
                bo_lat,
                bo_cost,
                bf_lat,
                bf_cost,
            ]);
        }
    }
    table.print();
    println!("\npaper anchors: SA always meets the SLO, costs <= BO (up to 1.8x cheaper),");
    println!("and matches BF on VGG-11; BO misses tight SLOs on complex models.");
}
