//! Fig 9 reproduction: Gillis latency-optimal vs Default serving of CNN
//! models on AWS Lambda and Google Cloud Functions.
//!
//! Paper anchors (Lambda): 1.6x / 1.9x / 2.0x speedup for VGG-11/16/19;
//! 1.2x -> 1.26x going from WRN-34-3 to WRN-34-4; 1.4x for WRN-50-3.
//! GCF speedups are smaller (more resources per instance), e.g. 1.2x for
//! WRN-50-3.

use gillis_bench::{measure_latency_optimal, ms, speedup, Table};
use gillis_faas::PlatformProfile;
use gillis_model::zoo;

fn main() {
    println!("Fig 9: Gillis (latency-optimal) vs Default on Lambda and GCF");
    println!("(100 warm queries per point)\n");
    let models = [
        zoo::vgg11(),
        zoo::vgg16(),
        zoo::vgg19(),
        zoo::wrn34(3),
        zoo::wrn34(4),
        zoo::wrn50(3),
    ];
    for platform in [PlatformProfile::aws_lambda(), PlatformProfile::gcf()] {
        println!("{}:", platform.kind.label());
        let mut table = Table::new(&["model", "default(ms)", "gillis(ms)", "speedup"]);
        for model in &models {
            let m = measure_latency_optimal(model, &platform, 100, 11);
            table.row(vec![
                model.name().to_string(),
                m.default_ms.map(ms).unwrap_or_else(|| "OOM".into()),
                ms(m.gillis_ms),
                speedup(m.speedup()),
            ]);
        }
        table.print();
        println!();
    }
    println!("paper anchors: Lambda 1.6/1.9/2.0x on VGG-11/16/19; WRN speedups 1.2-1.4x;");
    println!("GCF speedups smaller than Lambda's.");
}
