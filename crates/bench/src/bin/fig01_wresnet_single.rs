//! Fig 1 reproduction: serving WResNet on a single function.
//!
//! The paper deploys WRN-50-k (k = 1..5) on AWS Lambda and Google Cloud
//! Functions with maximum instance memory and measures inference latency:
//! latency grows roughly quadratically with the widening scalar, requests
//! exceed 2000 ms at k = 3 (Lambda) / k = 4 (GCF), and wider models OOM.

use gillis_bench::{ms, Table};
use gillis_core::{ExecutionPlan, ForkJoinRuntime};
use gillis_faas::PlatformProfile;
use gillis_model::zoo;

fn main() {
    println!("Fig 1: WResNet-50-k inference latency on a single serverless function");
    println!("(100 warm queries per point, as in the paper)\n");
    let mut table = Table::new(&["widening", "weights(MB)", "Lambda(ms)", "GCF(ms)"]);
    let platforms = [PlatformProfile::aws_lambda(), PlatformProfile::gcf()];
    for k in 1..=5usize {
        let model = zoo::wrn50(k);
        let mut cells = vec![
            format!("{k}"),
            format!("{:.0}", model.weight_bytes() as f64 / 1e6),
        ];
        for platform in &platforms {
            if model.weight_bytes() > platform.model_memory_budget {
                cells.push("OOM".into());
                continue;
            }
            let plan = ExecutionPlan::single_function(&model);
            let rt = ForkJoinRuntime::new(&model, &plan, platform.clone())
                .expect("single-function plan");
            cells.push(ms(rt.mean_latency_ms(100, 42 + k as u64)));
        }
        table.row(cells);
    }
    table.print();
    println!("\npaper anchors: >2000 ms at k=3 (Lambda) and k=4 (GCF); OOM beyond.");
}
