//! Fig 11 reproduction: models too large for a single function — Gillis vs
//! the Pipeline baseline on AWS Lambda.
//!
//! Pipeline stages partitions in S3 and streams them into one function per
//! query; the paper shows weight loading dominates its latency and Gillis is
//! 9.1x / 9.2x / 8.3x faster end-to-end for WRN-34-5 / WRN-50-4 / WRN-50-5,
//! with Gillis's parallel compute ~2x faster than Pipeline's sequential
//! compute.

use gillis_bench::{measure_latency_optimal, ms, Table};
use gillis_core::baselines::pipeline_serving;
use gillis_faas::PlatformProfile;
use gillis_model::zoo;

fn main() {
    println!("Fig 11: Gillis vs Pipeline for models exceeding one function (Lambda)\n");
    let platform = PlatformProfile::aws_lambda();
    let mut table = Table::new(&[
        "model",
        "pipeline total(ms)",
        "pipeline load(ms)",
        "pipeline comp(ms)",
        "gillis(ms)",
        "speedup",
    ]);
    for model in [zoo::wrn34(5), zoo::wrn50(4), zoo::wrn50(5)] {
        assert!(model.weight_bytes() > platform.model_memory_budget);
        let pipe = pipeline_serving(&model, &platform, 5).expect("pipeline stages fit");
        let gillis = measure_latency_optimal(&model, &platform, 100, 31);
        table.row(vec![
            model.name().to_string(),
            ms(pipe.total_ms),
            ms(pipe.load_ms),
            ms(pipe.compute_ms),
            ms(gillis.gillis_ms),
            format!("{:.1}x", pipe.total_ms / gillis.gillis_ms),
        ]);
    }
    table.print();
    println!("\npaper anchors: 9.1x/9.2x/8.3x end-to-end; Pipeline dominated by loading;");
    println!("Gillis parallel compute ~2x faster than Pipeline's sequential compute.");
}
