//! Machine-readable perf baseline: runs the core tensor, partitioning, and
//! serving bench cases and writes `BENCH_tensor.json` / `BENCH_planner.json`
//! / `BENCH_serving.json` at the repo root (or the directory given as the
//! first CLI argument), so the perf trajectory is tracked across PRs.
//!
//! Each entry records the current median ns/iter alongside the seed-kernel
//! baseline (naive 6-loop conv, hand-rolled matmuls, sequential uncached DP)
//! captured on the same reference machine, giving a stable before/after
//! speedup column.

use gillis_bench::report::{measure, render_json, ReportEntry};
use gillis_core::{
    analyze_group, execute_plan_tensors_with_threads, DpPartitioner, EvalCache, ExecutionPlan,
    ForkJoinRuntime, PartDim, PartitionOption, PartitionerConfig, Placement, PlannedGroup,
};
use gillis_faas::PlatformProfile;
use gillis_model::weights::init_weights;
use gillis_model::zoo;
use gillis_perf::PerfModel;
use gillis_rl::{slo_aware_partition, SloAwareConfig};
use gillis_tensor::ops::{
    batch_norm, conv2d, dense, depthwise_conv2d, lstm_cell, max_pool2d, BatchNormParams,
    Conv2dParams, LstmParams, LstmState, Pool2dParams,
};
use gillis_tensor::{Shape, Tensor};

/// Seed-kernel ns/iter (naive loops, sequential uncached DP) measured with
/// this same harness on the reference machine at the pre-optimization
/// commit. Keyed by `op/shape` below; used to populate the
/// `baseline_ns_per_iter` / `speedup` columns.
const SEED_BASELINE_NS: &[(&str, f64)] = &[
    ("conv2d/in=16x32x32 w=16x16x3x3 s1 p1", 6_155_851.3),
    (
        "conv2d/in=256x56x56 w=256x256x3x3 s1 p1 (VGG-16 conv3_2)",
        4_650_743_263.0,
    ),
    ("depthwise_conv2d/in=64x56x56 w=64x3x3 s1 p1", 4_815_878.8),
    ("dense/4096->1000", 2_966_642.4),
    ("lstm_cell/hidden=256", 324_074.3),
    ("max_pool2d/in=64x56x56 k2 s2", 437_961.4),
    ("batch_norm/in=256x56x56", 1_026_948.9),
    ("dp_partition/vgg11", 2_821_061.7),
    ("dp_partition/vgg16", 6_680_037.3),
    ("dp_partition/wrn50x4", 8_466_318.8),
    ("dp_partition/wrn50x5", 8_607_641.6),
    ("analyze_group/vgg16[0..4] height x8", 1_494.8),
];

fn baseline_for(op: &str, shape: &str) -> Option<f64> {
    let key = format!("{op}/{shape}");
    SEED_BASELINE_NS
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, ns)| *ns)
}

fn entry<O, F: FnMut() -> O>(op: &str, shape: &str, samples: usize, routine: F) -> ReportEntry {
    entry_flops(op, shape, samples, None, routine)
}

/// [`entry`] for GEMM-backed kernels with a closed-form FLOP count, feeding
/// the report's achieved-GFLOP/s column.
fn entry_flops<O, F: FnMut() -> O>(
    op: &str,
    shape: &str,
    samples: usize,
    flops: Option<u64>,
    routine: F,
) -> ReportEntry {
    let (ns_per_iter, taken) = measure(samples, routine);
    let e = ReportEntry {
        op: op.to_string(),
        shape: shape.to_string(),
        ns_per_iter,
        samples: taken,
        baseline_ns_per_iter: baseline_for(op, shape),
        flops,
    };
    let rate = match e.gflops() {
        Some(g) => format!("  {g:.1} GFLOP/s"),
        None => String::new(),
    };
    match e.speedup() {
        Some(s) => {
            println!("{op:<16} {shape:<40} {ns_per_iter:>14.1} ns/iter  ({s:.2}x vs seed){rate}")
        }
        None => println!("{op:<16} {shape:<40} {ns_per_iter:>14.1} ns/iter{rate}"),
    }
    e
}

/// FLOPs of a dense convolution: 2 MACs per filter tap per output element.
fn conv_flops(out_c: u64, in_c: u64, k: u64, out_h: u64, out_w: u64) -> u64 {
    2 * out_c * in_c * k * k * out_h * out_w
}

fn tensor_suite() -> Vec<ReportEntry> {
    let mut entries = Vec::new();

    // Small conv (matches the criterion bench case).
    let input = Tensor::from_fn(Shape::new(vec![16, 32, 32]), |i| (i % 7) as f32 * 0.1);
    let weight = Tensor::from_fn(Shape::new(vec![16, 16, 3, 3]), |i| (i % 5) as f32 * 0.01);
    let bias = Tensor::zeros(Shape::new(vec![16]));
    let params = Conv2dParams::square(3, 1, 1);
    entries.push(entry_flops(
        "conv2d",
        "in=16x32x32 w=16x16x3x3 s1 p1",
        10,
        Some(conv_flops(16, 16, 3, 32, 32)),
        || conv2d(&input, &weight, Some(&bias), &params).unwrap(),
    ));

    // VGG-16-scale conv: conv3_2 (256 channels at 56x56, 3x3), ~3.7 GFLOP.
    let input = Tensor::from_fn(Shape::new(vec![256, 56, 56]), |i| (i % 7) as f32 * 0.1);
    let weight = Tensor::from_fn(Shape::new(vec![256, 256, 3, 3]), |i| (i % 5) as f32 * 0.01);
    let bias = Tensor::zeros(Shape::new(vec![256]));
    entries.push(entry_flops(
        "conv2d",
        "in=256x56x56 w=256x256x3x3 s1 p1 (VGG-16 conv3_2)",
        3,
        Some(conv_flops(256, 256, 3, 56, 56)),
        || conv2d(&input, &weight, Some(&bias), &params).unwrap(),
    ));

    // Depthwise conv (MobileNet-style block).
    let input = Tensor::from_fn(Shape::new(vec![64, 56, 56]), |i| (i % 7) as f32 * 0.1);
    let weight = Tensor::from_fn(Shape::new(vec![64, 3, 3]), |i| (i % 5) as f32 * 0.01);
    entries.push(entry(
        "depthwise_conv2d",
        "in=64x56x56 w=64x3x3 s1 p1",
        10,
        || depthwise_conv2d(&input, &weight, None, &params).unwrap(),
    ));

    // Dense (VGG classifier head scale).
    let x = Tensor::from_fn(Shape::new(vec![4096]), |i| (i % 13) as f32);
    let w = Tensor::from_fn(Shape::new(vec![1000, 4096]), |i| (i % 11) as f32 * 1e-3);
    let b = Tensor::zeros(Shape::new(vec![1000]));
    entries.push(entry_flops(
        "dense",
        "4096->1000",
        10,
        Some(2 * 1000 * 4096),
        || dense(&x, &w, Some(&b)).unwrap(),
    ));

    // LSTM cell (paper's RNN workload scale).
    let hidden = 256;
    let lstm = LstmParams {
        w_ih: Tensor::from_fn(Shape::new(vec![4 * hidden, hidden]), |i| {
            (i % 7) as f32 * 1e-3
        }),
        w_hh: Tensor::from_fn(Shape::new(vec![4 * hidden, hidden]), |i| {
            (i % 5) as f32 * 1e-3
        }),
        bias: Tensor::zeros(Shape::new(vec![4 * hidden])),
    };
    let x = Tensor::from_fn(Shape::new(vec![hidden]), |i| (i % 3) as f32 * 0.1);
    let state = LstmState::zeros(hidden);
    // Two 4H x H matrix-vector products dominate the cell.
    let lstm_flops = 2 * 2 * (4 * hidden as u64) * hidden as u64;
    entries.push(entry_flops(
        "lstm_cell",
        "hidden=256",
        10,
        Some(lstm_flops),
        || lstm_cell(&x, &state, &lstm).unwrap(),
    ));

    // Pooling + batch norm hot loops.
    let input = Tensor::from_fn(Shape::new(vec![64, 56, 56]), |i| i as f32);
    let pool = Pool2dParams::square(2, 2, 0);
    entries.push(entry("max_pool2d", "in=64x56x56 k2 s2", 10, || {
        max_pool2d(&input, &pool).unwrap()
    }));
    let input = Tensor::from_fn(Shape::new(vec![256, 56, 56]), |i| (i % 9) as f32);
    let bn = BatchNormParams::identity(256);
    entries.push(entry("batch_norm", "in=256x56x56", 10, || {
        batch_norm(&input, &bn).unwrap()
    }));

    entries
}

fn planner_suite() -> Vec<ReportEntry> {
    let perf = PerfModel::analytic(&PlatformProfile::aws_lambda());
    let mut entries = Vec::new();

    for (name, model) in [
        ("vgg11", zoo::vgg11()),
        ("vgg16", zoo::vgg16()),
        ("wrn50x4", zoo::wrn50(4)),
        ("wrn50x5", zoo::wrn50(5)),
    ] {
        entries.push(entry("dp_partition", name, 5, || {
            DpPartitioner::new(PartitionerConfig::default())
                .partition(&model, &perf)
                .unwrap()
        }));
    }

    // Warm-cache planner: one EvalCache shared across every iteration, as
    // the RL trainer and BO search use it. First iteration pays the misses;
    // the rest answer each DP cell from memoized (group, budget) choices.
    let model = zoo::wrn50(5);
    let cache = std::sync::Arc::new(EvalCache::new());
    entries.push(entry("dp_partition_cached", "wrn50x5 warm", 5, || {
        DpPartitioner::new(PartitionerConfig::default())
            .with_cache(std::sync::Arc::clone(&cache))
            .partition(&model, &perf)
            .unwrap()
    }));

    let vgg = zoo::vgg16();
    entries.push(entry("analyze_group", "vgg16[0..4] height x8", 10, || {
        analyze_group(
            &vgg,
            0,
            4,
            PartitionOption::Split {
                dim: PartDim::Height,
                parts: 8,
            },
        )
        .unwrap()
    }));

    entries
}

/// A hand-built aggressively parallel plan for `tiny_vgg`: spatial layers
/// split 4-way, channel-splittable layers 2-way — every group has multiple
/// worker partitions, so the pooled `execute_plan_tensors` path actually
/// fans out (the DP plan for a model this small is all-`Single`).
fn forced_parallel_plan(model: &gillis_model::LinearModel) -> ExecutionPlan {
    let mut groups = Vec::new();
    for (i, layer) in model.layers().iter().enumerate() {
        let option = if layer.class.supports_spatial() && layer.out_shape.dims()[1] >= 4 {
            PartitionOption::Split {
                dim: PartDim::Height,
                parts: 4,
            }
        } else if layer.class.channel_splittable() && layer.out_shape.dims()[0] >= 2 {
            PartitionOption::Split {
                dim: PartDim::Channel,
                parts: 2,
            }
        } else {
            PartitionOption::Single
        };
        groups.push(PlannedGroup {
            start: i,
            end: i + 1,
            option,
            placement: if option == PartitionOption::Single {
                Placement::Master
            } else {
                Placement::Workers
            },
        });
    }
    ExecutionPlan::new(groups)
}

fn serving_suite() -> Vec<ReportEntry> {
    let width = gillis_pool::gillis_threads();
    let mut entries = Vec::new();

    // Real-tensor plan execution, sequential vs pooled, on a plan whose
    // every group fans out to multiple worker partitions.
    let tiny = zoo::tiny_vgg();
    let weights = init_weights(tiny.graph(), 42).unwrap();
    let input = gillis_tensor::Tensor::from_fn(tiny.input_shape().clone(), |i| {
        ((i % 17) as f32 - 8.0) / 8.0
    });
    let plan = forced_parallel_plan(&tiny);
    entries.push(entry(
        "execute_plan",
        "tiny-vgg forced 4-way, sequential",
        10,
        || execute_plan_tensors_with_threads(&tiny, &plan, &weights, &input, 1).unwrap(),
    ));
    entries.push(entry(
        "execute_plan",
        &format!("tiny-vgg forced 4-way, pooled x{width}"),
        10,
        || execute_plan_tensors_with_threads(&tiny, &plan, &weights, &input, width).unwrap(),
    ));

    // Monte-Carlo latency simulation: independent seeded replications.
    let platform = PlatformProfile::aws_lambda();
    let perf = PerfModel::analytic(&platform);
    let vgg = zoo::vgg11();
    let dp_plan = DpPartitioner::default().partition(&vgg, &perf).unwrap();
    let runtime = ForkJoinRuntime::new(&vgg, &dp_plan, platform).unwrap();
    entries.push(entry("mean_latency", "vgg11 n=500, sequential", 10, || {
        runtime.mean_latency_ms_with_threads(500, 7, 1)
    }));
    entries.push(entry(
        "mean_latency",
        &format!("vgg11 n=500, pooled x{width}"),
        10,
        || runtime.mean_latency_ms_with_threads(500, 7, width),
    ));

    // RL training throughput: batch episode rollouts on the pool.
    let tiny = zoo::tiny_vgg();
    for (label, threads) in [("sequential", 1), ("pooled", width)] {
        let shape = if threads == 1 {
            format!("tiny-vgg 48 episodes, {label}")
        } else {
            format!("tiny-vgg 48 episodes, {label} x{width}")
        };
        entries.push(entry("slo_train", &shape, 3, || {
            slo_aware_partition(
                &tiny,
                &perf,
                &SloAwareConfig {
                    t_max_ms: 500.0,
                    episodes: 48,
                    batch: 8,
                    seed: 7,
                    threads: Some(threads),
                    ..SloAwareConfig::default()
                },
            )
            .unwrap()
        }));
    }

    entries
}

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let threads = gillis_pool::gillis_threads();

    println!("== tensor suite ==");
    let tensor = tensor_suite();
    println!("== planner suite ==");
    let planner = planner_suite();
    println!("== serving suite ==");
    let serving = serving_suite();

    let tensor_path = format!("{out_dir}/BENCH_tensor.json");
    let planner_path = format!("{out_dir}/BENCH_planner.json");
    let serving_path = format!("{out_dir}/BENCH_serving.json");
    std::fs::write(&tensor_path, render_json("tensor", threads, &tensor))
        .expect("write BENCH_tensor.json");
    std::fs::write(&planner_path, render_json("planner", threads, &planner))
        .expect("write BENCH_planner.json");
    std::fs::write(&serving_path, render_json("serving", threads, &serving))
        .expect("write BENCH_serving.json");
    println!("wrote {tensor_path}, {planner_path}, and {serving_path}");
}
