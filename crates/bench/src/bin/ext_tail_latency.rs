//! Extension (paper §VI): tail-latency SLOs.
//!
//! The paper leaves p99 SLOs as future work, noting the RL optimization
//! applies "as long as the tail latency can be accurately predicted". This
//! extension adds a Monte-Carlo tail predictor and trains the SLO-aware
//! policy against it: a mean-SLO plan can violate the same threshold at p99,
//! while the tail-aware plan meets it (at somewhat higher cost).

use gillis_bench::Table;
use gillis_core::ForkJoinRuntime;
use gillis_faas::workload::ClosedLoop;
use gillis_faas::{Micros, PlatformProfile};
use gillis_model::zoo;
use gillis_perf::PerfModel;
use gillis_rl::{slo_aware_partition, SloAwareConfig};

fn main() {
    println!("Extension: tail-latency (p99) SLOs — mean-aware vs tail-aware plans\n");
    let platform = PlatformProfile::aws_lambda();
    let perf = PerfModel::profiled(&platform, 55);
    let model = zoo::vgg11();
    let t_max = 400.0;
    println!("model {}, threshold {t_max} ms\n", model.name());

    let base = SloAwareConfig {
        t_max_ms: t_max,
        episodes: 250,
        seed: 21,
        ..SloAwareConfig::default()
    };
    let mean_aware = slo_aware_partition(&model, &perf, &base).expect("mean-SLO plan");
    let tail_aware = slo_aware_partition(
        &model,
        &perf,
        &SloAwareConfig {
            tail_quantile: Some(0.99),
            tail_samples: 300,
            ..base
        },
    )
    .expect("tail-SLO plan");

    let mut table = Table::new(&[
        "policy",
        "mean(ms)",
        "p99(ms)",
        "p99 <= T_max",
        "cost(ms/query)",
    ]);
    for (name, result) in [("mean-aware", &mean_aware), ("tail-aware", &tail_aware)] {
        let rt = ForkJoinRuntime::new(&model, &result.plan, platform.clone()).expect("runtime");
        let report = rt
            .serve_workload(
                ClosedLoop::new(50, 2000, Micros::ZERO).expect("workload"),
                8,
            )
            .expect("serving");
        let p99 = report.latency.percentile(99.0);
        table.row(vec![
            name.to_string(),
            format!("{:.0}", report.latency.mean()),
            format!("{p99:.0}"),
            if p99 <= t_max { "yes" } else { "NO" }.to_string(),
            format!("{}", report.billing.billed_ms_total() / 2000),
        ]);
    }
    table.print();
    println!("\nexpectation: both meet the threshold on the mean; only the tail-aware");
    println!("plan guarantees it at p99, paying a little more per query.");
}
