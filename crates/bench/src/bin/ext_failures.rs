//! Extension: resilience policies under injected worker faults.
//!
//! Serverless invocations fail, crash mid-compute, straggle, and corrupt
//! transfers. The fork-join master's [`ResiliencePolicy`] decides what that
//! costs: this experiment sweeps the fault rate (with a fixed straggler
//! population) and compares three policies on the same deterministic chaos
//! seed —
//!
//! - **naive-retry**: immediate re-invocation, no backoff, no timeout, no
//!   hedging (the pre-resilience behaviour, minus its "final attempt always
//!   succeeds" fiction);
//! - **backoff**: exponential backoff with jitter and per-attempt timeouts
//!   derived from the predicted attempt p95;
//! - **backoff+hedge**: backoff plus a speculative duplicate launched when
//!   a worker overruns its predicted p95 — first result wins.
//!
//! Writes `BENCH_resilience.json` (repo root, or the directory given as the
//! first argument) with mean/p99/retries/hedges/degraded per cell, the
//! artifact the CI chaos job uploads.

use gillis_bench::{bench_seed, Table};
use gillis_core::{
    ChaosConfig, DpPartitioner, ForkJoinRuntime, ResilienceCounters, ResiliencePolicy,
    SimulationReport,
};
use gillis_faas::PlatformProfile;
use gillis_model::zoo;
use gillis_perf::PerfModel;

const QUERIES: usize = 300;

struct Cell {
    policy: &'static str,
    fault_rate: f64,
    mean_ms: f64,
    p99_ms: f64,
    resilience: ResilienceCounters,
}

fn chaos(rate: f64, seed: u64) -> ChaosConfig {
    // Fault mix: mostly clean invocation failures, some mid-compute
    // crashes, a little transfer corruption — plus a fixed 15% straggler
    // population (8x slowdown) that hedging exists to cover.
    ChaosConfig {
        seed,
        invoke_failure_rate: 0.5 * rate,
        crash_rate: 0.3 * rate,
        corrupt_rate: 0.2 * rate,
        straggler_rate: 0.15,
        straggler_slowdown: 8.0,
        orchestrator_crash_rate: 0.0,
    }
}

fn json_report(seed: u64, cells: &[Cell]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"suite\": \"resilience\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"queries\": {QUERIES},\n"));
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let r = &c.resilience;
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"fault_rate\": {:.2}, \"mean_ms\": {:.2}, \"p99_ms\": {:.2}, \
             \"retries\": {}, \"hedges\": {}, \"hedge_wins\": {}, \"timeouts\": {}, \
             \"degraded_shards\": {}, \"ok\": {}, \"degraded\": {}, \"failed\": {}}}{}\n",
            c.policy,
            c.fault_rate,
            c.mean_ms,
            c.p99_ms,
            r.retries,
            r.hedges,
            r.hedge_wins,
            r.timeouts,
            r.degraded_shards,
            r.ok_queries,
            r.degraded_queries,
            r.failed_queries,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let seed = bench_seed(42);
    println!("Extension: resilience policies under injected faults (VGG-16, Lambda)\n");
    println!("chaos seed {seed}; 15% stragglers at 8x slowdown in every cell\n");
    let platform = PlatformProfile::aws_lambda();
    let perf = PerfModel::analytic(&platform);
    let model = zoo::vgg16();
    let plan = DpPartitioner::default()
        .partition(&model, &perf)
        .expect("plan");

    let policies: [(&str, ResiliencePolicy); 3] = [
        ("naive-retry", ResiliencePolicy::naive_retry()),
        ("backoff", ResiliencePolicy::backoff()),
        ("backoff+hedge", ResiliencePolicy::backoff_hedged()),
    ];

    let mut table = Table::new(&[
        "fault rate",
        "policy",
        "mean(ms)",
        "p99(ms)",
        "retries/q",
        "hedges (wins)",
        "degraded",
    ]);
    let mut cells = Vec::new();
    for rate in [0.0, 0.05, 0.10, 0.20] {
        for (name, policy) in &policies {
            let rt = ForkJoinRuntime::new(&model, &plan, platform.clone())
                .expect("runtime")
                .with_chaos(chaos(rate, seed))
                .expect("chaos config")
                .with_policy(*policy);
            let SimulationReport {
                latency,
                resilience,
            } = rt.simulate_many(QUERIES, seed);
            table.row(vec![
                format!("{:.0}%", rate * 100.0),
                (*name).into(),
                format!("{:.0}", latency.mean()),
                format!("{:.0}", latency.percentile(99.0)),
                format!("{:.2}", resilience.retries as f64 / QUERIES as f64),
                format!("{} ({})", resilience.hedges, resilience.hedge_wins),
                format!("{}", resilience.degraded_queries),
            ]);
            cells.push(Cell {
                policy: name,
                fault_rate: rate,
                mean_ms: latency.mean(),
                p99_ms: latency.percentile(99.0),
                resilience,
            });
        }
    }
    table.print();

    let path = format!("{out_dir}/BENCH_resilience.json");
    std::fs::write(&path, json_report(seed, &cells)).expect("write BENCH_resilience.json");
    println!("\nwrote {path}");

    // The headline claim: at >=5% faults (with stragglers), hedging beats
    // naive retry on tail latency.
    let p99 = |policy: &str, rate: f64| {
        cells
            .iter()
            .find(|c| c.policy == policy && c.fault_rate == rate)
            .map(|c| c.p99_ms)
            .expect("cell")
    };
    for rate in [0.05, 0.10, 0.20] {
        let naive = p99("naive-retry", rate);
        let hedged = p99("backoff+hedge", rate);
        println!(
            "fault rate {:.0}%: hedging cuts p99 {:.0} -> {:.0} ms ({:+.1}%)",
            rate * 100.0,
            naive,
            hedged,
            (hedged - naive) / naive * 100.0
        );
    }
    println!("\nexpectation: every query completes (degraded counts stay honest instead");
    println!("of a final attempt magically succeeding); backoff+hedge holds the lowest");
    println!("p99 once stragglers and faults appear.");
}
