//! Extension: serving under worker failures.
//!
//! Serverless invocations occasionally fail; the fork-join master retries
//! them. This experiment sweeps the per-invocation failure rate and reports
//! latency inflation, retry counts, and billed-cost overhead for a
//! latency-optimal plan.

use gillis_bench::Table;
use gillis_core::{DpPartitioner, ForkJoinRuntime};
use gillis_faas::workload::ClosedLoop;
use gillis_faas::{Micros, PlatformProfile};
use gillis_model::zoo;
use gillis_perf::PerfModel;

fn main() {
    println!("Extension: fork-join serving under injected worker failures (VGG-16, Lambda)\n");
    let base = PlatformProfile::aws_lambda();
    let perf = PerfModel::analytic(&base);
    let model = zoo::vgg16();
    let plan = DpPartitioner::default()
        .partition(&model, &perf)
        .expect("plan");

    let mut table = Table::new(&[
        "failure rate",
        "mean(ms)",
        "p99(ms)",
        "retries/query",
        "cost(ms/query)",
    ]);
    for rate in [0.0, 0.01, 0.05, 0.10, 0.20] {
        let mut platform = base.clone();
        platform.invocation_failure_rate = rate;
        let rt = ForkJoinRuntime::new(&model, &plan, platform).expect("runtime");
        let queries = 500;
        let report = rt
            .serve_workload(
                ClosedLoop::new(10, queries, Micros::ZERO).expect("workload"),
                3,
            )
            .expect("serving");
        table.row(vec![
            format!("{:.0}%", rate * 100.0),
            format!("{:.0}", report.latency.mean()),
            format!("{:.0}", report.latency.percentile(99.0)),
            format!("{:.2}", report.retries as f64 / queries as f64),
            format!("{}", report.billing.billed_ms_total() / queries as u64),
        ]);
    }
    table.print();
    println!("\nexpectation: graceful degradation — every query completes; latency and");
    println!("cost grow smoothly with the failure rate (retries are per-worker, not");
    println!("per-query restarts).");
}
