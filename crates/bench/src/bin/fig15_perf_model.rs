//! Fig 15 reproduction: accuracy of the performance model on Lambda.
//!
//! Three panels: (top left) predicted vs actual single-function model
//! runtimes; (top right) predicted vs actual max delay of n concurrent 1 MB
//! worker exchanges; (bottom) predicted vs actual end-to-end latency of the
//! latency-optimal plans. Paper anchors: runtime errors within 3%/9%/1% for
//! VGG-19 / WRN-50-3 / RNN-3; average comm-delay error 6.3%; end-to-end
//! errors within 6%.

use gillis_bench::Table;
use gillis_core::{predict_plan, DpPartitioner, ExecutionPlan, ForkJoinRuntime};
use gillis_faas::PlatformProfile;
use gillis_model::zoo;
use gillis_perf::PerfModel;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let platform = PlatformProfile::aws_lambda();
    let perf = PerfModel::profiled(&platform, 2024);
    println!("Fig 15: performance-model prediction accuracy (Lambda)\n");

    // --- Model runtime (single function) ---
    println!("model runtime:");
    let mut table = Table::new(&["model", "actual(ms)", "predicted(ms)", "error"]);
    for model in [zoo::vgg19(), zoo::wrn50(3), zoo::rnn(3)] {
        let plan = ExecutionPlan::single_function(&model);
        let rt = ForkJoinRuntime::new(&model, &plan, platform.clone()).expect("plan");
        let actual = rt.mean_latency_ms(100, 3);
        let predicted = perf.layer.predict_model_ms(&model);
        table.row(vec![
            model.name().to_string(),
            format!("{actual:.0}"),
            format!("{predicted:.0}"),
            format!("{:.1}%", (predicted - actual).abs() / actual * 100.0),
        ]);
    }
    table.print();

    // --- Communication delay: max of n concurrent 1 MB exchanges ---
    println!("\ncommunication delay (1 MB per worker):");
    let mut table = Table::new(&["workers", "actual(ms)", "predicted(ms)", "error"]);
    let mut rng = StdRng::seed_from_u64(5);
    let bytes = 1_000_000u64;
    let mut total_err = 0.0;
    let ns = [1usize, 2, 4, 8, 16];
    for &n in &ns {
        let mc: f64 = (0..3000)
            .map(|_| {
                let jitter = (0..n)
                    .map(|_| platform.invoke_latency_ms.sample(&mut rng))
                    .fold(f64::NEG_INFINITY, f64::max);
                jitter + platform.transfer_ms(bytes) * n as f64
            })
            .sum::<f64>()
            / 3000.0;
        let pred = perf.comm.group_transfer_ms(bytes, n);
        let err = (pred - mc).abs() / mc * 100.0;
        total_err += err;
        table.row(vec![
            format!("{n}"),
            format!("{mc:.1}"),
            format!("{pred:.1}"),
            format!("{err:.1}%"),
        ]);
    }
    table.print();
    println!(
        "average error: {:.1}% (paper: 6.3%)",
        total_err / ns.len() as f64
    );

    // --- End-to-end latency of latency-optimal plans ---
    println!("\nend-to-end latency (latency-optimal plans):");
    let mut table = Table::new(&["model", "actual(ms)", "predicted(ms)", "error"]);
    for model in [zoo::vgg16(), zoo::vgg19(), zoo::wrn50(3), zoo::rnn(6)] {
        let plan = DpPartitioner::default()
            .partition(&model, &perf)
            .expect("plan");
        let rt = ForkJoinRuntime::new(&model, &plan, platform.clone()).expect("runtime");
        let actual = rt.mean_latency_ms(100, 17);
        let predicted = predict_plan(&model, &plan, &perf)
            .expect("prediction")
            .latency_ms;
        table.row(vec![
            model.name().to_string(),
            format!("{actual:.0}"),
            format!("{predicted:.0}"),
            format!("{:.1}%", (predicted - actual).abs() / actual * 100.0),
        ]);
    }
    table.print();
    println!("\npaper anchors: runtime <= 3-9% error; comm ~6.3%; end-to-end <= 6%.");
    let _ = rng.random::<u8>();
}
