//! Extension: correlated-outage resilience — retry budgets and brownout.
//!
//! Per-invocation chaos models independent faults; real serverless incidents
//! are *correlated*: a platform brownout or an AZ wobble pushes the failure
//! rate of every lane up for seconds at a time. Under naive retry policies
//! those episodes self-amplify — each admitted query launches several worker
//! invocations, which keeps masters busy longer, which backs up the queue,
//! which turns a partial outage into a full one.
//!
//! This experiment sweeps outage **severity × episode duration** (VGG-11,
//! Lambda, DP plan, deterministic Markov on/off episodes on the platform
//! fault domain) and compares two serving stacks on the same seed, arrival
//! process, chaos baseline, and admission policy:
//!
//! - **naive**: [`ResiliencePolicy::naive_retry`] — four immediate retries,
//!   no backoff, no budget, no degradation;
//! - **guarded**: backoff + hedging, an adaptive [`RetryBudgetPolicy`]
//!   (retries/hedges debit a token bucket refilled by successful first
//!   attempts), and a [`BrownoutPolicy`] degradation ladder (full →
//!   no-hedge → int8 wire → local-fallback → shed, hysteretic recovery).
//!
//! Both arms run behind the same [`OverloadPolicy::for_slo`] front door, so
//! *goodput* is honest: queries that completed (ok or degraded) within the
//! deadline. `--smoke` (CI) runs the severe long-episode cell plus a calm
//! cell and asserts the acceptance criteria: guarded retry amplification
//! stays ≤ 1.2x (the naive arm exceeds 2x), and guarded goodput is at least
//! 1.5x the naive arm's during severe episodes. A composed cell
//! (outage + overload + adaptive batching) checks the counters still add up.
//!
//! Writes `BENCH_outage.json` (repo root, or the directory given as the
//! first argument).

use gillis_bench::{bench_seed, Table};
use gillis_core::predict::predict_plan;
use gillis_core::{
    replication_seed, BatchPolicy, BreakerPolicy, BrownoutPolicy, ChaosConfig, DpPartitioner,
    ForkJoinRuntime, OutageConfig, OverloadPolicy, ResiliencePolicy, RetryBudgetPolicy,
    ServingReport,
};
use gillis_faas::PlatformProfile;
use gillis_model::zoo;
use gillis_perf::PerfModel;

const QUERIES: usize = 400;
const CONCURRENCY: usize = 4;
/// Independent replications per cell; each gets its own arrival process and
/// chaos stream (derived via [`replication_seed`]) while the outage episode
/// schedule stays fixed. Reports are folded together with
/// [`ServingReport::absorb`] so the asserted ratios average over arrival
/// noise instead of hinging on one seed.
const REPLICATIONS: u64 = 3;
const SLO_FACTOR: f64 = 7.0;
const RATE_FACTOR: f64 = 0.2;
const SEVERITIES: [f64; 2] = [3.0, 32.0];

/// (label, min episode windows, max episode windows) at 200 ms per window.
const DURATIONS: [(&str, u32, u32); 2] = [("short", 5, 10), ("long", 20, 40)];

/// The episode schedule is part of the experimental design (like the rate
/// grid), so it uses its own fixed seed: `GILLIS_BENCH_SEED` varies the
/// arrival process and per-site chaos draws without also reshuffling how
/// much of the run is spent inside episodes.
const OUTAGE_SEED: u64 = 57;

struct Cell {
    arm: &'static str,
    severity: f64,
    duration: &'static str,
    report: ServingReport,
}

impl Cell {
    /// Queries that completed (ok or degraded) within the deadline.
    fn goodput(&self) -> u64 {
        self.report.resilience.ok_queries + self.report.resilience.degraded_queries
    }
}

fn outage(severity: f64, min_windows: u32, max_windows: u32, seed: u64) -> OutageConfig {
    OutageConfig {
        min_windows,
        max_windows,
        // Mean calm stretch of ~33 windows (6.7 s): long enough for the
        // brownout ladder to climb back between episodes.
        start_prob: 0.03,
        ..OutageConfig::severe(severity, seed)
    }
}

fn json_report(seed: u64, slo_ms: f64, rate_qps: f64, cells: &[Cell]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"suite\": \"outage\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"queries\": {QUERIES},\n"));
    out.push_str(&format!("  \"replications\": {REPLICATIONS},\n"));
    out.push_str(&format!("  \"concurrency\": {CONCURRENCY},\n"));
    out.push_str(&format!("  \"slo_ms\": {slo_ms:.2},\n"));
    out.push_str(&format!("  \"rate_qps\": {rate_qps:.2},\n"));
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let r = &c.report;
        let res = &r.resilience;
        let b = &r.brownout;
        out.push_str(&format!(
            "    {{\"arm\": \"{}\", \"severity\": {:.1}, \"duration\": \"{}\", \
             \"goodput\": {}, \"ok\": {}, \"degraded\": {}, \"deadline_exceeded\": {}, \
             \"failed\": {}, \"shed_overload\": {}, \"shed_brownout\": {}, \
             \"retry_amplification\": {:.4}, \"worker_invocations\": {}, \
             \"first_attempts\": {}, \"budget_denied_retries\": {}, \
             \"budget_denied_hedges\": {}, \"corruptions_detected\": {}, \
             \"brownout_levels\": [{}, {}, {}, {}, {}], \"step_downs\": {}, \"step_ups\": {}, \
             \"ok_p99_ms\": {:.2}, \"mean_ms\": {:.2}}}{}\n",
            c.arm,
            c.severity,
            c.duration,
            c.goodput(),
            res.ok_queries,
            res.degraded_queries,
            res.deadline_exceeded_queries,
            res.failed_queries,
            r.overload.shed(),
            b.shed_queries,
            r.retry_amplification(),
            res.worker_invocations,
            res.first_attempts,
            res.budget_denied_retries,
            res.budget_denied_hedges,
            res.corruptions_detected,
            b.queries_at_level[0],
            b.queries_at_level[1],
            b.queries_at_level[2],
            b.queries_at_level[3],
            b.queries_at_level[4],
            b.step_downs,
            b.step_ups,
            r.by_status.ok.percentile(99.0),
            r.latency.mean(),
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_dir = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| ".".to_string());
    let seed = bench_seed(57);

    let platform = PlatformProfile::aws_lambda();
    let perf = PerfModel::analytic(&platform);
    let model = zoo::vgg11();
    let plan = DpPartitioner::default()
        .partition(&model, &perf)
        .expect("plan");
    let predicted_ms = predict_plan(&model, &plan, &perf)
        .expect("prediction")
        .latency_ms;
    let slo_ms = SLO_FACTOR * predicted_ms;
    let saturation_qps = 1000.0 * CONCURRENCY as f64 / predicted_ms;
    let rate_qps = RATE_FACTOR * saturation_qps;
    // Deadline + bounded queue only: breakers and predictive shedding are
    // deliberately off so the comparison isolates retry budgets and the
    // brownout ladder (breakers would mask the naive arm's retry storm).
    let front_door = OverloadPolicy {
        max_concurrency: CONCURRENCY,
        queue_depth: CONCURRENCY,
        deadline_ms: slo_ms,
        shed_on_predicted_miss: false,
        breaker: BreakerPolicy::disabled(),
    };
    // Baseline chaos: modest independent failures that a severity-32
    // episode saturates into near-certain invoke failure (a 3x one does not).
    // The seed here is a placeholder; each replication overrides it.
    let chaos = ChaosConfig {
        seed: 0,
        invoke_failure_rate: 0.15,
        straggler_rate: 0.03,
        straggler_slowdown: 12.0,
        ..ChaosConfig::default()
    };
    let budget = RetryBudgetPolicy::default();
    // The ladder should park at LocalOnly through an episode, not slide to
    // Shed: with a VGG-11 plan one query is 8 lanes, so a 24-lane window
    // needs three probes for a verdict, and a probe spacing of 32 arrivals
    // (~11 s at this rate) puts consecutive probes further apart than any
    // episode (<= 8 s). A single in-episode probe therefore cannot fill a
    // window with failures, and `degrade_below: 0.25` demands two of the
    // three probes fail before the ladder sheds — sustained outage, not one
    // unlucky sample. `recover_above: 0.55` lets two clean probes out of
    // three climb back, and shedding probes every 4th arrival — shedding is
    // expensive, so the ladder hunts for recovery far more eagerly at Shed
    // than it second-guesses itself at LocalOnly.
    let brownout = BrownoutPolicy {
        window_lanes: 24,
        degrade_below: 0.25,
        recover_above: 0.55,
        clean_windows: 1,
        probe_interval: 32,
        shed_probe_interval: Some(4),
    };

    println!("Extension: correlated-outage resilience (VGG-11, Lambda)\n");
    println!(
        "seed {seed} ({REPLICATIONS} replications/cell); plan latency {predicted_ms:.1} ms; \
         SLO {slo_ms:.1} ms; {CONCURRENCY} masters; {rate_qps:.1} qps \
         ({RATE_FACTOR:.1}x saturation)"
    );
    println!(
        "chaos baseline: invoke {:.2}, straggler {:.2}@{:.0}x; episodes: 200 ms windows, \
         platform domain\n",
        chaos.invoke_failure_rate, chaos.straggler_rate, chaos.straggler_slowdown
    );

    let build =
        |arm: &str, outage_cfg: Option<OutageConfig>, rep_seed: u64| -> ForkJoinRuntime<'_> {
            let mut rt = ForkJoinRuntime::new(&model, &plan, platform.clone())
                .expect("runtime")
                .with_overload_predicted(front_door, predicted_ms)
                .expect("overload")
                .with_chaos(ChaosConfig {
                    seed: rep_seed ^ 0xC0FFEE,
                    ..chaos
                })
                .expect("chaos");
            if let Some(cfg) = outage_cfg {
                rt = rt.with_outage(cfg).expect("outage");
            }
            if arm == "naive" {
                rt.with_policy(ResiliencePolicy::naive_retry())
            } else {
                rt.with_policy(ResiliencePolicy::backoff_hedged())
                    .with_retry_budget(budget)
                    .expect("budget")
                    .with_brownout(brownout)
                    .expect("brownout")
            }
        };

    let mut cells: Vec<Cell> = Vec::new();
    let mut table = Table::new(&[
        "severity",
        "duration",
        "arm",
        "goodput",
        "deadline-miss",
        "shed",
        "amp",
        "ok p99(ms)",
    ]);
    let mut run_cell = |severity: f64, duration: &'static str, cfg: Option<OutageConfig>| {
        for arm in ["naive", "guarded"] {
            let mut report: Option<ServingReport> = None;
            for rep in 0..REPLICATIONS {
                let rep_seed = replication_seed(seed, rep);
                let r = build(arm, cfg, rep_seed)
                    .serve_open_loop(rate_qps, QUERIES, CONCURRENCY, rep_seed)
                    .expect("serve");
                match report.as_mut() {
                    Some(base) => base.absorb(&r),
                    None => report = Some(r),
                }
            }
            let report = report.expect("at least one replication");
            let cell = Cell {
                arm,
                severity,
                duration,
                report,
            };
            table.row(vec![
                if severity > 1.0 {
                    format!("{severity:.0}x")
                } else {
                    "calm".to_string()
                },
                duration.to_string(),
                arm.to_string(),
                format!("{}", cell.goodput()),
                format!("{}", cell.report.resilience.deadline_exceeded_queries),
                format!(
                    "{}",
                    cell.report.overload.shed() + cell.report.brownout.shed_queries
                ),
                format!("{:.2}", cell.report.retry_amplification()),
                format!("{:.0}", cell.report.by_status.ok.percentile(99.0)),
            ]);
            cells.push(cell);
        }
    };

    // Calm cell: no episodes, baseline chaos only.
    run_cell(1.0, "none", None);
    if smoke {
        let (label, lo, hi) = DURATIONS[1];
        run_cell(32.0, label, Some(outage(32.0, lo, hi, OUTAGE_SEED)));
    } else {
        for &severity in &SEVERITIES {
            for &(label, lo, hi) in &DURATIONS {
                run_cell(severity, label, Some(outage(severity, lo, hi, OUTAGE_SEED)));
            }
        }
    }
    table.print();

    let path = format!("{out_dir}/BENCH_outage.json");
    std::fs::write(&path, json_report(seed, slo_ms, rate_qps, &cells))
        .expect("write BENCH_outage.json");
    println!("\nwrote {path}");

    // Acceptance criteria at the severe long-episode cell.
    let cell = |arm: &str, severity: f64, duration: &str| {
        cells
            .iter()
            .find(|c| c.arm == arm && c.severity == severity && c.duration == duration)
            .expect("cell")
    };
    let naive = cell("naive", 32.0, "long");
    let guarded = cell("guarded", 32.0, "long");
    let naive_amp = naive.report.retry_amplification();
    let guarded_amp = guarded.report.retry_amplification();
    let ratio = guarded.goodput() as f64 / (naive.goodput() as f64).max(1.0);
    println!(
        "\nat severity 32x (long episodes): naive amplification {naive_amp:.2}x vs guarded \
         {guarded_amp:.2}x; goodput {} vs {} ({ratio:.2}x)",
        naive.goodput(),
        guarded.goodput(),
    );
    assert!(
        naive_amp >= 2.0,
        "naive retry must amplify >= 2x under severe episodes, got {naive_amp:.3}"
    );
    assert!(
        guarded_amp <= 1.2,
        "budgeted amplification must stay <= 1.2x, got {guarded_amp:.3}"
    );
    assert!(
        ratio >= 1.5,
        "guarded goodput must be >= 1.5x naive under severe episodes, got {ratio:.3}"
    );

    // Composed: outage + overload + adaptive multi-SLO batching on the
    // guarded stack — the counters must still account for every arrival.
    let batch_policy = BatchPolicy::single(slo_ms, 4);
    let schedule = gillis_core::plan_batch_schedule(
        &model,
        &plan,
        &platform,
        gillis_perf::TransferFormat::F32,
        &batch_policy,
        rate_qps,
    )
    .expect("batch schedule");
    let (_, lo, hi) = DURATIONS[1];
    let composed_seed = replication_seed(seed, 0);
    let report = build(
        "guarded",
        Some(outage(32.0, lo, hi, OUTAGE_SEED)),
        composed_seed,
    )
    .serve_open_loop_batched(
        &batch_policy,
        &schedule,
        rate_qps,
        QUERIES,
        CONCURRENCY,
        composed_seed,
    )
    .expect("composed serve");
    let accounted =
        report.overload.admitted + report.overload.shed() + report.brownout.shed_queries;
    println!(
        "composed (outage + overload + batching): {} admitted, {} shed by overload, {} shed \
         by brownout, amplification {:.2}x, {} batches",
        report.overload.admitted,
        report.overload.shed(),
        report.brownout.shed_queries,
        report.retry_amplification(),
        report.batch.batches,
    );
    assert_eq!(
        accounted, QUERIES as u64,
        "every arrival must be admitted or shed: {:?} {:?}",
        report.overload, report.brownout
    );
    assert!(
        report.retry_amplification() <= 1.2,
        "composed amplification must stay <= 1.2x"
    );

    if smoke {
        println!("\nsmoke ok: amplification <= 1.2x (naive >= 2x), goodput >= 1.5x naive");
    } else {
        println!("\nexpectation: calm cells match across arms (budget and ladder are inert on a");
        println!("healthy platform); during episodes the naive arm multiplies every failure into");
        println!("retries and misses deadlines, while the guarded arm degrades early, caps");
        println!("amplification with the token bucket, and recovers once the episode clears.");
    }
}
