//! Fig 12 reproduction: serving multi-layer RNNs on AWS Lambda.
//!
//! LSTM layers cannot be parallelized (§V-B), so Gillis shows no advantage
//! for small RNNs; a single function only supports up to 9 layers, while
//! Gillis places layer groups across functions and scales linearly in model
//! depth.

use gillis_bench::{measure_latency_optimal, ms, Table};
use gillis_faas::PlatformProfile;
use gillis_model::zoo;

fn main() {
    println!("Fig 12: RNN-k mean inference latency on Lambda (2K hidden LSTMs)\n");
    let platform = PlatformProfile::aws_lambda();
    let mut table = Table::new(&["layers", "weights(MB)", "default(ms)", "gillis(ms)"]);
    let mut gillis_series = Vec::new();
    for layers in [3usize, 6, 9, 12, 15, 18] {
        let model = zoo::rnn(layers);
        let m = measure_latency_optimal(&model, &platform, 100, 57);
        gillis_series.push((layers, m.gillis_ms));
        table.row(vec![
            format!("{layers}"),
            format!("{:.0}", model.weight_bytes() as f64 / 1e6),
            m.default_ms.map(ms).unwrap_or_else(|| "OOM".into()),
            ms(m.gillis_ms),
        ]);
    }
    table.print();

    // Linearity check: latency per layer should be nearly constant.
    let per_layer: Vec<f64> = gillis_series.iter().map(|&(l, t)| t / l as f64).collect();
    let min = per_layer.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_layer.iter().copied().fold(0.0, f64::max);
    println!(
        "\nper-layer latency spread: {:.1}..{:.1} ms/layer (ratio {:.2} — linear scaling)",
        min,
        max,
        max / min
    );
    println!("paper anchors: Default OOMs beyond 9 layers; Gillis scales linearly.");
}
