//! CI smoke: the SIMD GEMM path must beat the scalar blocked kernel on the
//! VGG-16 conv3_2 shape.
//!
//! `GILLIS_NO_SIMD` is latched per process on first kernel dispatch, so the
//! scalar reference cannot be timed in the same process that timed the SIMD
//! path: this binary re-executes itself with `GILLIS_NO_SIMD=1` to measure
//! the scalar number, then compares. Requires the `simd` build feature and
//! AVX2+FMA at runtime; otherwise it prints a skip notice and exits 0 (the
//! scalar-only CI leg still builds and runs it).

use gillis_bench::report::measure;
use gillis_tensor::ops::{conv2d, Conv2dParams};
use gillis_tensor::{Shape, Tensor};

/// Median ns/iter of conv3_2 (256→256 channels, 3x3, 56x56) in this process.
fn conv3_2_ns() -> f64 {
    let input = Tensor::from_fn(Shape::new(vec![256, 56, 56]), |i| (i % 7) as f32 * 0.1);
    let weight = Tensor::from_fn(Shape::new(vec![256, 256, 3, 3]), |i| (i % 5) as f32 * 0.01);
    let bias = Tensor::zeros(Shape::new(vec![256]));
    let params = Conv2dParams::square(3, 1, 1);
    let (ns, _) = measure(3, || conv2d(&input, &weight, Some(&bias), &params).unwrap());
    ns
}

fn main() {
    if std::env::var("GILLIS_SIMD_SMOKE_ROLE").as_deref() == Ok("scalar") {
        assert!(
            !gillis_tensor::simd::simd_active(),
            "scalar leg must run with SIMD disabled"
        );
        // Parent parses this line.
        println!("scalar_ns={}", conv3_2_ns());
        return;
    }

    if !gillis_tensor::simd::simd_active() {
        println!(
            "simd_smoke: SIMD inactive (feature off, no AVX2+FMA, or GILLIS_NO_SIMD) — skipping"
        );
        return;
    }

    let simd_ns = conv3_2_ns();
    let exe = std::env::current_exe().expect("own path");
    let out = std::process::Command::new(exe)
        .env("GILLIS_SIMD_SMOKE_ROLE", "scalar")
        .env("GILLIS_NO_SIMD", "1")
        .output()
        .expect("scalar leg runs");
    assert!(out.status.success(), "scalar leg failed");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let scalar_ns: f64 = stdout
        .lines()
        .find_map(|l| l.strip_prefix("scalar_ns="))
        .expect("scalar leg prints its timing")
        .trim()
        .parse()
        .expect("numeric scalar timing");

    let speedup = scalar_ns / simd_ns;
    println!(
        "conv3_2: scalar {:.1} ms, simd {:.1} ms — {speedup:.2}x",
        scalar_ns / 1e6,
        simd_ns / 1e6
    );
    // The acceptance bar is 2x on a quiet machine; CI runners are noisy, so
    // gate on a margin that still catches a broken dispatch (which would be
    // ~1.0x).
    assert!(
        speedup >= 1.5,
        "SIMD path must clearly beat the scalar blocked kernel, got {speedup:.2}x"
    );
}
