//! Extension: open-loop load sweep.
//!
//! The paper motivates serverless serving with burst absorption (§II-A):
//! functions scale out in tens of milliseconds where VMs take minutes. This
//! experiment drives a latency-optimal deployment with Poisson arrivals at
//! increasing rates, with a warm pool sized for the base load only — the
//! overload shows up as cold-start scale-out, not queueing collapse.

use gillis_bench::Table;
use gillis_core::{DpPartitioner, ForkJoinRuntime};
use gillis_faas::PlatformProfile;
use gillis_model::zoo;
use gillis_perf::PerfModel;

fn main() {
    println!("Extension: open-loop Poisson load sweep (VGG-11, Lambda)\n");
    let platform = PlatformProfile::aws_lambda();
    let perf = PerfModel::analytic(&platform);
    let model = zoo::vgg11();
    let plan = DpPartitioner::default()
        .partition(&model, &perf)
        .expect("plan");
    let rt = ForkJoinRuntime::new(&model, &plan, platform).expect("runtime");

    // Pool pre-warmed for ~10 concurrent queries; the sweep pushes past it.
    let prewarm = 10;
    let mut table = Table::new(&[
        "rate(q/s)",
        "mean(ms)",
        "p99(ms)",
        "cold starts",
        "cost(ms/query)",
    ]);
    for rate in [5.0, 10.0, 20.0, 40.0, 80.0] {
        let queries = 400;
        let report = rt
            .serve_open_loop(rate, queries, prewarm, 17)
            .expect("open-loop serving");
        table.row(vec![
            format!("{rate:.0}"),
            format!("{:.0}", report.latency.mean()),
            format!("{:.0}", report.latency.percentile(99.0)),
            format!("{}", report.cold_starts),
            format!("{}", report.billing.billed_ms_total() / queries as u64),
        ]);
    }
    table.print();
    println!("\nexpectation: mean latency stays near the warm baseline while cold");
    println!("starts absorb the burst (p99 carries the scale-out penalty).");
}
