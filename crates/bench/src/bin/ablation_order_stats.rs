//! Ablation: order-statistics fork prediction (§IV-A).
//!
//! The paper predicts the delay of forking n workers with the n-th order
//! statistic of the fitted exGaussian. The naive alternative charges the
//! *mean* jitter once. This ablation quantifies how much accuracy the order
//! statistic buys as fan-out grows.

use gillis_bench::Table;
use gillis_faas::PlatformProfile;
use gillis_perf::PerfModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("Ablation: order-statistics vs mean-jitter fork prediction (Lambda, 1 MB)\n");
    let platform = PlatformProfile::aws_lambda();
    let perf = PerfModel::profiled(&platform, 77);
    let bytes = 1_000_000u64;
    let mut rng = StdRng::seed_from_u64(7);
    let mut table = Table::new(&[
        "workers",
        "actual(ms)",
        "order-stat(ms)",
        "err",
        "mean-based(ms)",
        "err",
    ]);
    let mut os_total = 0.0;
    let mut mean_total = 0.0;
    let ns = [1usize, 2, 4, 8, 16, 32];
    for &n in &ns {
        let mc: f64 = (0..4000)
            .map(|_| {
                let jitter = (0..n)
                    .map(|_| platform.invoke_latency_ms.sample(&mut rng))
                    .fold(f64::NEG_INFINITY, f64::max);
                jitter + platform.transfer_ms(bytes) * n as f64
            })
            .sum::<f64>()
            / 4000.0;
        let order_stat = perf.comm.group_transfer_ms(bytes, n);
        let mean_based =
            perf.comm.jitter().mean() + perf.comm.per_byte_ms() * (bytes * n as u64) as f64;
        let e_os = (order_stat - mc).abs() / mc * 100.0;
        let e_mean = (mean_based - mc).abs() / mc * 100.0;
        os_total += e_os;
        mean_total += e_mean;
        table.row(vec![
            format!("{n}"),
            format!("{mc:.1}"),
            format!("{order_stat:.1}"),
            format!("{e_os:.1}%"),
            format!("{mean_based:.1}"),
            format!("{e_mean:.1}%"),
        ]);
    }
    table.print();
    println!(
        "\naverage error: order-stat {:.1}% vs mean-based {:.1}%",
        os_total / ns.len() as f64,
        mean_total / ns.len() as f64
    );
    println!("expectation: the mean-based predictor increasingly underestimates fork");
    println!("delay as fan-out grows; the order statistic stays accurate (paper §IV-A).");
}
