//! Ablation: master participation (§III-B).
//!
//! "The master can also help to compute a partition if having sufficient
//! memory, which can result in fewer workers and less cost." This ablation
//! disables master placements and measures the latency and billed-cost
//! penalty of worker-only serving.

use gillis_bench::Table;
use gillis_core::{predict_plan, DpPartitioner, ForkJoinRuntime, PartitionerConfig};
use gillis_faas::PlatformProfile;
use gillis_model::zoo;
use gillis_perf::PerfModel;

fn main() {
    println!("Ablation: master participation on/off (Lambda)\n");
    let platform = PlatformProfile::aws_lambda();
    let perf = PerfModel::analytic(&platform);
    let mut table = Table::new(&[
        "model",
        "with master(ms)",
        "workers-only(ms)",
        "cost with(ms)",
        "cost without(ms)",
    ]);
    for model in [zoo::vgg11(), zoo::vgg16(), zoo::rnn(6), zoo::wrn50(3)] {
        let with = DpPartitioner::new(PartitionerConfig::default())
            .partition(&model, &perf)
            .expect("plan");
        let without = DpPartitioner::new(PartitionerConfig {
            allow_master_participation: false,
            ..PartitionerConfig::default()
        })
        .partition(&model, &perf)
        .expect("workers-only plan");
        let l_with = ForkJoinRuntime::new(&model, &with, platform.clone())
            .expect("runtime")
            .mean_latency_ms(50, 9);
        let l_without = ForkJoinRuntime::new(&model, &without, platform.clone())
            .expect("runtime")
            .mean_latency_ms(50, 9);
        let c_with = predict_plan(&model, &with, &perf)
            .expect("prediction")
            .billed_ms;
        let c_without = predict_plan(&model, &without, &perf)
            .expect("prediction")
            .billed_ms;
        table.row(vec![
            model.name().to_string(),
            format!("{l_with:.0}"),
            format!("{l_without:.0}"),
            format!("{c_with}"),
            format!("{c_without}"),
        ]);
    }
    table.print();
    println!("\nexpectation: master participation strictly helps — small models");
    println!("(RNN-6) stay entirely in the master; worker-only pays extra round trips.");
}
