//! Extension: what pre-warming buys (paper §III-A).
//!
//! Gillis periodically pings its functions to keep instances warm, arguing
//! the warm-up cost "can be amortized by serving numerous inference queries
//! and is hence negligible". This experiment serves the same workload with
//! and without pre-warming and reports the first-wave penalty.

use gillis_bench::Table;
use gillis_core::{DpPartitioner, ForkJoinRuntime, ResilienceCounters};
use gillis_faas::billing::BillingMeter;
use gillis_faas::fleet::Fleet;
use gillis_faas::{Micros, PlatformProfile};
use gillis_model::zoo;
use gillis_perf::PerfModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("Extension: cold-start amortization (VGG-11 latency-optimal plan, Lambda)\n");
    let platform = PlatformProfile::aws_lambda();
    let perf = PerfModel::analytic(&platform);
    let model = zoo::vgg11();
    let plan = DpPartitioner::default()
        .partition(&model, &perf)
        .expect("plan");
    let rt = ForkJoinRuntime::new(&model, &plan, platform.clone()).expect("runtime");

    // Cold fleet: serve sequential queries and watch the first pay for
    // provisioning + package load of every function in the plan.
    let mut fleet = Fleet::new(platform.clone());
    rt.deploy(&mut fleet).expect("deploy");
    let mut billing = BillingMeter::new(1, platform.price_per_gb_s, platform.price_per_invocation);
    let mut rng = StdRng::seed_from_u64(gillis_bench::bench_seed(11));
    let mut t = Micros::ZERO;
    let mut latencies = Vec::new();
    let mut counters = ResilienceCounters::default();
    for q in 0..20u64 {
        let done = rt
            .run_query_at(&mut fleet, &mut billing, t, &mut rng, q, &mut counters)
            .expect("query");
        latencies.push((done - t).as_ms());
        t = done;
    }

    let mut table = Table::new(&["query", "latency(ms)"]);
    for (i, l) in latencies.iter().enumerate().take(5) {
        table.row(vec![format!("{}", i + 1), format!("{l:.0}")]);
    }
    let steady: f64 = latencies[5..].iter().sum::<f64>() / (latencies.len() - 5) as f64;
    table.row(vec!["steady".into(), format!("{steady:.0}")]);
    table.print();

    let cold_penalty = latencies[0] - steady;
    println!(
        "\ncold first query pays {:.0} ms extra ({:.1}x steady state);",
        cold_penalty,
        latencies[0] / steady
    );
    println!(
        "amortized over 1000 queries that is {:.2} ms/query — negligible, as §III-A argues.",
        cold_penalty / 1000.0
    );
}
