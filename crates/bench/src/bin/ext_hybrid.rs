//! Extension: VM serving vs serverless vs VM+serverless hybrid under a
//! load burst — the §II-A motivation ("using VMs to handle stable inference
//! requests while using serverless functions to cover transient load
//! bursts", as in MArk).
//!
//! Workload: a steady Poisson base rate with a 7.5× spike in the middle.
//! Three provisioning policies serve it:
//!
//! - **VM-only**: a pool sized for the base load; the spike queues.
//! - **Serverless-only**: a Gillis latency-optimal deployment; every query
//!   pays the function premium but the platform absorbs the spike.
//! - **Hybrid**: queries go to a VM when one is free soon, otherwise burst
//!   into the Gillis deployment.

use gillis_bench::Table;
use gillis_core::{DpPartitioner, ForkJoinRuntime, ResilienceCounters};
use gillis_faas::billing::BillingMeter;
use gillis_faas::fleet::Fleet;
use gillis_faas::metrics::LatencyStats;
use gillis_faas::vm::VmPool;
use gillis_faas::workload::PoissonArrivals;
use gillis_faas::{Micros, PlatformProfile};
use gillis_model::zoo;
use gillis_perf::PerfModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Arrival times: ten minutes of steady base load with a 30-second spike
/// of 7.5x in the middle — long enough for VM amortization to matter.
fn arrivals(seed: u64) -> Vec<Micros> {
    let base = PoissonArrivals::new(16.0).expect("rate");
    let spike = PoissonArrivals::new(120.0).expect("rate");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Micros::ZERO;
    let mut out = Vec::new();
    let phase_end = [
        Micros::from_secs(240),
        Micros::from_secs(270),
        Micros::from_secs(600),
    ];
    for (i, end) in phase_end.iter().enumerate() {
        let gen = if i == 1 { &spike } else { &base };
        loop {
            t += gen.next_gap(&mut rng);
            if t >= *end {
                t = *end;
                break;
            }
            out.push(t);
        }
    }
    out
}

fn main() {
    println!("Extension: VM vs serverless vs hybrid under a 7.5x load spike (VGG-11)\n");
    let platform = PlatformProfile::aws_lambda();
    let perf = PerfModel::analytic(&platform);
    let model = zoo::vgg11();
    let plan = DpPartitioner::default()
        .partition(&model, &perf)
        .expect("plan");
    let rt = ForkJoinRuntime::new(&model, &plan, platform.clone()).expect("runtime");

    // A VM (c5-class, ~$0.34/h) serves the model ~2x faster than a 3 GB
    // function; the pool is sized for the base rate (16 q/s x 0.14 s ~ 2.3
    // busy VMs, provision 4 for headroom).
    let vm_service_ms = perf.layer.predict_model_ms(&model) / 2.0;
    let queries = arrivals(gillis_bench::bench_seed(7));
    let span = *queries.last().expect("non-empty workload");

    let mut table = Table::new(&[
        "policy",
        "mean(ms)",
        "p99(ms)",
        "queued/offloaded",
        "cost($)",
    ]);

    // --- VM-only ---
    {
        let mut pool = VmPool::new(4, vm_service_ms, 0.34).expect("pool");
        let mut stats = LatencyStats::new();
        for &t in &queries {
            let s = pool.serve(t);
            stats.record((s.done - t).as_ms());
        }
        let (_, queued) = pool.stats();
        table.row(vec![
            "VM-only".into(),
            format!("{:.0}", stats.mean()),
            format!("{:.0}", stats.percentile(99.0)),
            format!("{queued}"),
            format!("{:.3}", pool.cost_usd(span)),
        ]);
    }

    // --- Serverless-only ---
    {
        let mut fleet = Fleet::new(platform.clone());
        rt.deploy(&mut fleet).expect("deploy");
        rt.prewarm(&mut fleet, 24).expect("prewarm");
        let mut billing =
            BillingMeter::new(1, platform.price_per_gb_s, platform.price_per_invocation);
        let mut stats = LatencyStats::new();
        let mut rng = StdRng::seed_from_u64(gillis_bench::bench_seed(3));
        let mut counters = ResilienceCounters::default();
        for (q, &t) in queries.iter().enumerate() {
            let done = rt
                .run_query_at(
                    &mut fleet,
                    &mut billing,
                    t,
                    &mut rng,
                    q as u64,
                    &mut counters,
                )
                .expect("query");
            stats.record((done - t).as_ms());
        }
        table.row(vec![
            "serverless-only".into(),
            format!("{:.0}", stats.mean()),
            format!("{:.0}", stats.percentile(99.0)),
            "0".into(),
            format!("{:.3}", billing.usd_total()),
        ]);
    }

    // --- Hybrid: VM when free within 50 ms, else serverless burst ---
    {
        let mut pool = VmPool::new(4, vm_service_ms, 0.34).expect("pool");
        let mut fleet = Fleet::new(platform.clone());
        rt.deploy(&mut fleet).expect("deploy");
        rt.prewarm(&mut fleet, 12).expect("prewarm");
        let mut billing =
            BillingMeter::new(1, platform.price_per_gb_s, platform.price_per_invocation);
        let mut stats = LatencyStats::new();
        let mut rng = StdRng::seed_from_u64(gillis_bench::bench_seed(3));
        let mut counters = ResilienceCounters::default();
        let mut offloaded = 0u64;
        for (q, &t) in queries.iter().enumerate() {
            let wait = pool.earliest_start(t).saturating_sub(t);
            if wait <= Micros::from_ms(50.0) {
                let s = pool.serve(t);
                stats.record((s.done - t).as_ms());
            } else {
                offloaded += 1;
                let done = rt
                    .run_query_at(
                        &mut fleet,
                        &mut billing,
                        t,
                        &mut rng,
                        q as u64,
                        &mut counters,
                    )
                    .expect("query");
                stats.record((done - t).as_ms());
            }
        }
        table.row(vec![
            "hybrid".into(),
            format!("{:.0}", stats.mean()),
            format!("{:.0}", stats.percentile(99.0)),
            format!("{offloaded}"),
            format!("{:.3}", pool.cost_usd(span) + billing.usd_total()),
        ]);
    }
    table.print();
    println!("\nexpectation: VM-only queues badly during the spike (p99 blows up);");
    println!("serverless-only absorbs it but pays per query for the entire stable");
    println!("load; the hybrid holds the tail AND the lowest cost (§II-A / MArk).");
}
