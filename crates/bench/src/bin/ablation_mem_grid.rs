//! Ablation: master-memory discretization of the DP (§IV-B).
//!
//! The paper's recursion allocates master memory per group; this
//! implementation discretizes the budget on a grid. Coarser grids plan
//! faster but over-reserve memory and can miss master placements. This
//! ablation sweeps the grid step and reports plan quality and planning time.

use std::time::Instant;

use gillis_bench::Table;
use gillis_core::{predict_plan, DpPartitioner, PartitionerConfig};
use gillis_faas::PlatformProfile;
use gillis_model::zoo;
use gillis_perf::PerfModel;

fn main() {
    println!("Ablation: DP memory-grid resolution (WRN-34-5 on Lambda)\n");
    let platform = PlatformProfile::aws_lambda();
    let perf = PerfModel::analytic(&platform);
    let model = zoo::wrn34(5);
    let mut table = Table::new(&[
        "grid(MiB)",
        "plan latency(ms)",
        "plan cost(ms)",
        "master MB",
        "plan time(ms)",
    ]);
    for grid_mib in [4u64, 16, 64, 256, 1024] {
        let start = Instant::now();
        let plan = DpPartitioner::new(PartitionerConfig {
            mem_grid_bytes: grid_mib * 1024 * 1024,
            ..PartitionerConfig::default()
        })
        .partition(&model, &perf)
        .expect("plan");
        let elapsed = start.elapsed().as_millis();
        let pred = predict_plan(&model, &plan, &perf).expect("prediction");
        let master_mb = plan.master_weight_bytes(&model).expect("master bytes") as f64 / 1e6;
        table.row(vec![
            format!("{grid_mib}"),
            format!("{:.0}", pred.latency_ms),
            format!("{}", pred.billed_ms),
            format!("{master_mb:.0}"),
            format!("{elapsed}"),
        ]);
    }
    table.print();
    println!("\nexpectation: quality is stable down to coarse grids (latency within a");
    println!("few percent); very coarse grids start refusing master placements.");
}
