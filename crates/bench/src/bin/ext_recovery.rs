//! Extension: stage-level checkpointed recovery vs full-restart recovery.
//!
//! Serverless orchestrators are themselves functions: they get reaped,
//! OOM-killed, and rescheduled mid-plan. The classic answer is to restart
//! the whole query — every completed stage is recomputed, billed again, and
//! the deadline clock keeps running. Stage-level checkpointing instead makes
//! each group boundary durable, so a replacement orchestrator pays one
//! failover delay and resumes from the last checkpoint.
//!
//! This experiment sweeps **orchestrator crash rate × outage severity**
//! (VGG-11, Lambda, DP plan, open loop behind a deadline front door) and
//! compares two serving stacks on the same seeds, arrival process, and
//! admission policy:
//!
//! - **restart**: crashes replay the query from stage 0 (no checkpoint
//!   cache — the pre-recovery behavior);
//! - **resume**: [`RecoveryPolicy`] checkpointing — crashes fail over and
//!   replay from the last stage boundary, and resumes that cannot meet the
//!   deadline are skipped instead of paid for.
//!
//! Neither arm injects worker faults: the sweep isolates orchestrator
//! crashes, so every billed millisecond beyond the calm cell is crash
//! recovery overhead. **Wasted work** for a cell is its billed total minus
//! the same arm's calm-cell billed total.
//!
//! `--smoke` (CI) runs the calm cell plus the severe high-crash cell and
//! asserts the acceptance criteria: resume wasted work <= 0.5x restart,
//! resume goodput >= 1.2x restart, and calm cells identical across arms
//! (checkpointing must be free when nothing crashes).
//!
//! Writes `BENCH_recovery.json` (repo root, or the directory given as the
//! first argument).

use gillis_bench::{bench_seed, Table};
use gillis_core::predict::predict_plan;
use gillis_core::{
    replication_seed, BreakerPolicy, ChaosConfig, DpPartitioner, ForkJoinRuntime, OutageConfig,
    OverloadPolicy, RecoveryPolicy, ResiliencePolicy, ServingReport,
};
use gillis_faas::PlatformProfile;
use gillis_model::zoo;
use gillis_perf::PerfModel;

const QUERIES: usize = 400;
const CONCURRENCY: usize = 4;
/// Independent replications per cell; each gets its own arrival process and
/// crash stream (derived via [`replication_seed`]) while the outage episode
/// schedule stays fixed. Reports are folded with [`ServingReport::absorb`]
/// so the asserted ratios average over arrival noise.
const REPLICATIONS: u64 = 3;
const SLO_FACTOR: f64 = 4.0;
const RATE_FACTOR: f64 = 0.5;
const CRASH_RATES: [f64; 2] = [0.1, 0.25];

/// Fixed episode-schedule seed, for the same reason as the outage suite:
/// `GILLIS_BENCH_SEED` varies arrivals and crash draws without reshuffling
/// how much of the run is spent inside episodes.
const OUTAGE_SEED: u64 = 83;

struct Cell {
    arm: &'static str,
    crash_rate: f64,
    outage: &'static str,
    report: ServingReport,
}

impl Cell {
    /// Queries that completed (ok or degraded) within the deadline.
    fn goodput(&self) -> u64 {
        self.report.resilience.ok_queries + self.report.resilience.degraded_queries
    }
}

/// Severe outage on the orchestrator fault domain only: episodes multiply
/// the crash rate (capped at 0.75 per boundary) while worker lanes stay
/// healthy.
fn orchestrator_outage(seed: u64) -> OutageConfig {
    OutageConfig {
        platform: false,
        lanes: false,
        memory_tiers: false,
        orchestrators: true,
        ..OutageConfig::severe(8.0, seed)
    }
}

fn json_report(seed: u64, slo_ms: f64, rate_qps: f64, cells: &[Cell]) -> String {
    // Calm billed total per arm: the subtrahend of every wasted-work figure.
    let calm_billed = |arm: &str| -> u64 {
        cells
            .iter()
            .find(|c| c.arm == arm && c.crash_rate == 0.0)
            .map_or(0, |c| c.report.billing.billed_ms_total())
    };
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"suite\": \"recovery\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"queries\": {QUERIES},\n"));
    out.push_str(&format!("  \"replications\": {REPLICATIONS},\n"));
    out.push_str(&format!("  \"concurrency\": {CONCURRENCY},\n"));
    out.push_str(&format!("  \"slo_ms\": {slo_ms:.2},\n"));
    out.push_str(&format!("  \"rate_qps\": {rate_qps:.2},\n"));
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let r = &c.report;
        let res = &r.resilience;
        let rec = &r.recovery;
        let billed = r.billing.billed_ms_total();
        let wasted = billed.saturating_sub(calm_billed(c.arm));
        out.push_str(&format!(
            "    {{\"arm\": \"{}\", \"crash_rate\": {:.2}, \"outage\": \"{}\", \
             \"goodput\": {}, \"ok\": {}, \"degraded\": {}, \"deadline_exceeded\": {}, \
             \"failed\": {}, \"shed\": {}, \"billed_ms_total\": {}, \"wasted_ms\": {}, \
             \"orchestrator_crashes\": {}, \"failover_replays\": {}, \"full_restarts\": {}, \
             \"stages_saved\": {}, \"recompute_avoided_ms\": {:.1}, \
             \"resume_skipped_deadline\": {}, \"checkpoints_stored\": {}, \
             \"worker_invocations\": {}, \"ok_p99_ms\": {:.2}, \"mean_ms\": {:.2}}}{}\n",
            c.arm,
            c.crash_rate,
            c.outage,
            c.goodput(),
            res.ok_queries,
            res.degraded_queries,
            res.deadline_exceeded_queries,
            res.failed_queries,
            r.overload.shed(),
            billed,
            wasted,
            rec.orchestrator_crashes,
            rec.failover_replays,
            rec.full_restarts,
            rec.stages_saved,
            rec.recompute_avoided_ms,
            rec.resume_skipped_deadline,
            rec.checkpoints_stored,
            res.worker_invocations,
            r.by_status.ok.percentile(99.0),
            r.latency.mean(),
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_dir = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| ".".to_string());
    let seed = bench_seed(83);

    let platform = PlatformProfile::aws_lambda();
    let perf = PerfModel::analytic(&platform);
    let model = zoo::vgg11();
    let plan = DpPartitioner::default()
        .partition(&model, &perf)
        .expect("plan");
    let predicted_ms = predict_plan(&model, &plan, &perf)
        .expect("prediction")
        .latency_ms;
    let slo_ms = SLO_FACTOR * predicted_ms;
    let saturation_qps = 1000.0 * CONCURRENCY as f64 / predicted_ms;
    let rate_qps = RATE_FACTOR * saturation_qps;
    // Deadline + bounded queue only: crashes hurt twice, once as added
    // latency on the crashed query and once as queue backup behind its
    // longer master occupancy — the comparison needs both effects honest.
    let front_door = OverloadPolicy {
        max_concurrency: CONCURRENCY,
        queue_depth: CONCURRENCY,
        deadline_ms: slo_ms,
        shed_on_predicted_miss: false,
        breaker: BreakerPolicy::disabled(),
    };

    println!("Extension: stage-level checkpointed recovery (VGG-11, Lambda)\n");
    println!(
        "seed {seed} ({REPLICATIONS} replications/cell); plan latency {predicted_ms:.1} ms, \
         {} groups; SLO {slo_ms:.1} ms; {CONCURRENCY} masters; {rate_qps:.1} qps \
         ({RATE_FACTOR:.1}x saturation)",
        plan.groups().len(),
    );
    println!(
        "chaos: orchestrator crashes only (workers healthy); outage: severity 8 episodes on \
         the orchestrator domain\n"
    );

    let build = |arm: &str,
                 crash_rate: f64,
                 outage_cfg: Option<OutageConfig>,
                 rep_seed: u64|
     -> ForkJoinRuntime<'_> {
        let mut rt = ForkJoinRuntime::new(&model, &plan, platform.clone())
            .expect("runtime")
            .with_policy(ResiliencePolicy::default())
            .with_overload_predicted(front_door, predicted_ms)
            .expect("overload")
            .with_chaos(ChaosConfig {
                seed: rep_seed ^ 0xC0FFEE,
                orchestrator_crash_rate: crash_rate,
                ..ChaosConfig::default()
            })
            .expect("chaos");
        if let Some(cfg) = outage_cfg {
            rt = rt.with_outage(cfg).expect("outage");
        }
        if arm == "resume" {
            rt = rt
                .with_recovery(RecoveryPolicy::default())
                .expect("recovery");
        }
        rt
    };

    let mut cells: Vec<Cell> = Vec::new();
    let mut table = Table::new(&[
        "crash",
        "outage",
        "arm",
        "goodput",
        "deadline-miss",
        "crashes",
        "replays",
        "restarts",
        "billed(ms)",
    ]);
    let mut run_cell = |crash_rate: f64, outage: &'static str, cfg: Option<OutageConfig>| {
        for arm in ["restart", "resume"] {
            let mut report: Option<ServingReport> = None;
            for rep in 0..REPLICATIONS {
                let rep_seed = replication_seed(seed, rep);
                let r = build(arm, crash_rate, cfg, rep_seed)
                    .serve_open_loop(rate_qps, QUERIES, CONCURRENCY, rep_seed)
                    .expect("serve");
                match report.as_mut() {
                    Some(base) => base.absorb(&r),
                    None => report = Some(r),
                }
            }
            let report = report.expect("at least one replication");
            let cell = Cell {
                arm,
                crash_rate,
                outage,
                report,
            };
            table.row(vec![
                if crash_rate > 0.0 {
                    format!("{crash_rate:.2}")
                } else {
                    "calm".to_string()
                },
                outage.to_string(),
                arm.to_string(),
                format!("{}", cell.goodput()),
                format!("{}", cell.report.resilience.deadline_exceeded_queries),
                format!("{}", cell.report.recovery.orchestrator_crashes),
                format!("{}", cell.report.recovery.failover_replays),
                format!("{}", cell.report.recovery.full_restarts),
                format!("{}", cell.report.billing.billed_ms_total()),
            ]);
            cells.push(cell);
        }
    };

    // Calm cell first: its billed totals anchor every wasted-work figure.
    run_cell(0.0, "none", None);
    if smoke {
        run_cell(0.25, "severe", Some(orchestrator_outage(OUTAGE_SEED)));
    } else {
        for &rate in &CRASH_RATES {
            run_cell(rate, "none", None);
            run_cell(rate, "severe", Some(orchestrator_outage(OUTAGE_SEED)));
        }
    }
    table.print();

    let path = format!("{out_dir}/BENCH_recovery.json");
    std::fs::write(&path, json_report(seed, slo_ms, rate_qps, &cells))
        .expect("write BENCH_recovery.json");
    println!("\nwrote {path}");

    let cell = |arm: &str, crash_rate: f64, outage: &str| {
        cells
            .iter()
            .find(|c| c.arm == arm && c.crash_rate == crash_rate && c.outage == outage)
            .expect("cell")
    };

    // Calm cells must be identical across arms: with no crashes the
    // checkpoint cache is pure bookkeeping, and the recovery counters are
    // the only permitted difference.
    let calm_restart = cell("restart", 0.0, "none");
    let calm_resume = cell("resume", 0.0, "none");
    assert_eq!(
        calm_restart.report.latency.mean().to_bits(),
        calm_resume.report.latency.mean().to_bits(),
        "calm latency must be bit-identical across arms"
    );
    assert_eq!(
        calm_restart.report.billing.billed_ms_total(),
        calm_resume.report.billing.billed_ms_total(),
        "calm billing must match across arms"
    );
    assert_eq!(
        calm_restart.goodput(),
        calm_resume.goodput(),
        "calm goodput must match across arms"
    );
    assert_eq!(calm_restart.report.recovery.orchestrator_crashes, 0);
    assert!(calm_resume.report.recovery.checkpoints_stored > 0);

    // Acceptance criteria at the severe high-crash cell.
    let restart = cell("restart", 0.25, "severe");
    let resume = cell("resume", 0.25, "severe");
    let wasted = |c: &Cell| {
        c.report
            .billing
            .billed_ms_total()
            .saturating_sub(cell(c.arm, 0.0, "none").report.billing.billed_ms_total())
    };
    let wasted_restart = wasted(restart);
    let wasted_resume = wasted(resume);
    let wasted_ratio = wasted_resume as f64 / (wasted_restart as f64).max(1.0);
    let goodput_ratio = resume.goodput() as f64 / (restart.goodput() as f64).max(1.0);
    println!(
        "\nat crash 0.25 + severe episodes: wasted work {wasted_resume} ms (resume) vs \
         {wasted_restart} ms (restart) = {wasted_ratio:.2}x; goodput {} vs {} \
         ({goodput_ratio:.2}x)",
        resume.goodput(),
        restart.goodput(),
    );
    assert!(
        restart.report.recovery.orchestrator_crashes > 0,
        "the severe cell must actually crash orchestrators"
    );
    assert_eq!(
        resume.report.recovery.full_restarts, 0,
        "a capacious cache should never full-restart: {:?}",
        resume.report.recovery
    );
    assert!(
        wasted_ratio <= 0.5,
        "resume wasted work must be <= 0.5x restart, got {wasted_ratio:.3}"
    );
    assert!(
        goodput_ratio >= 1.2,
        "resume goodput must be >= 1.2x restart, got {goodput_ratio:.3}"
    );

    if smoke {
        println!("\nsmoke ok: wasted work <= 0.5x restart, goodput >= 1.2x, calm cells identical");
    } else {
        println!("\nexpectation: calm cells are bit-identical across arms (checkpointing is free");
        println!("when nothing crashes); as crash rate and episode severity grow, the restart arm");
        println!("re-bills every completed stage and backs up its admission queue, while the");
        println!("resume arm pays one failover per crash and skips resumes that cannot meet the");
        println!("deadline.");
    }
}
