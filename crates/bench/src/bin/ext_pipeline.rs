//! Extension: pipeline-parallel serving across layer groups.
//!
//! A fork-join deployment admits at most `concurrency` queries at a time and
//! holds each one for the full end-to-end plan latency, so its steady-state
//! throughput is `concurrency / latency`. Pipelining turns each layer group
//! into a stage with its own lane pool and a bounded inter-stage queue:
//! a query only occupies one stage at a time, so steady-state throughput is
//! bounded by the *slowest stage* instead of the whole plan. This experiment
//! sweeps an open-loop Poisson stream (VGG-11 and WRN-50-2, Lambda) around
//! each model's fork-join saturation point and compares, on the same
//! deterministic arrival stream:
//!
//! - **forkjoin**: the latency-optimal DP plan served by the plain open
//!   loop under `OverloadPolicy::for_slo` admission control;
//! - **pipeline**: the stage-balancing DP plan
//!   ([`PlanObjective::PipelineBottleneck`]) served by
//!   `serve_open_loop_pipelined` with per-stage lanes equal to the
//!   fork-join concurrency, under the same overload policy.
//!
//! Both arms see identical arrivals and the same SLO-derived deadline;
//! queries past the deadline are shed at admission or killed at the next
//! stage boundary, so the admitted-p99 comparison is honest. Goodput QPS is
//! ok+degraded completions divided by the arrival window — the stream is
//! open-loop, so the window is `queries / rate` in both arms.
//!
//! Chaos composes (`GILLIS_CHAOS_RATE`) and `GILLIS_OVERLOAD_*` overrides
//! the derived admission policy. `--smoke` (CI) runs the 2x cells and
//! asserts the acceptance criteria on the VGG-11 reference plan: at least
//! 1.3x steady-state goodput QPS at equal-or-better admitted p99 than the
//! fork-join arm, with queries per dollar reported (and never worse).
//!
//! Writes `BENCH_pipeline.json` (repo root, or the directory given as the
//! first argument).

use gillis_bench::{bench_seed, Table};
use gillis_core::predict::{predict_plan, predict_plan_pipelined};
use gillis_core::{
    ChaosConfig, DpPartitioner, ForkJoinRuntime, OverloadPolicy, PipelinePolicy, PlanObjective,
    ServingReport,
};
use gillis_faas::PlatformProfile;
use gillis_model::zoo;
use gillis_perf::PerfModel;

const QUERIES: usize = 400;
const CONCURRENCY: usize = 4;
const RATE_FACTORS: [f64; 4] = [0.5, 1.0, 1.5, 2.0];

struct Cell {
    model: &'static str,
    policy: &'static str,
    rate_factor: f64,
    rate_qps: f64,
    report: ServingReport,
}

impl Cell {
    fn goodput(&self) -> u64 {
        (self.report.by_status.ok.count() + self.report.by_status.degraded.count()) as u64
    }

    /// Completed-within-SLO throughput over the open-loop arrival window.
    fn goodput_qps(&self) -> f64 {
        self.goodput() as f64 / (QUERIES as f64 / self.rate_qps)
    }

    fn queries_per_dollar(&self) -> f64 {
        self.goodput() as f64 / self.report.billing.usd_total()
    }
}

struct ModelRun {
    name: &'static str,
    predicted_ms: f64,
    bottleneck_ms: f64,
    stages: usize,
    saturation_qps: f64,
}

fn json_report(seed: u64, runs: &[ModelRun], cells: &[Cell]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"suite\": \"pipeline\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"queries\": {QUERIES},\n"));
    out.push_str(&format!("  \"concurrency\": {CONCURRENCY},\n"));
    out.push_str("  \"models\": [\n");
    for (i, m) in runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"model\": \"{}\", \"plan_latency_ms\": {:.2}, \"bottleneck_ms\": {:.2}, \
             \"stages\": {}, \"saturation_qps\": {:.2}}}{}\n",
            m.name,
            m.predicted_ms,
            m.bottleneck_ms,
            m.stages,
            m.saturation_qps,
            if i + 1 == runs.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let r = &c.report;
        out.push_str(&format!(
            "    {{\"model\": \"{}\", \"policy\": \"{}\", \"rate_factor\": {:.2}, \
             \"rate_qps\": {:.2}, \"admitted\": {}, \"shed\": {}, \"goodput\": {}, \
             \"goodput_qps\": {:.2}, \"usd_total\": {:.6}, \"queries_per_dollar\": {:.1}, \
             \"mean_ms\": {:.2}, \"p99_ms\": {:.2}, \"ok_p99_ms\": {:.2}, \
             \"stage_dispatches\": {}, \"handoffs\": {}, \"backpressure_stalls\": {}, \
             \"peak_stage_queue\": {}, \"cold_starts\": {}}}{}\n",
            c.model,
            c.policy,
            c.rate_factor,
            c.rate_qps,
            r.overload.admitted,
            r.overload.shed(),
            c.goodput(),
            c.goodput_qps(),
            r.billing.usd_total(),
            c.queries_per_dollar(),
            r.latency.mean(),
            r.latency.percentile(99.0),
            r.by_status.ok.percentile(99.0),
            r.pipeline.stage_dispatches,
            r.pipeline.handoffs,
            r.pipeline.backpressure_stalls,
            r.pipeline.peak_stage_queue,
            r.cold_starts,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_dir = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| ".".to_string());
    let seed = bench_seed(42);

    let platform = PlatformProfile::aws_lambda();
    let perf = PerfModel::analytic(&platform);
    let chaos = ChaosConfig::from_env();
    let pipeline_policy =
        PipelinePolicy::from_env().unwrap_or_else(|| PipelinePolicy::with_lanes(CONCURRENCY));
    let factors: &[f64] = if smoke { &[2.0] } else { &RATE_FACTORS };

    println!("Extension: pipeline-parallel serving across layer groups (Lambda)\n");
    match &chaos {
        Some(c) => println!("chaos: composed from env (rate knobs on seed {})", c.seed),
        None => println!("chaos: off (set GILLIS_CHAOS_RATE to compose faults)"),
    }

    type ModelFn = fn() -> gillis_model::LinearModel;
    let models: [(&'static str, ModelFn); 2] =
        [("vgg11", zoo::vgg11), ("wrn50-2", || zoo::wrn50(2))];

    let mut table = Table::new(&[
        "model", "rate", "policy", "admitted", "shed", "goodput", "qps", "q/$", "mean(ms)",
        "p99(ms)", "stalls",
    ]);
    let mut runs = Vec::new();
    let mut cells = Vec::new();
    for (name, make) in models {
        let model = make();
        let fj_plan = DpPartitioner::default()
            .partition(&model, &perf)
            .expect("latency-optimal plan");
        let pp_plan = DpPartitioner::default()
            .with_objective(PlanObjective::PipelineBottleneck)
            .partition(&model, &perf)
            .expect("stage-balancing plan");
        let predicted_ms = predict_plan(&model, &fj_plan, &perf)
            .expect("fork-join prediction")
            .latency_ms;
        let pipeline_pred =
            predict_plan_pipelined(&model, &pp_plan, &perf).expect("pipeline prediction");
        let saturation_qps = 1000.0 * CONCURRENCY as f64 / predicted_ms;
        let slo_ms = 4.0 * predicted_ms;
        let overload = OverloadPolicy::from_env()
            .unwrap_or_else(|| OverloadPolicy::for_slo(slo_ms, CONCURRENCY));
        println!(
            "\n{name}: fork-join plan latency {predicted_ms:.1} ms; pipeline plan {} stages, \
             bottleneck {:.1} ms (predicted steady {:.1} qps/lane); {CONCURRENCY} lanes; \
             SLO {slo_ms:.0} ms; fork-join saturation {saturation_qps:.1} qps",
            pp_plan.groups().len(),
            pipeline_pred.bottleneck_ms,
            pipeline_pred.steady_state_qps,
        );
        runs.push(ModelRun {
            name,
            predicted_ms,
            bottleneck_ms: pipeline_pred.bottleneck_ms,
            stages: pp_plan.groups().len(),
            saturation_qps,
        });
        for &factor in factors {
            let rate_qps = factor * saturation_qps;
            for arm in ["forkjoin", "pipeline"] {
                let plan = if arm == "pipeline" {
                    &pp_plan
                } else {
                    &fj_plan
                };
                let mut rt = ForkJoinRuntime::new(&model, plan, platform.clone()).expect("runtime");
                rt = rt.with_overload(overload).expect("overload policy");
                if let Some(c) = &chaos {
                    rt = rt.with_chaos(*c).expect("chaos config");
                }
                let report = if arm == "pipeline" {
                    rt.serve_open_loop_pipelined(
                        &pipeline_policy,
                        rate_qps,
                        QUERIES,
                        CONCURRENCY,
                        seed,
                    )
                    .expect("pipelined serve")
                } else {
                    rt.serve_open_loop(rate_qps, QUERIES, CONCURRENCY, seed)
                        .expect("fork-join serve")
                };
                let cell = Cell {
                    model: name,
                    policy: arm,
                    rate_factor: factor,
                    rate_qps,
                    report,
                };
                table.row(vec![
                    name.into(),
                    format!("{factor:.1}x"),
                    arm.into(),
                    format!("{}", cell.report.overload.admitted),
                    format!("{}", cell.report.overload.shed()),
                    format!("{}", cell.goodput()),
                    format!("{:.1}", cell.goodput_qps()),
                    format!("{:.0}", cell.queries_per_dollar()),
                    format!("{:.0}", cell.report.latency.mean()),
                    format!("{:.0}", cell.report.latency.percentile(99.0)),
                    format!("{}", cell.report.pipeline.backpressure_stalls),
                ]);
                cells.push(cell);
            }
        }
    }
    println!();
    table.print();

    let path = format!("{out_dir}/BENCH_pipeline.json");
    std::fs::write(&path, json_report(seed, &runs, &cells)).expect("write BENCH_pipeline.json");
    println!("\nwrote {path}");

    // Acceptance criteria, asserted at 2x saturation on the VGG-11
    // reference plan (the smoke cell); the WRN-50-2 cells are reported.
    let cell = |model: &str, policy: &str, factor: f64| {
        cells
            .iter()
            .find(|c| c.model == model && c.policy == policy && c.rate_factor == factor)
            .expect("cell")
    };
    let pipelined = cell("vgg11", "pipeline", 2.0);
    let baseline = cell("vgg11", "forkjoin", 2.0);
    let qps_ratio = pipelined.goodput_qps() / baseline.goodput_qps();
    let cost_ratio = pipelined.queries_per_dollar() / baseline.queries_per_dollar();
    let pipelined_p99 = pipelined.report.latency.percentile(99.0);
    let baseline_p99 = baseline.report.latency.percentile(99.0);
    println!(
        "\nvgg11 at 2.0x saturation: pipeline sustains {:.1} goodput qps vs {:.1} for \
         fork-join ({qps_ratio:.2}x), {:.0} vs {:.0} queries/$ ({cost_ratio:.2}x), admitted \
         p99 {pipelined_p99:.0} ms vs {baseline_p99:.0} ms",
        pipelined.goodput_qps(),
        baseline.goodput_qps(),
        pipelined.queries_per_dollar(),
        baseline.queries_per_dollar(),
    );
    assert!(
        pipelined.report.pipeline.stage_dispatches > 0 && pipelined.report.pipeline.handoffs > 0,
        "pipeline arm must actually stream across stages: {:?}",
        pipelined.report.pipeline
    );
    assert!(
        qps_ratio >= 1.3,
        "pipelining must sustain >= 1.3x steady-state goodput qps at 2x saturation, \
         got {qps_ratio:.2}x"
    );
    // queries/$ is reported, not gated: per-admitted-query billing is nearly
    // identical across the arms (same compute, plus hand-off transfers), so
    // the cost win tracks the goodput win only when sheds are billed.
    assert!(
        cost_ratio >= 1.0,
        "pipelining must not serve fewer queries per dollar at 2x saturation, \
         got {cost_ratio:.2}x"
    );
    assert!(
        pipelined_p99 <= baseline_p99,
        "pipelined admitted p99 {pipelined_p99:.1} ms must not exceed fork-join \
         {baseline_p99:.1} ms"
    );
    if smoke {
        println!("smoke ok: >= 1.3x goodput qps at equal-or-better admitted p99");
    } else {
        println!("\nexpectation: below saturation both arms keep up and pipelining only adds");
        println!("hand-off latency; past saturation the fork-join arm sheds every query beyond");
        println!("concurrency/latency while the pipeline keeps admitting up to the bottleneck");
        println!("stage rate, so goodput, queries per dollar, and the admitted tail all win.");
    }
}
