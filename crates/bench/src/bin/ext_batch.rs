//! Extension: adaptive multi-SLO batching under open-loop arrival pressure.
//!
//! Serverless inference bills per invocation-millisecond, so a fork-join
//! wave that carries one query wastes most of what it pays for: the weight
//! transfer and load are the same whether the wave carries 1 query or 8.
//! This experiment sweeps a mixed-SLO Poisson stream (VGG-11, Lambda, DP
//! plan) around the saturation point and compares two configurations on the
//! same deterministic seed:
//!
//! - **batch1**: the same SLO classes with `max_batch = 1` — every arrival
//!   dispatches its own wave (the pre-batching serving path);
//! - **batch**: [`plan_batch_schedule`] picks a per-class batch size and a
//!   deadline-derived accumulation window jointly with the instance memory,
//!   then `serve_open_loop_batched` forms batches online.
//!
//! Three SLO classes share the stream: interactive (tight deadline, most
//! traffic), standard (loose deadline), and bulk (no deadline). Queries are
//! hashed into classes deterministically, accumulate per class up to the
//! window, and are shed on arrival when the predicted batch completion
//! already misses their deadline — batching never pushes a query past its
//! shed threshold.
//!
//! Chaos composes (`GILLIS_CHAOS_RATE`), overload protection composes
//! (`GILLIS_OVERLOAD_*`), and `GILLIS_BATCH_*` overrides the batch policy.
//! `--smoke` (CI) runs the 2x cell and asserts the acceptance criteria:
//! >= 1.3x queries per dollar at equal-or-better admitted p99 than batch1.
//!
//! Writes `BENCH_batch.json` (repo root, or the directory given as the
//! first argument).

use gillis_bench::{bench_seed, Table};
use gillis_core::predict::predict_plan;
use gillis_core::{
    plan_batch_schedule, BatchPolicy, ChaosConfig, DpPartitioner, ForkJoinRuntime, OverloadPolicy,
    ServingReport, SloClass,
};
use gillis_faas::PlatformProfile;
use gillis_model::zoo;
use gillis_perf::{PerfModel, TransferFormat};

const QUERIES: usize = 400;
const CONCURRENCY: usize = 4;
const MAX_BATCH: usize = 8;
const RATE_FACTORS: [f64; 4] = [0.5, 1.0, 1.5, 2.0];

struct Cell {
    policy: &'static str,
    rate_factor: f64,
    rate_qps: f64,
    memory_mb: u64,
    report: ServingReport,
}

impl Cell {
    fn queries_per_dollar(&self) -> f64 {
        self.report.overload.admitted as f64 / self.report.billing.usd_total()
    }
}

fn json_report(seed: u64, predicted_ms: f64, saturation_qps: f64, cells: &[Cell]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"suite\": \"batch\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"queries\": {QUERIES},\n"));
    out.push_str(&format!("  \"concurrency\": {CONCURRENCY},\n"));
    out.push_str(&format!("  \"max_batch\": {MAX_BATCH},\n"));
    out.push_str(&format!("  \"plan_latency_ms\": {predicted_ms:.2},\n"));
    out.push_str(&format!("  \"saturation_qps\": {saturation_qps:.2},\n"));
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let r = &c.report;
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"rate_factor\": {:.2}, \"rate_qps\": {:.2}, \
             \"memory_mb\": {}, \"admitted\": {}, \"shed\": {}, \"batches\": {}, \
             \"mean_batch\": {:.3}, \"fast_path\": {}, \"size_closes\": {}, \
             \"window_closes\": {}, \"usd_total\": {:.6}, \"queries_per_dollar\": {:.1}, \
             \"mean_ms\": {:.2}, \"p99_ms\": {:.2}, \"ok_p99_ms\": {:.2}, \"cold_starts\": {}}}{}\n",
            c.policy,
            c.rate_factor,
            c.rate_qps,
            c.memory_mb,
            r.overload.admitted,
            r.overload.shed(),
            r.batch.batches,
            r.batch.mean_batch(),
            r.batch.batch_one_fast_path,
            r.batch.size_closes,
            r.batch.window_closes,
            r.billing.usd_total(),
            c.queries_per_dollar(),
            r.latency.mean(),
            r.latency.percentile(99.0),
            r.by_status.ok.percentile(99.0),
            r.cold_starts,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_dir = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| ".".to_string());
    let seed = bench_seed(42);

    let platform = PlatformProfile::aws_lambda();
    let perf = PerfModel::analytic(&platform);
    let model = zoo::vgg11();
    let plan = DpPartitioner::default()
        .partition(&model, &perf)
        .expect("plan");
    let predicted_ms = predict_plan(&model, &plan, &perf)
        .expect("prediction")
        .latency_ms;
    let saturation_qps = 1000.0 * CONCURRENCY as f64 / predicted_ms;
    let chaos = ChaosConfig::from_env();
    let overload = OverloadPolicy::from_env();

    // Three SLO classes share the stream; deadlines are multiples of the
    // plan latency so the sweep is model-independent.
    let batch_policy = BatchPolicy::from_env().unwrap_or_else(|| BatchPolicy {
        classes: vec![
            SloClass {
                deadline_ms: 10.0 * predicted_ms,
                weight: 2.0,
            },
            SloClass {
                deadline_ms: 30.0 * predicted_ms,
                weight: 1.0,
            },
            SloClass {
                deadline_ms: f64::INFINITY,
                weight: 1.0,
            },
        ],
        max_batch: MAX_BATCH,
        // Windows cap at twice the plan latency: long enough to fill real
        // batches near saturation, short enough that window wait stays
        // below the queueing the shared waves save.
        max_window_ms: 2.0 * predicted_ms,
        window_margin_ms: 2.0,
        amortized_fraction: 0.25,
        memory_mb: Vec::new(),
    });
    let base_policy = BatchPolicy {
        max_batch: 1,
        ..batch_policy.clone()
    };

    println!("Extension: adaptive multi-SLO batching (VGG-11, Lambda)\n");
    println!(
        "seed {seed}; plan latency {predicted_ms:.1} ms; {CONCURRENCY} concurrent masters; \
         saturation {saturation_qps:.1} qps; max batch {}",
        batch_policy.max_batch
    );
    match &chaos {
        Some(c) => println!("chaos: composed from env (rate knobs on seed {})", c.seed),
        None => println!("chaos: off (set GILLIS_CHAOS_RATE to compose faults)"),
    }
    match &overload {
        Some(_) => println!("overload: composed from env\n"),
        None => println!("overload: off (set GILLIS_OVERLOAD_* to compose admission control)\n"),
    }

    let policies: [(&'static str, &BatchPolicy); 2] =
        [("batch1", &base_policy), ("batch", &batch_policy)];
    let factors: &[f64] = if smoke { &[2.0] } else { &RATE_FACTORS };

    let mut table = Table::new(&[
        "rate", "policy", "mem(MB)", "admitted", "shed", "batches", "mean n", "q/$", "mean(ms)",
        "p99(ms)",
    ]);
    let mut cells = Vec::new();
    for &factor in factors {
        let rate_qps = factor * saturation_qps;
        for (name, policy) in &policies {
            let schedule = plan_batch_schedule(
                &model,
                &plan,
                &platform,
                TransferFormat::F32,
                policy,
                rate_qps,
            )
            .expect("schedule");
            let serving_platform = if schedule.memory_bytes == platform.instance_memory_bytes {
                platform.clone()
            } else {
                platform.with_memory_bytes(schedule.memory_bytes)
            };
            let mut rt = ForkJoinRuntime::new(&model, &plan, serving_platform).expect("runtime");
            if let Some(ov) = &overload {
                rt = rt.with_overload(*ov).expect("overload policy");
            }
            if let Some(c) = &chaos {
                rt = rt.with_chaos(*c).expect("chaos config");
            }
            let report = rt
                .serve_open_loop_batched(policy, &schedule, rate_qps, QUERIES, CONCURRENCY, seed)
                .expect("serve");
            let cell = Cell {
                policy: name,
                rate_factor: factor,
                rate_qps,
                memory_mb: schedule.memory_bytes / 1_000_000,
                report,
            };
            table.row(vec![
                format!("{factor:.1}x"),
                (*name).into(),
                format!("{}", cell.memory_mb),
                format!("{}", cell.report.overload.admitted),
                format!("{}", cell.report.overload.shed()),
                format!("{}", cell.report.batch.batches),
                format!("{:.2}", cell.report.batch.mean_batch()),
                format!("{:.0}", cell.queries_per_dollar()),
                format!("{:.0}", cell.report.latency.mean()),
                format!("{:.0}", cell.report.latency.percentile(99.0)),
            ]);
            cells.push(cell);
        }
    }
    table.print();

    let path = format!("{out_dir}/BENCH_batch.json");
    std::fs::write(
        &path,
        json_report(seed, predicted_ms, saturation_qps, &cells),
    )
    .expect("write BENCH_batch.json");
    println!("\nwrote {path}");

    // Acceptance criteria, asserted at 2x saturation (the smoke cell).
    let cell = |policy: &str, factor: f64| {
        cells
            .iter()
            .find(|c| c.policy == policy && c.rate_factor == factor)
            .expect("cell")
    };
    let batched = cell("batch", 2.0);
    let baseline = cell("batch1", 2.0);
    let ratio = batched.queries_per_dollar() / baseline.queries_per_dollar();
    let batched_p99 = batched.report.latency.percentile(99.0);
    let baseline_p99 = baseline.report.latency.percentile(99.0);
    println!(
        "\nat 2.0x saturation: batching serves {:.0} queries/$ vs {:.0} for batch1 \
         ({ratio:.2}x) with admitted p99 {batched_p99:.0} ms vs {baseline_p99:.0} ms",
        batched.queries_per_dollar(),
        baseline.queries_per_dollar(),
    );
    assert!(
        batched.report.batch.mean_batch() > 1.0,
        "2x saturation must form real batches: {:?}",
        batched.report.batch
    );
    assert!(
        ratio >= 1.3,
        "batching must serve >= 1.3x queries per dollar at 2x saturation, got {ratio:.2}x"
    );
    assert!(
        batched_p99 <= baseline_p99,
        "batched admitted p99 {batched_p99:.1} ms must not exceed batch1 {baseline_p99:.1} ms"
    );
    if smoke {
        println!("smoke ok: >= 1.3x queries/$ at equal-or-better admitted p99");
    } else {
        println!("\nexpectation: below saturation windows close underfilled and batching only");
        println!("amortizes what the arrival rate supports; past saturation shared fork waves");
        println!("raise effective capacity, so batching both serves more queries per dollar and");
        println!("keeps the admitted tail lower than dispatch-per-query.");
    }
}
