//! Extension: steady-state inference memory plan (compiled warm path).
//!
//! Measures what deployment-time compilation buys over the per-query
//! reference path: cold queries re-slice weights, re-derive halo spans, and
//! allocate every intermediate; warm queries run through a
//! [`CompiledPlanExec`] — pre-sliced weights, packed conv panels, folded
//! batch norms, preallocated buffers — and are bit-identical to the cold
//! path by construction.
//!
//! Two modes:
//!
//! - **full** (default): VGG-11 on the single-function plan and on a forced
//!   4-way partitioned plan. Reports per-query latency cold vs warm,
//!   allocations per query (via a counting global allocator), end-to-end
//!   warm QPS, and packed-panel footprint. Writes `BENCH_infer.json` at the
//!   repo root (or the directory given as the first CLI argument).
//! - **smoke** (`--smoke`, used by CI): tiny-vgg on the single-function and
//!   a 2-way height-split plan at pool width 1, asserting the warm path
//!   performs **zero** heap allocations per query once warmed up.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use gillis_core::{
    execute_plan_tensors_with_threads, group_options, CompiledPlanExec, ExecutionPlan, PartDim,
    PartitionOption, Placement, PlannedGroup,
};
use gillis_model::weights::{init_weights, ModelWeights};
use gillis_model::{zoo, LinearModel};
use gillis_tensor::Tensor;

/// Counts heap allocations (alloc/alloc_zeroed/realloc) so the harness can
/// report allocations per query and the smoke mode can assert the warm path
/// makes none.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System` unchanged; the counter is a
// relaxed atomic with no allocation of its own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A plan that splits every layer 4 ways where the partition geometry allows
/// it (height-first, any 4-way split otherwise), mirroring a fully
/// partitioned worker deployment.
fn forced_split_plan(model: &LinearModel, parts: usize) -> ExecutionPlan {
    let groups = (0..model.layers().len())
        .map(|i| {
            let opts = group_options(model, i, i + 1, &[parts]);
            let option = opts
                .iter()
                .copied()
                .find(|o| {
                    matches!(o, PartitionOption::Split { dim: PartDim::Height, parts: p } if *p == parts)
                })
                .or_else(|| {
                    opts.iter()
                        .copied()
                        .find(|o| matches!(o, PartitionOption::Split { .. }))
                })
                .unwrap_or(PartitionOption::Single);
            PlannedGroup {
                start: i,
                end: i + 1,
                option,
                placement: if option == PartitionOption::Single {
                    Placement::Master
                } else {
                    Placement::Workers
                },
            }
        })
        .collect();
    ExecutionPlan::new(groups)
}

fn query(model: &LinearModel, seed: u64) -> Tensor {
    let mut x = seed | 1;
    Tensor::from_fn(model.input_shape().clone(), |_| {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        ((x % 1000) as f32 / 500.0) - 1.0
    })
}

struct PlanResult {
    plan_name: String,
    parts: usize,
    cold_ms: f64,
    warm_ms: f64,
    cold_allocs: u64,
    warm_allocs: u64,
    warm_qps: f64,
    panel_mb: f64,
    compile_ms: f64,
}

/// Measures one plan: cold (uncompiled, per-query slicing) vs warm
/// (compiled) queries, checking bit-identity along the way.
#[allow(clippy::too_many_arguments)]
fn measure_plan(
    model: &LinearModel,
    weights: &ModelWeights,
    plan: &ExecutionPlan,
    plan_name: &str,
    threads: usize,
    cold_iters: usize,
    warm_iters: usize,
    seed: u64,
) -> PlanResult {
    let input = query(model, seed);
    let parts = plan
        .groups()
        .iter()
        .map(|g| g.option.parts())
        .max()
        .unwrap_or(1);

    // Cold: the reference fork-join path, everything re-derived per query.
    let reference =
        execute_plan_tensors_with_threads(model, plan, weights, &input, threads).expect("cold run");
    let cold_begin = Instant::now();
    let cold_allocs_begin = allocs();
    for _ in 0..cold_iters {
        let out = execute_plan_tensors_with_threads(model, plan, weights, &input, threads)
            .expect("cold run");
        std::hint::black_box(out);
    }
    let cold_allocs = (allocs() - cold_allocs_begin) / cold_iters as u64;
    let cold_ms = cold_begin.elapsed().as_secs_f64() * 1e3 / cold_iters as f64;

    // Warm: compile once, then serve from preallocated state.
    let compile_begin = Instant::now();
    let mut compiled = CompiledPlanExec::compile(model, plan, weights).expect("compile plan");
    let compile_ms = compile_begin.elapsed().as_secs_f64() * 1e3;
    for _ in 0..2 {
        let (out, _) = compiled
            .run_raw_with_threads(weights, input.data(), threads)
            .expect("warmup run");
        std::hint::black_box(out.len());
    }
    {
        let (out, shape) = compiled
            .run_raw_with_threads(weights, input.data(), threads)
            .expect("warm run");
        assert_eq!(shape, reference.shape(), "{plan_name}: warm output shape");
        for (i, (a, b)) in out.iter().zip(reference.data().iter()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{plan_name}: warm output diverges at element {i}"
            );
        }
    }
    let warm_begin = Instant::now();
    let warm_allocs_begin = allocs();
    for _ in 0..warm_iters {
        let (out, _) = compiled
            .run_raw_with_threads(weights, input.data(), threads)
            .expect("warm run");
        std::hint::black_box(out.len());
    }
    let warm_allocs = (allocs() - warm_allocs_begin) / warm_iters as u64;
    let warm_ms = warm_begin.elapsed().as_secs_f64() * 1e3 / warm_iters as f64;

    PlanResult {
        plan_name: plan_name.to_string(),
        parts,
        cold_ms,
        warm_ms,
        cold_allocs,
        warm_allocs,
        warm_qps: 1e3 / warm_ms,
        panel_mb: compiled.panel_bytes() as f64 / 1e6,
        compile_ms,
    }
}

fn render_json(suite: &str, model: &str, threads: usize, results: &[PlanResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"suite\": \"{suite}\",\n"));
    out.push_str(&format!("  \"model\": \"{model}\",\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"plan\": \"{}\", \"parts\": {}, \"cold_ms_per_query\": {:.2}, \"warm_ms_per_query\": {:.2}, \"speedup\": {:.2}, \"cold_allocs_per_query\": {}, \"warm_allocs_per_query\": {}, \"warm_qps\": {:.2}, \"compile_ms\": {:.2}, \"panel_mb\": {:.1}}}{}\n",
            r.plan_name,
            r.parts,
            r.cold_ms,
            r.warm_ms,
            r.cold_ms / r.warm_ms,
            r.cold_allocs,
            r.warm_allocs,
            r.warm_qps,
            r.compile_ms,
            r.panel_mb,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn print_results(results: &[PlanResult]) {
    let mut table = gillis_bench::Table::new(&[
        "plan",
        "parts",
        "cold(ms)",
        "warm(ms)",
        "speedup",
        "cold allocs/q",
        "warm allocs/q",
        "warm qps",
    ]);
    for r in results {
        table.row(vec![
            r.plan_name.clone(),
            format!("{}", r.parts),
            format!("{:.2}", r.cold_ms),
            format!("{:.2}", r.warm_ms),
            format!("{:.2}x", r.cold_ms / r.warm_ms),
            format!("{}", r.cold_allocs),
            format!("{}", r.warm_allocs),
            format!("{:.2}", r.warm_qps),
        ]);
    }
    table.print();
}

/// CI smoke: tiny-vgg at pool width 1 — the warm path must not allocate.
fn run_smoke(out_dir: &str) {
    let model = zoo::tiny_vgg();
    let weights = init_weights(model.graph(), gillis_bench::bench_seed(7)).expect("weights");
    let mut results = Vec::new();
    for (plan, name) in [
        (ExecutionPlan::single_function(&model), "single"),
        (forced_split_plan(&model, 2), "split2"),
    ] {
        plan.validate(&model, u64::MAX).expect("valid plan");
        let r = measure_plan(&model, &weights, &plan, name, 1, 5, 20, 3);
        assert_eq!(
            r.warm_allocs, 0,
            "{name}: warm path allocated {} times per query (expected 0)",
            r.warm_allocs
        );
        results.push(r);
    }
    print_results(&results);
    println!("\nwarm path is allocation-free on tiny-vgg at pool width 1.");
    let path = format!("{out_dir}/BENCH_infer.json");
    std::fs::write(&path, render_json("infer-smoke", "tiny-vgg", 1, &results))
        .expect("write BENCH_infer.json");
    println!("wrote {path}");
}

fn run_full(out_dir: &str) {
    let threads = gillis_pool::gillis_threads();
    println!("Extension: steady-state inference memory plan (VGG-11, {threads} threads)\n");
    let model = zoo::vgg11();
    println!(
        "initializing VGG-11 weights ({} MB)...",
        model.weight_bytes() / 1_000_000
    );
    let weights = init_weights(model.graph(), gillis_bench::bench_seed(7)).expect("weights");

    let mut results = Vec::new();
    for (plan, name) in [
        (ExecutionPlan::single_function(&model), "single"),
        (forced_split_plan(&model, 4), "split4"),
    ] {
        plan.validate(&model, u64::MAX).expect("valid plan");
        println!("measuring plan '{name}'...");
        results.push(measure_plan(
            &model, &weights, &plan, name, threads, 3, 6, 11,
        ));
    }
    println!();
    print_results(&results);

    let path = format!("{out_dir}/BENCH_infer.json");
    std::fs::write(&path, render_json("infer", "vgg11", threads, &results))
        .expect("write BENCH_infer.json");
    println!("\nwrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_dir = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| ".".into());
    if smoke {
        run_smoke(&out_dir);
    } else {
        run_full(&out_dir);
    }
}
