//! Fig 10 reproduction: Gillis latency-optimal vs Default serving on KNIX.
//!
//! KNIX's fast function interaction lets Gillis profit more from
//! parallelization: paper anchors 3x / 2.9x / 1.8x for VGG-16 / VGG-19 /
//! WRN-50-3, and even "thin" classical ResNets accelerate (1.4x / 1.6x /
//! 1.3x for ResNet-34/50/101) where Lambda cannot.

use gillis_bench::{measure_latency_optimal, ms, speedup, Table};
use gillis_faas::PlatformProfile;
use gillis_model::zoo;

fn main() {
    println!("Fig 10: Gillis (latency-optimal) vs Default on KNIX\n");
    let knix = PlatformProfile::knix();
    let lambda = PlatformProfile::aws_lambda();
    let models = [
        zoo::vgg16(),
        zoo::vgg19(),
        zoo::wrn50(3),
        zoo::resnet34(),
        zoo::resnet50(),
        zoo::resnet101(),
    ];
    let mut table = Table::new(&[
        "model",
        "default(ms)",
        "gillis(ms)",
        "KNIX speedup",
        "Lambda speedup",
    ]);
    for model in &models {
        let k = measure_latency_optimal(model, &knix, 100, 23);
        let l = measure_latency_optimal(model, &lambda, 100, 23);
        table.row(vec![
            model.name().to_string(),
            k.default_ms.map(ms).unwrap_or_else(|| "OOM".into()),
            ms(k.gillis_ms),
            speedup(k.speedup()),
            speedup(l.speedup()),
        ]);
    }
    table.print();
    println!("\npaper anchors: KNIX 3x/2.9x/1.8x on VGG-16/VGG-19/WRN-50-3;");
    println!("thin ResNets speed up on KNIX (1.3-1.6x) but not on Lambda.");
}
