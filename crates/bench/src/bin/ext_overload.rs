//! Extension: overload protection under open-loop arrival pressure.
//!
//! A serverless front door that admits every arrival dies politely: with a
//! bounded number of concurrent masters, any arrival rate above saturation
//! grows the queue — and the latency of *every* admitted query — without
//! bound. This experiment sweeps the arrival rate around the saturation
//! point (VGG-11, Lambda, DP plan) and compares two front doors on the same
//! deterministic seed:
//!
//! - **default**: bounded concurrency, unbounded queue, no deadline — the
//!   unprotected baseline that collapses past saturation;
//! - **overload**: [`OverloadPolicy::for_slo`] — queue bounded at twice the
//!   concurrency, per-query deadline at the SLO (2x the predicted plan
//!   latency), shed-on-admission when the predicted wait already misses the
//!   deadline, and per-lane circuit breakers.
//!
//! Chaos composes: when `GILLIS_CHAOS_RATE` is set (the CI combined config)
//! the same fault injector runs under both policies. `GILLIS_OVERLOAD_*`
//! knobs override the protected policy. `--smoke` (CI) runs the 2x cell and
//! asserts the acceptance criteria: shedding happened, and the p99 of
//! admitted queries stayed within 1.5x the SLO.
//!
//! Writes `BENCH_overload.json` (repo root, or the directory given as the
//! first argument).

use gillis_bench::{bench_seed, Table};
use gillis_core::predict::predict_plan;
use gillis_core::{ChaosConfig, DpPartitioner, ForkJoinRuntime, OverloadPolicy, ServingReport};
use gillis_faas::PlatformProfile;
use gillis_model::zoo;
use gillis_perf::PerfModel;

const QUERIES: usize = 400;
const CONCURRENCY: usize = 4;
const SLO_FACTOR: f64 = 2.0;
const RATE_FACTORS: [f64; 5] = [0.5, 1.0, 1.5, 2.0, 3.0];

struct Cell {
    policy: &'static str,
    rate_factor: f64,
    rate_qps: f64,
    report: ServingReport,
}

fn json_report(seed: u64, slo_ms: f64, saturation_qps: f64, cells: &[Cell]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"suite\": \"overload\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"queries\": {QUERIES},\n"));
    out.push_str(&format!("  \"concurrency\": {CONCURRENCY},\n"));
    out.push_str(&format!("  \"slo_ms\": {slo_ms:.2},\n"));
    out.push_str(&format!("  \"saturation_qps\": {saturation_qps:.2},\n"));
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let r = &c.report;
        let o = &r.overload;
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"rate_factor\": {:.2}, \"rate_qps\": {:.2}, \
             \"admitted\": {}, \"shed_queue_full\": {}, \"shed_predicted_miss\": {}, \
             \"deadline_exceeded\": {}, \"cancelled_attempts\": {}, \"peak_queue\": {}, \
             \"breaker_opens\": {}, \"breaker_short_circuits\": {}, \
             \"mean_ms\": {:.2}, \"p99_ms\": {:.2}, \"ok_p99_ms\": {:.2}, \"cold_starts\": {}}}{}\n",
            c.policy,
            c.rate_factor,
            c.rate_qps,
            o.admitted,
            o.shed_queue_full,
            o.shed_predicted_miss,
            r.resilience.deadline_exceeded_queries,
            o.cancelled_attempts,
            o.peak_queue_depth,
            o.breaker_opens,
            o.breaker_short_circuits,
            r.latency.mean(),
            r.latency.percentile(99.0),
            r.by_status.ok.percentile(99.0),
            r.cold_starts,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_dir = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| ".".to_string());
    let seed = bench_seed(42);

    let platform = PlatformProfile::aws_lambda();
    let perf = PerfModel::analytic(&platform);
    let model = zoo::vgg11();
    let plan = DpPartitioner::default()
        .partition(&model, &perf)
        .expect("plan");
    let predicted_ms = predict_plan(&model, &plan, &perf)
        .expect("prediction")
        .latency_ms;
    let slo_ms = SLO_FACTOR * predicted_ms;
    let saturation_qps = 1000.0 * CONCURRENCY as f64 / predicted_ms;
    let chaos = ChaosConfig::from_env();
    let protected_policy =
        OverloadPolicy::from_env().unwrap_or_else(|| OverloadPolicy::for_slo(slo_ms, CONCURRENCY));

    println!("Extension: overload protection under open-loop arrivals (VGG-11, Lambda)\n");
    println!(
        "seed {seed}; plan latency {predicted_ms:.1} ms; SLO {slo_ms:.1} ms; \
         {CONCURRENCY} concurrent masters; saturation {saturation_qps:.1} qps"
    );
    match &chaos {
        Some(c) => println!("chaos: composed from env (rate knobs on seed {})\n", c.seed),
        None => println!("chaos: off (set GILLIS_CHAOS_RATE to compose faults)\n"),
    }

    let policies: [(&'static str, OverloadPolicy); 2] = [
        ("default", OverloadPolicy::unprotected(CONCURRENCY)),
        ("overload", protected_policy),
    ];
    let factors: &[f64] = if smoke { &[2.0] } else { &RATE_FACTORS };

    let mut table = Table::new(&[
        "rate",
        "policy",
        "admitted",
        "shed",
        "deadline-miss",
        "mean(ms)",
        "p99(ms)",
        "ok p99(ms)",
        "cold",
    ]);
    let mut cells = Vec::new();
    for &factor in factors {
        let rate_qps = factor * saturation_qps;
        for (name, policy) in &policies {
            let mut rt = ForkJoinRuntime::new(&model, &plan, platform.clone())
                .expect("runtime")
                .with_overload(*policy)
                .expect("overload policy");
            if let Some(c) = &chaos {
                rt = rt.with_chaos(*c).expect("chaos config");
            }
            let report = rt
                .serve_open_loop(rate_qps, QUERIES, CONCURRENCY, seed)
                .expect("serve");
            table.row(vec![
                format!("{factor:.1}x"),
                (*name).into(),
                format!("{}", report.overload.admitted),
                format!("{}", report.overload.shed()),
                format!("{}", report.resilience.deadline_exceeded_queries),
                format!("{:.0}", report.latency.mean()),
                format!("{:.0}", report.latency.percentile(99.0)),
                format!("{:.0}", report.by_status.ok.percentile(99.0)),
                format!("{}", report.cold_starts),
            ]);
            cells.push(Cell {
                policy: name,
                rate_factor: factor,
                rate_qps,
                report,
            });
        }
    }
    table.print();

    let path = format!("{out_dir}/BENCH_overload.json");
    std::fs::write(&path, json_report(seed, slo_ms, saturation_qps, &cells))
        .expect("write BENCH_overload.json");
    println!("\nwrote {path}");

    // Acceptance criteria, asserted at 2x saturation (the smoke cell).
    let cell = |policy: &str, factor: f64| {
        cells
            .iter()
            .find(|c| c.policy == policy && c.rate_factor == factor)
            .expect("cell")
    };
    let protected = cell("overload", 2.0);
    let unprotected = cell("default", 2.0);
    let shed = protected.report.overload.shed();
    let admitted_p99 = protected.report.latency.percentile(99.0);
    let baseline_p99 = unprotected.report.latency.percentile(99.0);
    println!(
        "\nat 2.0x saturation: overload sheds {} of {} arrivals and holds admitted p99 \
         at {:.0} ms (SLO {:.0} ms); the default front door reaches {:.0} ms",
        shed, QUERIES, admitted_p99, slo_ms, baseline_p99
    );
    assert!(shed > 0, "2x saturation must shed");
    assert!(
        protected.report.overload.admitted + shed == QUERIES as u64,
        "every arrival is admitted or shed"
    );
    assert!(
        admitted_p99 <= 1.5 * slo_ms,
        "admitted p99 {admitted_p99:.1} ms must stay within 1.5x SLO {slo_ms:.1} ms"
    );
    if smoke {
        println!("smoke ok: shed > 0 and admitted p99 within 1.5x SLO at 2x saturation");
    } else {
        assert!(
            baseline_p99 > admitted_p99,
            "the unprotected baseline should be worse at 2x saturation"
        );
        println!("\nexpectation: below saturation the two policies match (nothing sheds, no");
        println!("deadline fires); past saturation the default queue grows without bound while");
        println!("the overload policy sheds arrivals it cannot serve and keeps the served tail");
        println!("near the SLO.");
    }
}
