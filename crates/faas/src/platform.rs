//! Platform profiles: the constants that distinguish AWS Lambda, Google
//! Cloud Functions, and KNIX in the paper's experiments.

use serde::{Deserialize, Serialize};

use crate::exgauss::ExGaussian;
use crate::time::Micros;

/// Which serverless platform a profile models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformKind {
    /// AWS Lambda (3 GB instances, 1 ms billing, §V-A).
    AwsLambda,
    /// Google Cloud Functions (4 GB instances, 100 ms billing).
    GoogleCloudFunctions,
    /// KNIX: open-source platform with compute-collocated storage and fast
    /// function communication (paper Figs 7, 10).
    Knix,
}

impl PlatformKind {
    /// Short display name used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            PlatformKind::AwsLambda => "Lambda",
            PlatformKind::GoogleCloudFunctions => "GCF",
            PlatformKind::Knix => "KNIX",
        }
    }
}

/// Relative compute efficiency per layer class: how far from peak FLOP
/// throughput each kind of kernel runs (dense and recurrent layers are
/// memory-bound on function-class vCPUs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeEfficiency {
    /// Convolution kernels (compute-bound).
    pub conv: f64,
    /// Dense / fully-connected kernels.
    pub dense: f64,
    /// LSTM steps.
    pub recurrent: f64,
    /// Pooling sweeps.
    pub pool: f64,
    /// Element-wise kernels.
    pub element_wise: f64,
}

/// Everything the simulator needs to know about a platform.
///
/// Numbers follow the paper (§II-B, §V-A) and public platform documentation
/// circa the paper's experiments (September–October 2020): Lambda 3 GB
/// instances with 1 ms billing, GCF 4 GB with 100 ms billing and ~300 Mbps
/// networking, KNIX matched to Lambda compute with much faster function
/// interaction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformProfile {
    /// Which platform this profile models.
    pub kind: PlatformKind,
    /// Maximum instance memory in bytes.
    pub instance_memory_bytes: u64,
    /// Model-memory budget `M` per function: the part of instance memory
    /// available for weights after OS/runtime overheads (1.4 GB on Lambda,
    /// paper §V-A).
    pub model_memory_budget: u64,
    /// Billing granularity `D` in milliseconds (paper Eq. 2).
    pub billing_granularity_ms: u64,
    /// Price per GB-second of billed duration (USD).
    pub price_per_gb_s: f64,
    /// Price per invocation (USD); two orders of magnitude below duration
    /// charges in the paper's experiments, kept for completeness.
    pub price_per_invocation: f64,
    /// Function network bandwidth in bits per second (master egress/ingress).
    pub network_bandwidth_bps: f64,
    /// Per-invocation latency jitter (ms), exGaussian per §IV-A.
    pub invoke_latency_ms: ExGaussian,
    /// Cold-start penalty in milliseconds (container provisioning, before
    /// package load).
    pub cold_start_ms: f64,
    /// How long a warm instance lingers before reclaim.
    pub warm_idle_timeout: Micros,
    /// Peak floating-point throughput of one instance, in GFLOP/s.
    pub cpu_gflops: f64,
    /// Per-layer-class efficiency factors.
    pub efficiency: ComputeEfficiency,
    /// Relative standard deviation of compute-time noise.
    pub compute_noise_rel_std: f64,
    /// Fixed per-layer framework overhead in milliseconds.
    pub per_layer_overhead_ms: f64,
    /// Object-store (S3-like) streaming bandwidth in bits per second.
    pub storage_bandwidth_bps: f64,
    /// Object-store per-request latency in milliseconds.
    pub storage_latency_ms: f64,
    /// Probability that a single function invocation fails (crash or
    /// network error) and must be retried by the caller. Real platforms see
    /// rare-but-nonzero failures; defaults to 0 so experiments match the
    /// paper, and failure-injection tests raise it.
    pub invocation_failure_rate: f64,
}

impl PlatformProfile {
    /// AWS Lambda profile at the paper's experiment time: 3 GB instances,
    /// `M = 1.4 GB`, 1 ms billing, ~0.6 Gbps networking.
    pub fn aws_lambda() -> Self {
        PlatformProfile {
            kind: PlatformKind::AwsLambda,
            instance_memory_bytes: 3_000_000_000,
            model_memory_budget: 1_400_000_000,
            billing_granularity_ms: 1,
            price_per_gb_s: 0.0000166667,
            price_per_invocation: 0.0000002,
            network_bandwidth_bps: 600e6,
            invoke_latency_ms: ExGaussian::new(5.0, 1.5, 1.0 / 7.0)
                .expect("valid lambda latency distribution"),
            cold_start_ms: 250.0,
            warm_idle_timeout: Micros::from_secs(600),
            cpu_gflops: 28.0,
            efficiency: ComputeEfficiency {
                conv: 1.0,
                dense: 0.35,
                recurrent: 0.40,
                pool: 0.60,
                element_wise: 0.30,
            },
            compute_noise_rel_std: 0.02,
            per_layer_overhead_ms: 0.05,
            storage_bandwidth_bps: 960e6, // ~120 MB/s per S3 connection
            storage_latency_ms: 30.0,
            invocation_failure_rate: 0.0,
        }
    }

    /// Google Cloud Functions profile: 4 GB instances, 100 ms billing,
    /// ~300 Mbps networking (§II-B), somewhat faster CPU than a 3 GB Lambda.
    pub fn gcf() -> Self {
        PlatformProfile {
            kind: PlatformKind::GoogleCloudFunctions,
            instance_memory_bytes: 4_000_000_000,
            model_memory_budget: 2_000_000_000,
            billing_granularity_ms: 100,
            price_per_gb_s: 0.0000025,
            price_per_invocation: 0.0000004,
            network_bandwidth_bps: 300e6,
            invoke_latency_ms: ExGaussian::new(9.0, 2.5, 1.0 / 10.0)
                .expect("valid gcf latency distribution"),
            cold_start_ms: 400.0,
            warm_idle_timeout: Micros::from_secs(600),
            cpu_gflops: 45.0,
            efficiency: ComputeEfficiency {
                conv: 1.0,
                dense: 0.35,
                recurrent: 0.40,
                pool: 0.60,
                element_wise: 0.30,
            },
            compute_noise_rel_std: 0.02,
            per_layer_overhead_ms: 0.05,
            storage_bandwidth_bps: 960e6,
            storage_latency_ms: 35.0,
            invocation_failure_rate: 0.0,
        }
    }

    /// KNIX profile: function resources configured to match a Lambda
    /// instance (§V-A) with compute-collocated storage, so function
    /// interaction is an order of magnitude faster (Figs 7, 10).
    pub fn knix() -> Self {
        PlatformProfile {
            kind: PlatformKind::Knix,
            instance_memory_bytes: 3_000_000_000,
            model_memory_budget: 1_400_000_000,
            billing_granularity_ms: 1,
            price_per_gb_s: 0.0000166667,
            price_per_invocation: 0.0000002,
            network_bandwidth_bps: 4e9,
            invoke_latency_ms: ExGaussian::new(0.8, 0.3, 1.0 / 1.2)
                .expect("valid knix latency distribution"),
            cold_start_ms: 120.0,
            warm_idle_timeout: Micros::from_secs(600),
            cpu_gflops: 28.0,
            efficiency: ComputeEfficiency {
                conv: 1.0,
                dense: 0.35,
                recurrent: 0.40,
                pool: 0.60,
                element_wise: 0.30,
            },
            compute_noise_rel_std: 0.02,
            per_layer_overhead_ms: 0.05,
            storage_bandwidth_bps: 4e9,
            storage_latency_ms: 1.0,
            invocation_failure_rate: 0.0,
        }
    }

    /// A Lambda-style memory-scaled variant of this profile.
    ///
    /// Serverless platforms allocate CPU proportionally to the configured
    /// memory size (AWS documents linear vCPU scaling with memory), so a
    /// bigger function runs compute faster but bills more GB-seconds for
    /// the same wall time. This is the axis the joint batch×memory
    /// configurator searches (HarmonyBatch-style): `cpu_gflops` and the
    /// model-memory budget scale linearly with the memory factor, while
    /// network bandwidth, invocation jitter, and per-GB-second pricing stay
    /// fixed — compute amortizes with memory, transfers do not.
    ///
    /// # Panics
    ///
    /// Panics if `memory_bytes` is zero.
    pub fn with_memory_bytes(&self, memory_bytes: u64) -> Self {
        assert!(memory_bytes > 0, "instance memory must be positive");
        let factor = memory_bytes as f64 / self.instance_memory_bytes as f64;
        let mut scaled = self.clone();
        scaled.instance_memory_bytes = memory_bytes;
        scaled.model_memory_budget = (self.model_memory_budget as f64 * factor).round() as u64;
        scaled.cpu_gflops = self.cpu_gflops * factor;
        scaled
    }

    /// Mean time to move `bytes` over the function network (excluding
    /// invocation jitter).
    pub fn transfer_ms(&self, bytes: u64) -> f64 {
        bytes as f64 * 8.0 / self.network_bandwidth_bps * 1000.0
    }

    /// Mean time to read `bytes` from the object store (one GET).
    pub fn storage_read_ms(&self, bytes: u64) -> f64 {
        self.storage_latency_ms + bytes as f64 * 8.0 / self.storage_bandwidth_bps * 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_paper_constants() {
        let lambda = PlatformProfile::aws_lambda();
        assert_eq!(lambda.billing_granularity_ms, 1);
        assert_eq!(lambda.model_memory_budget, 1_400_000_000);
        assert_eq!(lambda.instance_memory_bytes, 3_000_000_000);

        let gcf = PlatformProfile::gcf();
        assert_eq!(gcf.billing_granularity_ms, 100);
        assert_eq!(gcf.instance_memory_bytes, 4_000_000_000);

        let knix = PlatformProfile::knix();
        // KNIX compute is configured to match Lambda (§V-A)...
        assert_eq!(knix.cpu_gflops, lambda.cpu_gflops);
        // ...but its function interaction is much faster (Fig 7).
        assert!(knix.invoke_latency_ms.mean() < lambda.invoke_latency_ms.mean() / 3.0);
        assert!(knix.network_bandwidth_bps > lambda.network_bandwidth_bps);
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let p = PlatformProfile::aws_lambda();
        let t1 = p.transfer_ms(1_000_000);
        let t2 = p.transfer_ms(2_000_000);
        assert!((t2 - 2.0 * t1).abs() < 1e-9);
        // 1 MB at 600 Mbps ≈ 13.3 ms.
        assert!((t1 - 13.33).abs() < 0.1, "t1 = {t1}");
    }

    #[test]
    fn storage_read_includes_latency_floor() {
        let p = PlatformProfile::aws_lambda();
        assert!(p.storage_read_ms(0) >= 30.0);
        let big = p.storage_read_ms(1_000_000_000);
        // 1 GB at ~120 MB/s ≈ 8.3 s.
        assert!(big > 8000.0 && big < 9000.0, "big = {big}");
    }

    #[test]
    fn memory_scaling_is_linear_in_cpu_and_budget() {
        let base = PlatformProfile::aws_lambda();
        let double = base.with_memory_bytes(2 * base.instance_memory_bytes);
        assert_eq!(double.instance_memory_bytes, 6_000_000_000);
        assert!((double.cpu_gflops - 2.0 * base.cpu_gflops).abs() < 1e-9);
        assert_eq!(double.model_memory_budget, 2_800_000_000);
        // Network and pricing constants do not scale with memory.
        assert_eq!(double.network_bandwidth_bps, base.network_bandwidth_bps);
        assert_eq!(double.price_per_gb_s, base.price_per_gb_s);
        assert_eq!(double.billing_granularity_ms, base.billing_granularity_ms);
        // Scaling down works too.
        let half = base.with_memory_bytes(base.instance_memory_bytes / 2);
        assert!((half.cpu_gflops - base.cpu_gflops / 2.0).abs() < 1e-9);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(PlatformKind::AwsLambda.label(), "Lambda");
        assert_eq!(PlatformKind::GoogleCloudFunctions.label(), "GCF");
        assert_eq!(PlatformKind::Knix.label(), "KNIX");
    }
}
