//! A minimal VM serving pool — the conventional substrate the paper's
//! motivation compares against (§II-A).
//!
//! VMs deliver cost-effective throughput for stable load but provision in
//! minutes, so bursts either queue (under-provisioned) or waste money
//! (over-provisioned, e.g. SageMaker's 2× factor). This model captures just
//! that: a fixed pool of VM workers with FIFO queueing and an hourly price.

use serde::{Deserialize, Serialize};

use crate::error::FaasError;
use crate::time::Micros;
use crate::Result;

/// A fixed pool of identical VM servers, each serving one query at a time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmPool {
    /// Number of VMs.
    pub vms: usize,
    /// Service time of one query on one VM, in milliseconds.
    pub service_ms: f64,
    /// Price per VM-hour (USD).
    pub price_per_hour: f64,
    /// Time each VM becomes free.
    next_free: Vec<Micros>,
    queued: u64,
    served: u64,
}

/// Outcome of offering a query to the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmService {
    /// When service begins (>= arrival when the pool is busy).
    pub start: Micros,
    /// When the response is ready.
    pub done: Micros,
    /// Whether the query had to wait in the queue.
    pub queued: bool,
}

impl VmPool {
    /// Creates a pool.
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::InvalidArgument`] for an empty pool or
    /// non-positive service time.
    pub fn new(vms: usize, service_ms: f64, price_per_hour: f64) -> Result<Self> {
        if vms == 0 || service_ms <= 0.0 || service_ms.is_nan() {
            return Err(FaasError::InvalidArgument(
                "vm pool needs >= 1 vm and positive service time".into(),
            ));
        }
        Ok(VmPool {
            vms,
            service_ms,
            price_per_hour,
            next_free: vec![Micros::ZERO; vms],
            queued: 0,
            served: 0,
        })
    }

    /// When the next VM would be free for a query arriving at `now` —
    /// without committing it. Use to decide whether to offload to
    /// serverless instead.
    pub fn earliest_start(&self, now: Micros) -> Micros {
        self.next_free
            .iter()
            .copied()
            .min()
            .expect("pool is non-empty")
            .max(now)
    }

    /// Serves a query arriving at `now` on the earliest-free VM (FIFO).
    pub fn serve(&mut self, now: Micros) -> VmService {
        let idx = self
            .next_free
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .map(|(i, _)| i)
            .expect("pool is non-empty");
        let start = self.next_free[idx].max(now);
        let done = start + Micros::from_ms(self.service_ms);
        let queued = start > now;
        self.next_free[idx] = done;
        self.queued += queued as u64;
        self.served += 1;
        VmService {
            start,
            done,
            queued,
        }
    }

    /// `(served, queued)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.served, self.queued)
    }

    /// Total VM cost for an experiment spanning `duration` (the pool is
    /// always on, whether busy or idle).
    pub fn cost_usd(&self, duration: Micros) -> f64 {
        self.vms as f64 * self.price_per_hour * duration.as_secs() / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> VmPool {
        VmPool::new(2, 100.0, 0.34).unwrap()
    }

    #[test]
    fn validates_arguments() {
        assert!(VmPool::new(0, 100.0, 0.1).is_err());
        assert!(VmPool::new(1, 0.0, 0.1).is_err());
    }

    #[test]
    fn idle_pool_serves_immediately() {
        let mut p = pool();
        let s = p.serve(Micros::from_ms(5.0));
        assert_eq!(s.start, Micros::from_ms(5.0));
        assert_eq!(s.done, Micros::from_ms(105.0));
        assert!(!s.queued);
    }

    #[test]
    fn saturated_pool_queues_fifo() {
        let mut p = pool();
        // Three simultaneous arrivals on two VMs: the third waits.
        let a = p.serve(Micros::ZERO);
        let b = p.serve(Micros::ZERO);
        let c = p.serve(Micros::ZERO);
        assert!(!a.queued && !b.queued);
        assert!(c.queued);
        assert_eq!(c.start, a.done.min(b.done));
        let (served, queued) = p.stats();
        assert_eq!((served, queued), (3, 1));
    }

    #[test]
    fn earliest_start_previews_without_committing() {
        let mut p = pool();
        let _ = p.serve(Micros::ZERO);
        let _ = p.serve(Micros::ZERO);
        let preview = p.earliest_start(Micros::from_ms(1.0));
        assert_eq!(preview, Micros::from_ms(100.0));
        let (served, _) = p.stats();
        assert_eq!(served, 2, "preview must not serve");
    }

    #[test]
    fn cost_scales_with_time_and_size() {
        let p = pool();
        let one_hour = Micros::from_secs(3600);
        assert!((p.cost_usd(one_hour) - 0.68).abs() < 1e-9);
        let p4 = VmPool::new(4, 100.0, 0.34).unwrap();
        assert!((p4.cost_usd(one_hour) - 1.36).abs() < 1e-9);
    }
}
