//! Latency recorders for serving experiments.

use serde::{Deserialize, Serialize};

/// Accumulates latency samples (milliseconds) and reports summary statistics.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencyStats {
    samples_ms: Vec<f64>,
}

impl LatencyStats {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        LatencyStats::default()
    }

    /// Records one latency sample in milliseconds.
    pub fn record(&mut self, ms: f64) {
        self.samples_ms.push(ms);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples_ms.len()
    }

    /// Mean latency — the paper's SLO metric (§IV-C).
    pub fn mean(&self) -> f64 {
        crate::stats::mean(&self.samples_ms)
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        crate::stats::variance(&self.samples_ms).sqrt()
    }

    /// The `p`-th percentile (0 < p <= 100), by nearest-rank on the sorted
    /// samples. Returns 0 for an empty recorder.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p <= 100.0, "percentile must be in (0, 100]");
        if self.samples_ms.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
    }

    /// Minimum sample (0 when empty).
    pub fn min(&self) -> f64 {
        self.samples_ms
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .min(f64::MAX)
            .clamp(0.0, f64::MAX)
            * if self.samples_ms.is_empty() { 0.0 } else { 1.0 }
    }

    /// Maximum sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.samples_ms.iter().copied().fold(0.0, f64::max)
    }

    /// Immutable view of the raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples_ms
    }

    /// Folds another replication's samples into this recorder.
    pub fn absorb(&mut self, other: &LatencyStats) {
        self.samples_ms.extend_from_slice(&other.samples_ms);
    }
}

/// Latency recorders split by query outcome, so degraded local-fallback
/// latencies and deadline-expired queries do not dilute the ok-path p99.
///
/// Shed queries never execute, so they have no latency and no recorder
/// here; they appear only in the overload counters.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StatusLatency {
    /// Queries fully served by workers.
    pub ok: LatencyStats,
    /// Queries that completed only via master-local fallback.
    pub degraded: LatencyStats,
    /// Queries that produced no result (latency until failure detection).
    pub failed: LatencyStats,
    /// Queries cancelled mid-plan by deadline expiry (latency until
    /// cancellation took effect).
    pub deadline_exceeded: LatencyStats,
}

impl StatusLatency {
    /// Creates empty per-status recorders.
    pub fn new() -> Self {
        StatusLatency::default()
    }

    /// Records one query latency under its terminal status. Shed queries
    /// are ignored: they never ran.
    pub fn record(&mut self, status: crate::chaos::QueryStatus, ms: f64) {
        use crate::chaos::QueryStatus;
        match status {
            QueryStatus::Ok => self.ok.record(ms),
            QueryStatus::Degraded => self.degraded.record(ms),
            QueryStatus::Failed => self.failed.record(ms),
            QueryStatus::DeadlineExceeded => self.deadline_exceeded.record(ms),
            QueryStatus::Shed => {}
        }
    }

    /// Total samples across all statuses.
    pub fn count(&self) -> usize {
        self.ok.count()
            + self.degraded.count()
            + self.failed.count()
            + self.deadline_exceeded.count()
    }

    /// Folds another replication's per-status samples into this recorder.
    pub fn absorb(&mut self, other: &StatusLatency) {
        self.ok.absorb(&other.ok);
        self.degraded.absorb(&other.degraded);
        self.failed.absorb(&other.failed);
        self.deadline_exceeded.absorb(&other.deadline_exceeded);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics() {
        let mut s = LatencyStats::new();
        for v in [10.0, 20.0, 30.0, 40.0, 50.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 5);
        assert!((s.mean() - 30.0).abs() < 1e-9);
        assert_eq!(s.percentile(50.0), 30.0);
        assert_eq!(s.percentile(100.0), 50.0);
        assert_eq!(s.percentile(20.0), 10.0);
        assert_eq!(s.min(), 10.0);
        assert_eq!(s.max(), 50.0);
        assert!(s.std_dev() > 0.0);
    }

    #[test]
    fn empty_recorder_is_safe() {
        let s = LatencyStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(99.0), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.min(), 0.0);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn out_of_range_percentile_panics() {
        let s = LatencyStats::new();
        let _ = s.percentile(0.0);
    }

    #[test]
    fn p99_catches_tail() {
        let mut s = LatencyStats::new();
        for _ in 0..99 {
            s.record(10.0);
        }
        s.record(1000.0);
        assert_eq!(s.percentile(99.0), 10.0);
        assert_eq!(s.percentile(99.5), 1000.0);
    }
}
