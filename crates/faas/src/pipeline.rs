//! Pipeline-parallel serving policy: per-stage lane pools and bounded
//! inter-stage queues.
//!
//! Fork-join serving executes one layer group at a time per query, so at
//! steady state every other group's workers idle. Pipeline serving
//! (FuncPipe-style) turns each layer group into a *stage* with its own pool
//! of `lanes` concurrent stage executors and a bounded hand-off queue in
//! front of it; different queries occupy different stages simultaneously,
//! and steady-state throughput is bounded by the slowest stage rather than
//! by the end-to-end latency.
//!
//! This module holds the *policy* half (how many lanes per stage, how deep
//! the inter-stage queues are); the serving runtime in `gillis-core` turns
//! it into a discrete-event pipeline on the virtual clock with deterministic
//! backpressure: a query that finishes a stage while the downstream queue is
//! full *parks*, holding its lane, until the downstream stage drains — no
//! query is ever dropped silently.
//!
//! Like the batching and overload policies ([`crate::batch`],
//! [`crate::overload`]), every decision here is a pure function of the
//! policy, the virtual arrival times, and the seed — never of wall-clock
//! time or thread scheduling.

use serde::{Deserialize, Serialize};

use crate::error::FaasError;
use crate::Result;

/// How the serving path streams queries through layer-group stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelinePolicy {
    /// Concurrent stage executors per stage (≥ 1). Each lane is one master
    /// function instance of that stage, with its own worker fan-out.
    pub lanes: usize,
    /// Bounded inter-stage queue depth (≥ 1). When a downstream queue is
    /// full, the upstream query parks and holds its lane — backpressure
    /// propagates toward admission instead of growing unbounded buffers.
    pub queue_depth: usize,
}

impl PipelinePolicy {
    /// A pipeline with `lanes` executors per stage and a default queue depth
    /// of two entries per lane (enough to absorb stage-time jitter without
    /// hiding a persistent imbalance).
    pub fn with_lanes(lanes: usize) -> Self {
        PipelinePolicy {
            lanes,
            queue_depth: lanes.saturating_mul(2).max(1),
        }
    }

    /// One lane per stage: queries still overlap across stages, but each
    /// stage serves strictly in arrival order.
    pub fn single_lane() -> Self {
        PipelinePolicy::with_lanes(1)
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::InvalidArgument`] for zero lanes or a zero
    /// queue depth.
    pub fn validate(&self) -> Result<()> {
        if self.lanes == 0 {
            return Err(FaasError::InvalidArgument(
                "pipeline lanes must be >= 1".into(),
            ));
        }
        if self.queue_depth == 0 {
            return Err(FaasError::InvalidArgument(
                "pipeline queue_depth must be >= 1".into(),
            ));
        }
        Ok(())
    }

    /// Serializes the policy to the compact one-line `key=value` deployment
    /// format shared with the overload/batch/brownout policies.
    pub fn to_text(&self) -> String {
        format!(
            "gillis-pipeline v1\nlanes={} queue_depth={}\n",
            self.lanes, self.queue_depth
        )
    }

    /// Parses the format produced by [`PipelinePolicy::to_text`] and
    /// validates the result.
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::InvalidArgument`] on header, field, or
    /// validation errors.
    pub fn from_text(text: &str) -> Result<Self> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines
            .next()
            .ok_or_else(|| FaasError::InvalidArgument("empty pipeline policy text".into()))?;
        if header.trim() != "gillis-pipeline v1" {
            return Err(FaasError::InvalidArgument(format!(
                "unknown pipeline policy header: {header}"
            )));
        }
        let mut policy = PipelinePolicy::single_lane();
        for token in lines.flat_map(str::split_whitespace) {
            let (key, value) = token.split_once('=').ok_or_else(|| {
                FaasError::InvalidArgument(format!("expected key=value, got: {token}"))
            })?;
            let bad =
                |what: &str| FaasError::InvalidArgument(format!("bad pipeline {what}: {value}"));
            match key {
                "lanes" => policy.lanes = value.parse().map_err(|_| bad("lanes"))?,
                "queue_depth" => {
                    policy.queue_depth = value.parse().map_err(|_| bad("queue_depth"))?;
                }
                other => {
                    return Err(FaasError::InvalidArgument(format!(
                        "unknown pipeline policy key: {other}"
                    )));
                }
            }
        }
        policy.validate()?;
        Ok(policy)
    }

    /// Reads pipeline knobs from the environment, mirroring
    /// [`crate::batch::BatchPolicy::from_env`]: `GILLIS_PIPELINE_LANES`
    /// enables the policy (required); `GILLIS_PIPELINE_QUEUE` overrides the
    /// default queue depth. Returns `None` when the enabling variable is
    /// unset or unparseable and for invalid combinations; malformed values
    /// are reported on stderr (see [`crate::envutil`]).
    pub fn from_env() -> Option<Self> {
        use crate::envutil::env_var as var;
        let lanes: usize = var("GILLIS_PIPELINE_LANES")?;
        let mut policy = PipelinePolicy::with_lanes(lanes);
        if let Some(q) = var("GILLIS_PIPELINE_QUEUE") {
            policy.queue_depth = q;
        }
        policy.validate().ok().map(|()| policy)
    }
}

/// Honest pipeline accounting across a serving run, reported next to the
/// overload and batch counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PipelineCounters {
    /// Stages in the served plan (max across absorbed replications).
    pub stages: u64,
    /// Stage executions dispatched (one per query per stage it reached).
    pub stage_dispatches: u64,
    /// Inter-stage activation hand-offs performed (dispatches past stage 0).
    pub handoffs: u64,
    /// Times a query finished a stage while the downstream queue was full
    /// and parked holding its lane (backpressure events).
    pub backpressure_stalls: u64,
    /// Largest inter-stage queue occupancy observed.
    pub peak_stage_queue: u64,
}

impl PipelineCounters {
    /// Folds another counter set into this one.
    pub fn absorb(&mut self, other: &PipelineCounters) {
        self.stages = self.stages.max(other.stages);
        self.stage_dispatches += other.stage_dispatches;
        self.handoffs += other.handoffs;
        self.backpressure_stalls += other.backpressure_stalls;
        self.peak_stage_queue = self.peak_stage_queue.max(other.peak_stage_queue);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_validation() {
        assert!(PipelinePolicy::single_lane().validate().is_ok());
        assert!(PipelinePolicy::with_lanes(4).validate().is_ok());
        assert!(PipelinePolicy {
            lanes: 0,
            queue_depth: 4
        }
        .validate()
        .is_err());
        assert!(PipelinePolicy {
            lanes: 2,
            queue_depth: 0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn with_lanes_sizes_the_queue() {
        let p = PipelinePolicy::with_lanes(4);
        assert_eq!(p.lanes, 4);
        assert_eq!(p.queue_depth, 8);
        assert_eq!(PipelinePolicy::single_lane().queue_depth, 2);
    }

    #[test]
    fn policy_text_round_trips() {
        for policy in [
            PipelinePolicy::single_lane(),
            PipelinePolicy::with_lanes(4),
            PipelinePolicy {
                lanes: 3,
                queue_depth: 17,
            },
        ] {
            let text = policy.to_text();
            let parsed = PipelinePolicy::from_text(&text).unwrap();
            assert_eq!(policy, parsed, "{text}");
        }
        assert!(PipelinePolicy::from_text("").is_err());
        assert!(PipelinePolicy::from_text("nope\nlanes=2").is_err());
        assert!(PipelinePolicy::from_text("gillis-pipeline v1\nlanes").is_err());
        assert!(PipelinePolicy::from_text("gillis-pipeline v1\nlanes=x").is_err());
        assert!(PipelinePolicy::from_text("gillis-pipeline v1\nwat=1").is_err());
        // Parsed policies are validated.
        assert!(PipelinePolicy::from_text("gillis-pipeline v1\nlanes=0").is_err());
    }

    #[test]
    fn env_parsing_requires_the_enabling_variable() {
        // from_env is driven by process-global env vars; only exercise the
        // unset path here (CI never sets these for unit tests).
        if std::env::var("GILLIS_PIPELINE_LANES").is_err() {
            assert!(PipelinePolicy::from_env().is_none());
        }
    }

    #[test]
    fn counters_absorb() {
        let a = PipelineCounters {
            stages: 3,
            stage_dispatches: 30,
            handoffs: 20,
            backpressure_stalls: 4,
            peak_stage_queue: 6,
        };
        let mut b = PipelineCounters {
            stages: 2,
            peak_stage_queue: 9,
            ..PipelineCounters::default()
        };
        b.absorb(&a);
        assert_eq!(b.stages, 3, "stages is a max, not a sum");
        assert_eq!(b.stage_dispatches, 30);
        assert_eq!(b.peak_stage_queue, 9, "peak is a max, not a sum");
        b.absorb(&a);
        assert_eq!(b.handoffs, 40);
        assert_eq!(b.backpressure_stalls, 8);
    }
}
