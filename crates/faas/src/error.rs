//! Error type for the platform simulator.

use std::fmt;

/// Error returned by simulator operations.
#[derive(Debug, Clone, PartialEq)]
pub enum FaasError {
    /// A function was deployed or invoked with a memory requirement above
    /// the platform's instance size — the out-of-memory condition that
    /// motivates the whole paper.
    OutOfMemory {
        /// Requested bytes.
        requested: u64,
        /// Instance limit in bytes.
        limit: u64,
    },
    /// An object key was not found in the store.
    NoSuchObject(String),
    /// A function name was not found in the fleet registry.
    NoSuchFunction(String),
    /// An argument was structurally invalid (e.g. a non-positive rate).
    InvalidArgument(String),
}

impl fmt::Display for FaasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaasError::OutOfMemory { requested, limit } => write!(
                f,
                "out of memory: requested {requested} bytes exceeds instance limit {limit}"
            ),
            FaasError::NoSuchObject(key) => write!(f, "no such object: {key}"),
            FaasError::NoSuchFunction(name) => write!(f, "no such function: {name}"),
            FaasError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for FaasError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FaasError::OutOfMemory {
            requested: 2_000_000_000,
            limit: 1_400_000_000,
        };
        assert!(e.to_string().contains("out of memory"));
        assert!(FaasError::NoSuchObject("k".into())
            .to_string()
            .contains('k'));
        assert!(FaasError::NoSuchFunction("f".into())
            .to_string()
            .contains('f'));
        assert!(FaasError::InvalidArgument("x".into())
            .to_string()
            .contains('x'));
    }
}
