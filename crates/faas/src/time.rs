//! Virtual time: microsecond ticks.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point (or span) of virtual time in microseconds.
///
/// The simulator works in integer microseconds to keep event ordering exact;
/// latencies are reported in milliseconds via [`Micros::as_ms`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Micros(pub u64);

impl Micros {
    /// Zero time.
    pub const ZERO: Micros = Micros(0);

    /// Converts from (possibly fractional) milliseconds, rounding to the
    /// nearest microsecond.
    pub fn from_ms(ms: f64) -> Micros {
        Micros((ms.max(0.0) * 1000.0).round() as u64)
    }

    /// Converts from whole seconds.
    pub fn from_secs(s: u64) -> Micros {
        Micros(s * 1_000_000)
    }

    /// This time in fractional milliseconds.
    pub fn as_ms(&self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// This time in fractional seconds.
    pub fn as_secs(&self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(&self, other: Micros) -> Micros {
        Micros(self.0.saturating_sub(other.0))
    }
}

impl Add for Micros {
    type Output = Micros;
    fn add(self, rhs: Micros) -> Micros {
        Micros(self.0 + rhs.0)
    }
}

impl AddAssign for Micros {
    fn add_assign(&mut self, rhs: Micros) {
        self.0 += rhs.0;
    }
}

impl Sub for Micros {
    type Output = Micros;
    /// # Panics
    ///
    /// Panics in debug builds on underflow, like integer subtraction.
    fn sub(self, rhs: Micros) -> Micros {
        Micros(self.0 - rhs.0)
    }
}

impl fmt::Display for Micros {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_ms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ms_roundtrip() {
        let t = Micros::from_ms(12.345);
        assert_eq!(t.0, 12345);
        assert!((t.as_ms() - 12.345).abs() < 1e-9);
        assert_eq!(Micros::from_secs(2).0, 2_000_000);
    }

    #[test]
    fn negative_ms_clamps_to_zero() {
        assert_eq!(Micros::from_ms(-5.0), Micros::ZERO);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = Micros(100);
        let b = Micros(250);
        assert_eq!(a + b, Micros(350));
        assert_eq!(b - a, Micros(150));
        assert_eq!(a.saturating_sub(b), Micros::ZERO);
        assert!(a < b);
        let mut c = a;
        c += b;
        assert_eq!(c, Micros(350));
    }

    #[test]
    fn display_shows_millis() {
        assert_eq!(Micros(1500).to_string(), "1.500ms");
    }
}
