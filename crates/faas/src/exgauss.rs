//! The exponentially-modified Gaussian (exGaussian) distribution.
//!
//! The paper's measurements show function communication delays in AWS Lambda
//! follow an exGaussian (§IV-A); the performance model predicts the maximum
//! delay of `n` concurrent invocations with the `n`-th order statistic of the
//! fitted distribution. This module provides sampling, density/CDF, moments,
//! and a numerical expected-maximum.

use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::error::FaasError;
use crate::stats::{normal_cdf, sample_exponential, sample_standard_normal};
use crate::Result;

/// ExGaussian distribution: `Normal(mu, sigma) + Exp(rate)`, all in the same
/// unit (the simulator uses milliseconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExGaussian {
    /// Gaussian mean.
    pub mu: f64,
    /// Gaussian standard deviation.
    pub sigma: f64,
    /// Exponential rate (inverse of the exponential tail's mean).
    pub rate: f64,
}

impl ExGaussian {
    /// Creates an exGaussian, validating its parameters.
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::InvalidArgument`] unless `sigma > 0` and
    /// `rate > 0`.
    pub fn new(mu: f64, sigma: f64, rate: f64) -> Result<Self> {
        if sigma <= 0.0 || sigma.is_nan() || rate <= 0.0 || rate.is_nan() || !mu.is_finite() {
            return Err(FaasError::InvalidArgument(format!(
                "exgaussian needs sigma > 0 and rate > 0, got mu={mu}, sigma={sigma}, rate={rate}"
            )));
        }
        Ok(ExGaussian { mu, sigma, rate })
    }

    /// Distribution mean: `mu + 1/rate`.
    pub fn mean(&self) -> f64 {
        self.mu + 1.0 / self.rate
    }

    /// Distribution variance: `sigma^2 + 1/rate^2`.
    pub fn variance(&self) -> f64 {
        self.sigma * self.sigma + 1.0 / (self.rate * self.rate)
    }

    /// Distribution skewness.
    pub fn skewness(&self) -> f64 {
        let tau = 1.0 / self.rate;
        2.0 * tau.powi(3) / self.variance().powf(1.5)
    }

    /// Draws one sample.
    pub fn sample<R: RngExt + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mu + self.sigma * sample_standard_normal(rng) + sample_exponential(rng, self.rate)
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        let u = (x - self.mu) / self.sigma;
        let ls = self.rate * self.sigma;
        // F(x) = Phi(u) - exp(-rate (x - mu) + (rate sigma)^2 / 2) Phi(u - ls)
        let v = u - ls;
        let exponent = -self.rate * (x - self.mu) + 0.5 * ls * ls;
        let correction = if v < -6.0 {
            // The exponential amplifies Phi(v)'s absolute error
            // catastrophically when ls is large. In log space with the
            // Mills-ratio asymptotic Phi(v) ~ phi(v)/(-v), the product
            // collapses algebraically: exp(exponent) * phi(v) = phi(u), so
            // exp(exponent) * Phi(v) ~ phi(u)/(-v) — stable and monotone.
            crate::stats::normal_pdf(u) / (-v)
        } else if exponent > 700.0 {
            // Far left tail with moderate v: the CDF is 0 to double
            // precision.
            return 0.0;
        } else {
            exponent.exp() * normal_cdf(v)
        };
        (normal_cdf(u) - correction).clamp(0.0, 1.0)
    }

    /// Approximate upper quantile at probability `p` (e.g. `0.95`):
    /// `mu + sigma * z_p + (-ln(1 - p)) / rate`, the Gaussian quantile plus
    /// the exponential tail's quantile. The sum of component quantiles
    /// slightly over-estimates the true quantile, which is the conservative
    /// direction for deriving timeouts and hedge delays.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is in `(0, 1)`.
    pub fn upper_quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile probability must be in (0, 1)");
        // Acklam-style rational approximation of the standard normal
        // quantile, accurate to ~1e-9 over (0, 1).
        let z = {
            let (a, b) = if p < 0.5 { (p, -1.0) } else { (1.0 - p, 1.0) };
            let t = (-2.0 * a.ln()).sqrt();
            b * (t
                - (2.515517 + 0.802853 * t + 0.010328 * t * t)
                    / (1.0 + 1.432788 * t + 0.189269 * t * t + 0.001308 * t * t * t))
        };
        self.mu + self.sigma * z + (-(1.0 - p).ln()) / self.rate
    }

    /// Expected maximum of `n` i.i.d. draws (the `n`-th order statistic's
    /// mean), computed by numerically integrating `E[max] = ub - ∫ F(x)^n dx`
    /// over a generous support.
    ///
    /// This is the quantity the paper's performance model uses to predict the
    /// fork latency of `n` concurrent worker invocations.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn expected_max(&self, n: usize) -> f64 {
        assert!(n > 0, "expected_max of zero samples");
        let sd = self.variance().sqrt();
        // Support comfortably covering the max of n draws.
        let lo = self.mu - 8.0 * self.sigma;
        let hi = self.mean() + sd * (10.0 + 3.0 * (n as f64).ln());
        let steps = 4000;
        let dx = (hi - lo) / steps as f64;
        // E[max] = lo + ∫_lo^hi (1 - F(x)^n) dx for max >= lo a.s. (approx).
        let mut acc = 0.0;
        for i in 0..steps {
            let x = lo + (i as f64 + 0.5) * dx;
            acc += (1.0 - self.cdf(x).powi(n as i32)) * dx;
        }
        lo + acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{mean as smean, skewness as sskew, variance as svar};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dist() -> ExGaussian {
        ExGaussian::new(5.0, 1.5, 1.0 / 7.0).unwrap()
    }

    #[test]
    fn constructor_validates() {
        assert!(ExGaussian::new(1.0, 0.0, 1.0).is_err());
        assert!(ExGaussian::new(1.0, 1.0, 0.0).is_err());
        assert!(ExGaussian::new(f64::NAN, 1.0, 1.0).is_err());
        assert!(ExGaussian::new(0.0, 0.1, 10.0).is_ok());
    }

    #[test]
    fn analytic_moments() {
        let d = dist();
        assert!((d.mean() - 12.0).abs() < 1e-9);
        assert!((d.variance() - (2.25 + 49.0)).abs() < 1e-9);
        assert!(d.skewness() > 0.0);
    }

    #[test]
    fn sample_moments_match_analytic() {
        let d = dist();
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<f64> = (0..30_000).map(|_| d.sample(&mut rng)).collect();
        assert!((smean(&xs) - d.mean()).abs() / d.mean() < 0.02);
        assert!((svar(&xs) - d.variance()).abs() / d.variance() < 0.06);
        assert!((sskew(&xs) - d.skewness()).abs() < 0.15);
    }

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let d = dist();
        let mut prev = 0.0;
        for i in 0..200 {
            let x = -20.0 + i as f64 * 0.5;
            let f = d.cdf(x);
            assert!(f >= prev - 1e-12, "cdf not monotone at {x}");
            assert!((0.0..=1.0).contains(&f));
            prev = f;
        }
        assert!(d.cdf(-100.0) < 1e-9);
        assert!(d.cdf(500.0) > 1.0 - 1e-9);
    }

    #[test]
    fn cdf_median_brackets_mean_for_skewed_dist() {
        let d = dist();
        // Positively skewed: median < mean.
        assert!(d.cdf(d.mean()) > 0.5);
    }

    #[test]
    fn upper_quantile_is_conservative_and_monotone() {
        let d = dist();
        let mut prev = f64::NEG_INFINITY;
        for p in [0.9, 0.95, 0.99] {
            let q = d.upper_quantile(p);
            assert!(q > prev);
            prev = q;
            // Component-quantile sum over-estimates: at least p of the mass
            // lies below it (small slack for the normal-quantile approx).
            assert!(d.cdf(q) >= p - 0.005, "p={p}: cdf({q}) = {}", d.cdf(q));
        }
        // Not wildly conservative at p95.
        assert!(d.cdf(d.upper_quantile(0.95)) < 0.999);
    }

    #[test]
    fn expected_max_is_monotone_in_n() {
        let d = dist();
        let m1 = d.expected_max(1);
        let m2 = d.expected_max(2);
        let m8 = d.expected_max(8);
        let m16 = d.expected_max(16);
        assert!((m1 - d.mean()).abs() / d.mean() < 0.02, "E[max_1] = {m1}");
        assert!(m1 < m2 && m2 < m8 && m8 < m16);
    }

    #[test]
    fn expected_max_matches_monte_carlo() {
        let d = dist();
        let mut rng = StdRng::seed_from_u64(9);
        for n in [2usize, 4, 8, 16] {
            let mc: f64 = (0..4000)
                .map(|_| {
                    (0..n)
                        .map(|_| d.sample(&mut rng))
                        .fold(f64::NEG_INFINITY, f64::max)
                })
                .sum::<f64>()
                / 4000.0;
            let analytic = d.expected_max(n);
            let rel = (analytic - mc).abs() / mc;
            assert!(rel < 0.05, "n={n}: analytic {analytic:.2} vs mc {mc:.2}");
        }
    }
}
