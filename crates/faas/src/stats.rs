//! Scalar statistics utilities shared across the workspace: the error
//! function, normal pdf/cdf, and Box–Muller normal sampling.
//!
//! Implemented here (rather than pulling `rand_distr`/`statrs`) to keep the
//! dependency set to the sanctioned offline crates.

use rand::RngExt;

/// Error function, Abramowitz & Stegun approximation 7.1.26
/// (max absolute error ≈ 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Complementary error function.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal probability density function.
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Draws a standard normal sample via Box–Muller.
pub fn sample_standard_normal<R: RngExt + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0).
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws an exponential sample with the given rate (inverse mean).
///
/// # Panics
///
/// Panics if `rate` is not strictly positive.
pub fn sample_exponential<R: RngExt + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive");
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    -u.ln() / rate
}

/// Sample mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample skewness (adjusted Fisher–Pearson).
pub fn skewness(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 3 {
        return 0.0;
    }
    let m = mean(xs);
    let s = variance(xs).sqrt();
    if s == 0.0 {
        return 0.0;
    }
    let n_f = n as f64;
    let m3 = xs.iter().map(|x| ((x - m) / s).powi(3)).sum::<f64>();
    m3 * n_f / ((n_f - 1.0) * (n_f - 2.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-9);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779095).abs() < 1e-6);
        assert!((erfc(1.0) - 0.1572992071).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!((normal_pdf(0.0) - 0.3989422804).abs() < 1e-9);
    }

    #[test]
    fn box_muller_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..20_000)
            .map(|_| sample_standard_normal(&mut rng))
            .collect();
        assert!(mean(&xs).abs() < 0.03, "mean {}", mean(&xs));
        assert!((variance(&xs) - 1.0).abs() < 0.05, "var {}", variance(&xs));
        assert!(skewness(&xs).abs() < 0.06, "skew {}", skewness(&xs));
    }

    #[test]
    fn exponential_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let rate = 0.25;
        let xs: Vec<f64> = (0..20_000)
            .map(|_| sample_exponential(&mut rng, rate))
            .collect();
        assert!((mean(&xs) - 4.0).abs() < 0.15, "mean {}", mean(&xs));
        // Exponential skewness is 2.
        assert!((skewness(&xs) - 2.0).abs() < 0.3, "skew {}", skewness(&xs));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_zero_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = sample_exponential(&mut rng, 0.0);
    }

    #[test]
    fn descriptive_stats_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(skewness(&[1.0, 2.0]), 0.0);
        assert_eq!(skewness(&[5.0, 5.0, 5.0, 5.0]), 0.0);
    }
}
