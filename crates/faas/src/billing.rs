//! Pay-per-use billing (paper §IV-C, Eq. 2).
//!
//! Platforms bill function duration rounded *up* to the billing granularity
//! `D` (1 ms on Lambda, 100 ms on GCF), multiplied by the configured memory.
//! The paper measures inference cost as total billed duration and notes that
//! invocation charges are two orders of magnitude smaller.

use serde::{Deserialize, Serialize};

/// Rounds a duration up to the billing granularity (paper Eq. 2's `⌈T/D⌉·D`).
///
/// # Panics
///
/// Panics if `granularity_ms == 0`.
pub fn billed_ms(duration_ms: f64, granularity_ms: u64) -> u64 {
    assert!(granularity_ms > 0, "billing granularity must be positive");
    if duration_ms <= 0.0 {
        return 0;
    }
    let units = (duration_ms / granularity_ms as f64).ceil() as u64;
    units.max(1) * granularity_ms
}

/// Accumulates the billed duration and dollar cost of a serving experiment.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BillingMeter {
    granularity_ms: u64,
    price_per_gb_s: f64,
    price_per_invocation: f64,
    billed_ms_total: u64,
    usd_total: f64,
    invocations: u64,
}

impl BillingMeter {
    /// Creates a meter with the platform's billing constants.
    pub fn new(granularity_ms: u64, price_per_gb_s: f64, price_per_invocation: f64) -> Self {
        BillingMeter {
            granularity_ms,
            price_per_gb_s,
            price_per_invocation,
            ..BillingMeter::default()
        }
    }

    /// Records one function execution and returns its billed milliseconds.
    pub fn record(&mut self, duration_ms: f64, memory_bytes: u64) -> u64 {
        let billed = billed_ms(duration_ms, self.granularity_ms);
        self.billed_ms_total += billed;
        let gb = memory_bytes as f64 / 1e9;
        self.usd_total +=
            billed as f64 / 1000.0 * gb * self.price_per_gb_s + self.price_per_invocation;
        self.invocations += 1;
        billed
    }

    /// Total billed duration in milliseconds — the paper's cost metric.
    pub fn billed_ms_total(&self) -> u64 {
        self.billed_ms_total
    }

    /// Total dollar cost including invocation charges.
    pub fn usd_total(&self) -> f64 {
        self.usd_total
    }

    /// Number of recorded executions.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Merges another meter's records into this one.
    pub fn merge(&mut self, other: &BillingMeter) {
        self.billed_ms_total += other.billed_ms_total;
        self.usd_total += other.usd_total;
        self.invocations += other.invocations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounding_up_to_granularity() {
        assert_eq!(billed_ms(0.1, 1), 1);
        assert_eq!(billed_ms(1.0, 1), 1);
        assert_eq!(billed_ms(1.01, 1), 2);
        assert_eq!(billed_ms(250.0, 100), 300);
        assert_eq!(billed_ms(300.0, 100), 300);
        assert_eq!(billed_ms(301.0, 100), 400);
        assert_eq!(billed_ms(0.0, 100), 0);
        assert_eq!(billed_ms(-3.0, 100), 0);
    }

    #[test]
    fn coarse_granularity_never_cheaper() {
        for d in [0.5, 7.0, 99.9, 100.0, 101.0, 1234.5] {
            assert!(billed_ms(d, 100) >= billed_ms(d, 1), "duration {d}");
        }
    }

    #[test]
    fn meter_accumulates() {
        let mut m = BillingMeter::new(100, 0.0000025, 0.0000004);
        assert_eq!(m.record(250.0, 4_000_000_000), 300);
        assert_eq!(m.record(90.0, 4_000_000_000), 100);
        assert_eq!(m.billed_ms_total(), 400);
        assert_eq!(m.invocations(), 2);
        // 0.4 s * 4 GB * price + 2 invocations.
        let expected = 0.4 * 4.0 * 0.0000025 + 2.0 * 0.0000004;
        assert!((m.usd_total() - expected).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_meters() {
        let mut a = BillingMeter::new(1, 0.0000166667, 0.0);
        a.record(10.0, 3_000_000_000);
        let mut b = BillingMeter::new(1, 0.0000166667, 0.0);
        b.record(20.0, 3_000_000_000);
        let usd_b = b.usd_total();
        a.merge(&b);
        assert_eq!(a.billed_ms_total(), 30);
        assert_eq!(a.invocations(), 2);
        assert!(a.usd_total() > usd_b);
    }

    #[test]
    #[should_panic(expected = "granularity must be positive")]
    fn zero_granularity_panics() {
        let _ = billed_ms(5.0, 0);
    }
}
