//! A minimal discrete-event queue.
//!
//! The serving runtime in `gillis-core` drives typed simulations (fork-join
//! rounds, client workloads) through this queue: events carry a payload `E`
//! and pop in time order, FIFO among ties.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Micros;

struct Entry<E> {
    at: Micros,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A time-ordered event queue over payload type `E`.
///
/// # Examples
///
/// ```
/// use gillis_faas::des::EventQueue;
/// use gillis_faas::Micros;
///
/// let mut q = EventQueue::new();
/// q.push(Micros(20), "late");
/// q.push(Micros(10), "early");
/// assert_eq!(q.pop(), Some((Micros(10), "early")));
/// assert_eq!(q.pop(), Some((Micros(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at virtual time `at`.
    pub fn push(&mut self, at: Micros, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Pops the earliest event, FIFO among equal times.
    pub fn pop(&mut self) -> Option<(Micros, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Time of the next event, if any.
    pub fn peek_time(&self) -> Option<Micros> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Micros(30), 3);
        q.push(Micros(10), 1);
        q.push(Micros(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_among_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Micros(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(Micros(5), "a");
        assert_eq!(q.peek_time(), Some(Micros(5)));
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (Micros(5), "a"));
        // Schedule follow-up relative to popped time.
        q.push(t + Micros(3), "b");
        q.push(t + Micros(1), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }
}
