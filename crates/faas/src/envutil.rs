//! Environment-knob parsing shared by the `GILLIS_*` config families.
//!
//! Every `*_from_env` reader used to swallow malformed values silently
//! (`.ok()?.parse().ok()?`), so a typo like `GILLIS_CHAOS_RATE=0.0.5`
//! disabled the feature without a trace. The helpers here keep the same
//! unset-means-`None` contract but report malformed values on stderr with
//! the offending variable name, so the operator learns the knob was ignored.

use std::str::FromStr;

/// Parses `raw` (the value of environment variable `name`) as `T`.
///
/// # Errors
///
/// Returns the warning message emitted for a malformed value — naming the
/// variable and echoing the rejected input — so callers (and tests) can
/// surface it without touching process state.
pub fn parse_value<T: FromStr>(name: &str, raw: &str) -> std::result::Result<T, String> {
    raw.trim()
        .parse()
        .map_err(|_| format!("ignoring malformed {name}={raw:?}"))
}

/// Reads environment variable `name` as `T`. Unset → `None`; set but
/// malformed → a warning on stderr (naming the variable) and `None`.
pub fn env_var<T: FromStr>(name: &str) -> Option<T> {
    let raw = std::env::var(name).ok()?;
    match parse_value(name, &raw) {
        Ok(v) => Some(v),
        Err(msg) => {
            eprintln!("gillis: {msg}");
            None
        }
    }
}

/// Reads environment variable `name` as a comma-separated list of `T`.
/// Unset → `None`; any malformed element → a warning on stderr and `None`.
pub fn env_list<T: FromStr>(name: &str) -> Option<Vec<T>> {
    let raw = std::env::var(name).ok()?;
    let mut out = Vec::new();
    for piece in raw.split(',') {
        match parse_value(name, piece) {
            Ok(v) => out.push(v),
            Err(_) => {
                eprintln!("gillis: ignoring malformed {name}={raw:?} (bad element {piece:?})");
                return None;
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_value_names_the_offending_variable() {
        let err = parse_value::<f64>("GILLIS_CHAOS_RATE", "0.0.5").unwrap_err();
        assert!(err.contains("GILLIS_CHAOS_RATE"), "{err}");
        assert!(err.contains("0.0.5"), "{err}");
        assert_eq!(parse_value::<f64>("GILLIS_CHAOS_RATE", " 0.25 "), Ok(0.25));
        assert_eq!(parse_value::<u64>("GILLIS_CHAOS_SEED", "99"), Ok(99));
    }
}
