//! Adaptive retry budgets: a deterministic token bucket that bounds how
//! much *extra* load retries and hedges may add.
//!
//! Under a correlated outage, fixed per-query retry budgets multiply
//! offered load exactly when capacity is lowest — the metastable-failure
//! shape. A [`RetryBudget`] makes retry capacity a *shared, earned*
//! resource: every retry or hedge spends one token, and tokens are refilled
//! only by successful first attempts. While the platform is healthy the
//! bucket stays full and behavior is unchanged; when first attempts start
//! failing en masse the bucket drains and retries collapse to near zero
//! instead of amplifying the storm. All accounting is plain arithmetic on
//! the serving loop's own event order — no clocks, no RNG — so runs stay
//! bit-identical across thread counts.

use serde::{Deserialize, Serialize};

use crate::error::FaasError;
use crate::Result;

/// Token-bucket knobs for [`RetryBudget`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryBudgetPolicy {
    /// Bucket capacity in tokens; a retry or hedge spends one token.
    pub max_tokens: f64,
    /// Tokens in the bucket at the start of a serving run (clamped to
    /// `max_tokens`).
    pub initial_tokens: f64,
    /// Tokens earned per successful first attempt (capped at capacity):
    /// healthy traffic funds the right to retry.
    pub refill_per_success: f64,
}

impl Default for RetryBudgetPolicy {
    fn default() -> Self {
        RetryBudgetPolicy {
            max_tokens: 32.0,
            initial_tokens: 32.0,
            refill_per_success: 0.1,
        }
    }
}

impl RetryBudgetPolicy {
    /// Reads budget knobs from the environment. `GILLIS_RETRY_BUDGET_MAX`
    /// enables the budget (bucket capacity); `GILLIS_RETRY_BUDGET_INITIAL`
    /// and `GILLIS_RETRY_BUDGET_REFILL` override the starting fill and the
    /// per-success refill. Malformed values are reported on stderr.
    pub fn from_env() -> Option<Self> {
        use crate::envutil::env_var;
        let max_tokens: f64 = env_var("GILLIS_RETRY_BUDGET_MAX")?;
        if max_tokens <= 0.0 || !max_tokens.is_finite() {
            return None;
        }
        Some(RetryBudgetPolicy {
            max_tokens,
            initial_tokens: env_var("GILLIS_RETRY_BUDGET_INITIAL").unwrap_or(max_tokens),
            refill_per_success: env_var("GILLIS_RETRY_BUDGET_REFILL")
                .unwrap_or(RetryBudgetPolicy::default().refill_per_success),
        })
    }

    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::InvalidArgument`] for a non-positive or
    /// non-finite capacity, or negative/non-finite initial fill or refill.
    pub fn validate(&self) -> Result<()> {
        if self.max_tokens <= 0.0 || !self.max_tokens.is_finite() {
            return Err(FaasError::InvalidArgument(format!(
                "retry budget max_tokens must be positive and finite: {}",
                self.max_tokens
            )));
        }
        if self.initial_tokens < 0.0 || !self.initial_tokens.is_finite() {
            return Err(FaasError::InvalidArgument(format!(
                "retry budget initial_tokens must be >= 0 and finite: {}",
                self.initial_tokens
            )));
        }
        if self.refill_per_success < 0.0 || !self.refill_per_success.is_finite() {
            return Err(FaasError::InvalidArgument(format!(
                "retry budget refill_per_success must be >= 0 and finite: {}",
                self.refill_per_success
            )));
        }
        Ok(())
    }
}

/// Live token bucket for one serving run (see [`RetryBudgetPolicy`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RetryBudget {
    policy: RetryBudgetPolicy,
    tokens: f64,
}

impl RetryBudget {
    /// Starts a bucket at the policy's initial fill.
    pub fn new(policy: RetryBudgetPolicy) -> Self {
        RetryBudget {
            policy,
            tokens: policy.initial_tokens.min(policy.max_tokens),
        }
    }

    /// Tokens currently available (never negative).
    pub fn tokens(&self) -> f64 {
        self.tokens
    }

    /// Spends one token for a retry or hedge; `false` — and no spend —
    /// when less than a whole token remains.
    pub fn try_spend(&mut self) -> bool {
        self.try_spend_cost(1.0)
    }

    /// Spends `cost` tokens (a fraction of a full-restart retry); `false` —
    /// and no spend — when the bucket holds less than `cost`. Stage-level
    /// recovery prices a resumed retry at its true marginal cost: the
    /// resumed stage's share of the whole plan, not a full token. A
    /// non-positive or non-finite cost spends nothing and is allowed.
    pub fn try_spend_cost(&mut self, cost: f64) -> bool {
        // `partial_cmp` (not `!(cost > 0.0)`): NaN must land in the
        // degenerate free branch, and that needs to be legible.
        if cost.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || !cost.is_finite() {
            return true;
        }
        if self.tokens >= cost {
            self.tokens -= cost;
            true
        } else {
            false
        }
    }

    /// Credits one successful first attempt, capped at capacity.
    pub fn refill(&mut self) {
        self.tokens = (self.tokens + self.policy.refill_per_success).min(self.policy.max_tokens);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_validation() {
        assert!(RetryBudgetPolicy::default().validate().is_ok());
        for bad in [
            RetryBudgetPolicy {
                max_tokens: 0.0,
                ..RetryBudgetPolicy::default()
            },
            RetryBudgetPolicy {
                initial_tokens: -1.0,
                ..RetryBudgetPolicy::default()
            },
            RetryBudgetPolicy {
                refill_per_success: f64::NAN,
                ..RetryBudgetPolicy::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn bucket_drains_refills_and_never_goes_negative() {
        let mut b = RetryBudget::new(RetryBudgetPolicy {
            max_tokens: 2.0,
            initial_tokens: 10.0, // clamped to capacity
            refill_per_success: 0.5,
        });
        assert_eq!(b.tokens(), 2.0);
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert!(!b.try_spend(), "empty bucket denies");
        assert_eq!(b.tokens(), 0.0);
        b.refill();
        assert!(!b.try_spend(), "half a token is not a token");
        b.refill();
        assert!(b.try_spend());
        for _ in 0..100 {
            b.refill();
        }
        assert_eq!(b.tokens(), 2.0, "refill caps at capacity");
    }

    #[test]
    fn fractional_costs_spend_marginally() {
        let mut b = RetryBudget::new(RetryBudgetPolicy {
            max_tokens: 1.0,
            initial_tokens: 1.0,
            refill_per_success: 0.0,
        });
        // Four quarter-cost resumed retries fit where one full restart did.
        for _ in 0..4 {
            assert!(b.try_spend_cost(0.25));
        }
        assert!(!b.try_spend_cost(0.25), "bucket is exactly empty");
        assert_eq!(b.tokens(), 0.0);
        // Degenerate costs are free and never block.
        assert!(b.try_spend_cost(0.0));
        assert!(b.try_spend_cost(-1.0));
        assert!(b.try_spend_cost(f64::NAN));
        // try_spend is exactly try_spend_cost(1.0).
        let mut c = RetryBudget::new(RetryBudgetPolicy::default());
        let mut d = c.clone();
        assert_eq!(c.try_spend(), d.try_spend_cost(1.0));
        assert_eq!(c.tokens(), d.tokens());
    }
}
