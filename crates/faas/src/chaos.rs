//! Deterministic fault injection and resilience policies.
//!
//! Gillis's fork-join pattern multiplies the per-query invocation count, so
//! one flaky or slow worker inflates every query (paper §III/§V-C). This
//! module provides the two halves needed to *measure* mitigation policies
//! against injected faults:
//!
//! - [`FaultInjector`] — samples per-invocation faults (invocation failure,
//!   mid-compute crash, straggler slowdown, transfer corruption) as a *pure
//!   function* of a seed and the invocation's identity
//!   ([`FaultSite`]: query, group, partition, attempt, lane). Because no
//!   shared RNG stream is consumed, the fault pattern is bit-identical
//!   however the run is threaded or replayed.
//! - [`ResiliencePolicy`] — what the master does about faults: retry budget,
//!   exponential backoff with deterministic jitter, per-attempt timeouts
//!   derived from the predicted latency, hedged (speculative duplicate)
//!   requests, and local-fallback degradation when the budget is exhausted.
//!
//! [`ResilienceCounters`] accumulates the honest outcome accounting
//! (ok/degraded/failed queries, retries, hedges, hedge wins, timeouts) that
//! replaced the old "final attempt always succeeds" fiction in the serving
//! runtime.

use serde::{Deserialize, Serialize};

use crate::error::FaasError;
use crate::Result;

/// splitmix64 finalizer: the workspace-standard seed scrambler.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Identity of one worker execution — the key fault sampling hashes.
///
/// `lane` distinguishes the primary execution (0) from its hedge (1) so a
/// hedge can draw an independent fault for the same attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSite {
    /// Query index within the run.
    pub query: u64,
    /// Plan group index.
    pub group: u32,
    /// Partition index within the group.
    pub part: u32,
    /// Retry attempt (0 = first try).
    pub attempt: u32,
    /// 0 = primary, 1 = hedge.
    pub lane: u32,
}

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// The invocation never starts (platform-level error, detected after
    /// the invocation jitter).
    InvokeFailure,
    /// The worker crashes mid-compute after `work_done` of its compute
    /// (fraction in `(0, 1)`); the partial duration is still billed.
    Crash {
        /// Fraction of the compute finished before the crash.
        work_done: f64,
    },
    /// The worker runs to completion but `slowdown`× slower than normal.
    Straggler {
        /// Compute-time multiplier (≥ 1).
        slowdown: f64,
    },
    /// The worker completes but its response is corrupted in transfer; the
    /// master detects it at the join and must treat the attempt as failed.
    Corrupt,
}

/// Fault-injection knobs. All rates are per worker *execution* (an attempt
/// or a hedge), mutually exclusive, and must sum to at most 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Seed driving every fault decision (splitmix64-hashed with the site).
    pub seed: u64,
    /// Probability an invocation fails outright.
    pub invoke_failure_rate: f64,
    /// Probability the worker crashes mid-compute.
    pub crash_rate: f64,
    /// Probability the worker straggles.
    pub straggler_rate: f64,
    /// Compute-time multiplier for a straggling worker (≥ 1); the actual
    /// slowdown is drawn deterministically between half and full effect.
    pub straggler_slowdown: f64,
    /// Probability the response is corrupted in transfer.
    pub corrupt_rate: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            invoke_failure_rate: 0.0,
            crash_rate: 0.0,
            straggler_rate: 0.0,
            straggler_slowdown: 4.0,
            corrupt_rate: 0.0,
        }
    }
}

impl ChaosConfig {
    /// Config that only fails invocations, at `rate` — the legacy
    /// `invocation_failure_rate` platform knob expressed as chaos.
    pub fn invoke_only(rate: f64, seed: u64) -> Self {
        ChaosConfig {
            seed,
            invoke_failure_rate: rate,
            ..ChaosConfig::default()
        }
    }

    /// Reads chaos knobs from the environment: `GILLIS_CHAOS_RATE` (total
    /// fault rate, split 40% invocation failures / 40% crashes / 20%
    /// corruption) and `GILLIS_CHAOS_SEED` (default `0xC4A05EED`). Returns
    /// `None` when `GILLIS_CHAOS_RATE` is unset or not a positive number.
    /// This is how CI's chaos job injects faults into the test suite.
    pub fn from_env() -> Option<Self> {
        let rate: f64 = std::env::var("GILLIS_CHAOS_RATE").ok()?.parse().ok()?;
        // NaN-rejecting: only a definitely-positive rate enables chaos.
        if rate.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return None;
        }
        let rate = rate.min(1.0);
        let seed = std::env::var("GILLIS_CHAOS_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0xC4A0_5EED);
        Some(ChaosConfig {
            seed,
            invoke_failure_rate: 0.4 * rate,
            crash_rate: 0.4 * rate,
            straggler_rate: 0.0,
            straggler_slowdown: 4.0,
            corrupt_rate: 0.2 * rate,
        })
    }

    /// Validates the config and builds the injector.
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::InvalidArgument`] when a rate is outside
    /// `[0, 1]`, the rates sum past 1, or the slowdown is below 1.
    pub fn build(self) -> Result<FaultInjector> {
        let rates = [
            self.invoke_failure_rate,
            self.crash_rate,
            self.straggler_rate,
            self.corrupt_rate,
        ];
        if rates.iter().any(|r| !(0.0..=1.0).contains(r)) {
            return Err(FaasError::InvalidArgument(format!(
                "chaos rates must each be in [0, 1]: {self:?}"
            )));
        }
        if rates.iter().sum::<f64>() > 1.0 + 1e-12 {
            return Err(FaasError::InvalidArgument(format!(
                "chaos rates must sum to at most 1: {self:?}"
            )));
        }
        // NaN-rejecting comparison: NaN fails the `>= 1` requirement.
        if self.straggler_slowdown.partial_cmp(&1.0) == Some(std::cmp::Ordering::Less)
            || self.straggler_slowdown.is_nan()
        {
            return Err(FaasError::InvalidArgument(format!(
                "straggler slowdown must be >= 1: {}",
                self.straggler_slowdown
            )));
        }
        Ok(FaultInjector { cfg: self })
    }
}

/// Salt constants separating the independent per-site decisions.
mod salt {
    pub const KIND: u64 = 0x11;
    pub const CRASH_FRAC: u64 = 0x22;
    pub const SLOWDOWN: u64 = 0x33;
    pub const BACKOFF: u64 = 0x44;
}

/// Seedable, deterministic fault sampler: every decision is a pure function
/// of `(config.seed, site)`, so runs are bit-identical across thread counts
/// and the same site re-queried always faults the same way.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    cfg: ChaosConfig,
}

impl FaultInjector {
    /// The config this injector samples from.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    fn word(&self, site: FaultSite, salt: u64) -> u64 {
        let mut h = splitmix64(self.cfg.seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        h = splitmix64(h ^ site.query);
        h = splitmix64(
            h ^ (((site.group as u64) << 40)
                | ((site.part as u64) << 16)
                | ((site.lane as u64) << 8)),
        );
        splitmix64(h ^ site.attempt as u64)
    }

    fn unit(&self, site: FaultSite, salt: u64) -> f64 {
        (self.word(site, salt) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Samples the fault (if any) of one worker execution.
    pub fn fault(&self, site: FaultSite) -> Option<Fault> {
        let u = self.unit(site, salt::KIND);
        let mut acc = self.cfg.invoke_failure_rate;
        if u < acc {
            return Some(Fault::InvokeFailure);
        }
        acc += self.cfg.crash_rate;
        if u < acc {
            // Crash somewhere in the middle 15%–85% of the compute.
            let work_done = 0.15 + 0.7 * self.unit(site, salt::CRASH_FRAC);
            return Some(Fault::Crash { work_done });
        }
        acc += self.cfg.corrupt_rate;
        if u < acc {
            return Some(Fault::Corrupt);
        }
        acc += self.cfg.straggler_rate;
        if u < acc {
            let excess = self.cfg.straggler_slowdown - 1.0;
            let slowdown = 1.0 + excess * (0.5 + 0.5 * self.unit(site, salt::SLOWDOWN));
            return Some(Fault::Straggler { slowdown });
        }
        None
    }

    /// Deterministic `U[0, 1)` draw used for backoff jitter at this site.
    pub fn backoff_unit(&self, site: FaultSite) -> f64 {
        self.unit(site, salt::BACKOFF)
    }
}

/// The process-wide environment-driven injector (see
/// [`ChaosConfig::from_env`]), built once. `None` when the environment sets
/// no chaos, or sets an invalid config.
pub fn env_injector() -> Option<&'static FaultInjector> {
    use std::sync::OnceLock;
    static INJECTOR: OnceLock<Option<FaultInjector>> = OnceLock::new();
    INJECTOR
        .get_or_init(|| ChaosConfig::from_env().and_then(|cfg| cfg.build().ok()))
        .as_ref()
}

/// What the master does about worker faults.
///
/// Timeouts and hedge delays are expressed as multiples of the *predicted*
/// p95 latency of the attempt (compute prediction plus invocation-jitter
/// quantile), so the knobs transfer across partitions of very different
/// sizes. `f64::INFINITY` disables the respective mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResiliencePolicy {
    /// Total attempts per worker partition, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, in milliseconds (0 = immediate).
    pub backoff_base_ms: f64,
    /// Multiplier applied per further retry.
    pub backoff_multiplier: f64,
    /// Upper bound on a single backoff, in milliseconds.
    pub backoff_cap_ms: f64,
    /// Jitter fraction in `[0, 1]`: a backoff `b` becomes
    /// `b × (1 − frac/2 + frac × u)` for a deterministic `u ∈ [0, 1)`.
    pub backoff_jitter_frac: f64,
    /// Per-attempt timeout = this factor × predicted attempt p95.
    pub attempt_timeout_factor: f64,
    /// Hedge launch delay = this factor × predicted attempt p95; the hedge
    /// runs the same partition on a second instance, first result wins.
    pub hedge_delay_factor: f64,
    /// On retry-budget exhaustion, the master recomputes the shard locally
    /// (degrading that group to single-function semantics) instead of
    /// failing the query.
    pub local_fallback: bool,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy::backoff()
    }
}

impl ResiliencePolicy {
    /// No resilience at all: one attempt, no hedge; failures degrade to a
    /// master-local recompute.
    pub fn none() -> Self {
        ResiliencePolicy {
            max_attempts: 1,
            backoff_base_ms: 0.0,
            backoff_multiplier: 1.0,
            backoff_cap_ms: 0.0,
            backoff_jitter_frac: 0.0,
            attempt_timeout_factor: f64::INFINITY,
            hedge_delay_factor: f64::INFINITY,
            local_fallback: true,
        }
    }

    /// Naive immediate retry (the pre-resilience behaviour, minus the
    /// "final attempt always succeeds" fiction): four attempts, no backoff,
    /// no timeout, no hedge.
    pub fn naive_retry() -> Self {
        ResiliencePolicy {
            max_attempts: 4,
            ..ResiliencePolicy::none()
        }
    }

    /// Exponential backoff with deterministic jitter and per-attempt
    /// timeouts — the default.
    pub fn backoff() -> Self {
        ResiliencePolicy {
            max_attempts: 4,
            backoff_base_ms: 2.0,
            backoff_multiplier: 2.0,
            backoff_cap_ms: 60.0,
            backoff_jitter_frac: 0.5,
            attempt_timeout_factor: 10.0,
            hedge_delay_factor: f64::INFINITY,
            local_fallback: true,
        }
    }

    /// Backoff plus hedged requests: a speculative duplicate is launched
    /// once an attempt exceeds its predicted p95, first result wins.
    pub fn backoff_hedged() -> Self {
        ResiliencePolicy {
            hedge_delay_factor: 1.0,
            ..ResiliencePolicy::backoff()
        }
    }

    /// Whether hedging is enabled.
    pub fn hedged(&self) -> bool {
        self.hedge_delay_factor.is_finite()
    }

    /// Backoff before retry number `retry + 1` (zero-based retry index),
    /// jittered by a deterministic `unit ∈ [0, 1)`.
    pub fn backoff_ms(&self, retry: u32, unit: f64) -> f64 {
        if self.backoff_base_ms <= 0.0 {
            return 0.0;
        }
        let raw = self.backoff_base_ms * self.backoff_multiplier.powi(retry as i32);
        let capped = raw.min(self.backoff_cap_ms);
        let f = self.backoff_jitter_frac;
        capped * (1.0 - f / 2.0 + f * unit)
    }
}

/// Terminal status of one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryStatus {
    /// Every worker partition succeeded within its retry budget.
    Ok,
    /// At least one shard exhausted its budget and was recomputed locally
    /// by the master (correct result, degraded latency).
    Degraded,
    /// A shard exhausted its budget with local fallback disabled; the
    /// query produced no result.
    Failed,
    /// The admission queue rejected the query before any work started
    /// (queue full, or predicted wait + latency already past the deadline).
    Shed,
    /// The query was admitted but its deadline expired mid-plan; remaining
    /// work was cancelled.
    DeadlineExceeded,
}

/// Honest resilience accounting across a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ResilienceCounters {
    /// Retry attempts launched (beyond each worker's first attempt).
    pub retries: u64,
    /// Hedged (speculative duplicate) executions launched.
    pub hedges: u64,
    /// Hedges whose result was accepted over the primary's.
    pub hedge_wins: u64,
    /// Attempts abandoned at the per-attempt timeout.
    pub timeouts: u64,
    /// Shards recomputed locally by the master after budget exhaustion.
    pub degraded_shards: u64,
    /// Queries fully served by workers.
    pub ok_queries: u64,
    /// Queries that completed only via local fallback.
    pub degraded_queries: u64,
    /// Queries that produced no result.
    pub failed_queries: u64,
    /// Queries rejected at admission (overload shedding).
    pub shed_queries: u64,
    /// Queries cancelled mid-plan by deadline expiry.
    pub deadline_exceeded_queries: u64,
}

impl ResilienceCounters {
    /// Folds another counter set into this one.
    pub fn absorb(&mut self, other: &ResilienceCounters) {
        self.retries += other.retries;
        self.hedges += other.hedges;
        self.hedge_wins += other.hedge_wins;
        self.timeouts += other.timeouts;
        self.degraded_shards += other.degraded_shards;
        self.ok_queries += other.ok_queries;
        self.degraded_queries += other.degraded_queries;
        self.failed_queries += other.failed_queries;
        self.shed_queries += other.shed_queries;
        self.deadline_exceeded_queries += other.deadline_exceeded_queries;
    }

    /// Records one query's terminal status.
    pub fn record_status(&mut self, status: QueryStatus) {
        match status {
            QueryStatus::Ok => self.ok_queries += 1,
            QueryStatus::Degraded => self.degraded_queries += 1,
            QueryStatus::Failed => self.failed_queries += 1,
            QueryStatus::Shed => self.shed_queries += 1,
            QueryStatus::DeadlineExceeded => self.deadline_exceeded_queries += 1,
        }
    }

    /// Total queries accounted for (including shed and deadline-expired).
    pub fn queries(&self) -> u64 {
        self.ok_queries
            + self.degraded_queries
            + self.failed_queries
            + self.shed_queries
            + self.deadline_exceeded_queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(query: u64, attempt: u32) -> FaultSite {
        FaultSite {
            query,
            group: 1,
            part: 2,
            attempt,
            lane: 0,
        }
    }

    #[test]
    fn config_validation() {
        assert!(ChaosConfig::default().build().is_ok());
        assert!(ChaosConfig {
            invoke_failure_rate: 1.2,
            ..ChaosConfig::default()
        }
        .build()
        .is_err());
        assert!(ChaosConfig {
            invoke_failure_rate: 0.6,
            crash_rate: 0.6,
            ..ChaosConfig::default()
        }
        .build()
        .is_err());
        assert!(ChaosConfig {
            straggler_rate: 0.1,
            straggler_slowdown: 0.5,
            ..ChaosConfig::default()
        }
        .build()
        .is_err());
        assert!(ChaosConfig {
            invoke_failure_rate: f64::NAN,
            ..ChaosConfig::default()
        }
        .build()
        .is_err());
    }

    #[test]
    fn sampling_is_deterministic_and_seed_sensitive() {
        let a = ChaosConfig {
            seed: 7,
            invoke_failure_rate: 0.2,
            crash_rate: 0.2,
            straggler_rate: 0.2,
            corrupt_rate: 0.2,
            ..ChaosConfig::default()
        }
        .build()
        .unwrap();
        let b = ChaosConfig {
            seed: 8,
            ..*a.config()
        }
        .build()
        .unwrap();
        let sites: Vec<FaultSite> = (0..200).map(|q| site(q, 0)).collect();
        let fa: Vec<_> = sites.iter().map(|&s| a.fault(s)).collect();
        let fa2: Vec<_> = sites.iter().map(|&s| a.fault(s)).collect();
        assert_eq!(fa, fa2, "same seed + site must fault identically");
        let fb: Vec<_> = sites.iter().map(|&s| b.fault(s)).collect();
        assert_ne!(fa, fb, "different seeds should differ somewhere");
    }

    #[test]
    fn fault_rates_are_respected() {
        let inj = ChaosConfig {
            seed: 3,
            invoke_failure_rate: 0.1,
            crash_rate: 0.1,
            straggler_rate: 0.1,
            corrupt_rate: 0.1,
            straggler_slowdown: 4.0,
            ..ChaosConfig::default()
        }
        .build()
        .unwrap();
        let n = 20_000u64;
        let mut counts = [0u64; 5];
        for q in 0..n {
            match inj.fault(site(q, 0)) {
                None => counts[0] += 1,
                Some(Fault::InvokeFailure) => counts[1] += 1,
                Some(Fault::Crash { work_done }) => {
                    assert!((0.15..=0.85).contains(&work_done));
                    counts[2] += 1;
                }
                Some(Fault::Straggler { slowdown }) => {
                    assert!((1.0..=4.0).contains(&slowdown));
                    counts[3] += 1;
                }
                Some(Fault::Corrupt) => counts[4] += 1,
            }
        }
        assert!((counts[0] as f64 / n as f64 - 0.6).abs() < 0.02);
        for &c in &counts[1..] {
            assert!(
                (c as f64 / n as f64 - 0.1).abs() < 0.01,
                "counts {counts:?}"
            );
        }
    }

    #[test]
    fn lanes_and_attempts_are_independent() {
        let inj = ChaosConfig {
            seed: 5,
            invoke_failure_rate: 0.5,
            ..ChaosConfig::default()
        }
        .build()
        .unwrap();
        let primary: Vec<_> = (0..200)
            .map(|q| {
                inj.fault(FaultSite {
                    lane: 0,
                    ..site(q, 0)
                })
            })
            .collect();
        let hedge: Vec<_> = (0..200)
            .map(|q| {
                inj.fault(FaultSite {
                    lane: 1,
                    ..site(q, 0)
                })
            })
            .collect();
        let retry: Vec<_> = (0..200).map(|q| inj.fault(site(q, 1))).collect();
        assert_ne!(primary, hedge);
        assert_ne!(primary, retry);
    }

    #[test]
    fn backoff_schedule_grows_and_caps() {
        let p = ResiliencePolicy::backoff();
        let b0 = p.backoff_ms(0, 0.5);
        let b1 = p.backoff_ms(1, 0.5);
        let b9 = p.backoff_ms(9, 0.5);
        assert!(b0 > 0.0 && b1 > b0);
        assert!(b9 <= p.backoff_cap_ms * (1.0 + p.backoff_jitter_frac / 2.0));
        // Jitter brackets the nominal value.
        assert!(p.backoff_ms(0, 0.0) < p.backoff_ms(0, 0.999));
        // Naive retry never waits.
        assert_eq!(ResiliencePolicy::naive_retry().backoff_ms(3, 0.7), 0.0);
    }

    #[test]
    fn policy_presets() {
        assert_eq!(ResiliencePolicy::none().max_attempts, 1);
        assert!(!ResiliencePolicy::backoff().hedged());
        assert!(ResiliencePolicy::backoff_hedged().hedged());
        assert_eq!(
            ResiliencePolicy::default(),
            ResiliencePolicy::backoff(),
            "default policy is plain backoff"
        );
    }

    #[test]
    fn counters_absorb_and_account() {
        let mut a = ResilienceCounters {
            retries: 1,
            hedges: 2,
            ..ResilienceCounters::default()
        };
        a.record_status(QueryStatus::Ok);
        a.record_status(QueryStatus::Degraded);
        a.record_status(QueryStatus::Failed);
        let mut b = ResilienceCounters::default();
        b.absorb(&a);
        b.absorb(&a);
        assert_eq!(b.retries, 2);
        assert_eq!(b.hedges, 4);
        assert_eq!(b.queries(), 6);
        assert_eq!(b.ok_queries, 2);
        assert_eq!(b.degraded_queries, 2);
        assert_eq!(b.failed_queries, 2);
    }
}
