//! Deterministic fault injection and resilience policies.
//!
//! Gillis's fork-join pattern multiplies the per-query invocation count, so
//! one flaky or slow worker inflates every query (paper §III/§V-C). This
//! module provides the two halves needed to *measure* mitigation policies
//! against injected faults:
//!
//! - [`FaultInjector`] — samples per-invocation faults (invocation failure,
//!   mid-compute crash, straggler slowdown, transfer corruption) as a *pure
//!   function* of a seed and the invocation's identity
//!   ([`FaultSite`]: query, group, partition, attempt, lane). Because no
//!   shared RNG stream is consumed, the fault pattern is bit-identical
//!   however the run is threaded or replayed.
//! - [`ResiliencePolicy`] — what the master does about faults: retry budget,
//!   exponential backoff with deterministic jitter, per-attempt timeouts
//!   derived from the predicted latency, hedged (speculative duplicate)
//!   requests, and local-fallback degradation when the budget is exhausted.
//!
//! [`ResilienceCounters`] accumulates the honest outcome accounting
//! (ok/degraded/failed queries, retries, hedges, hedge wins, timeouts) that
//! replaced the old "final attempt always succeeds" fiction in the serving
//! runtime.

use serde::{Deserialize, Serialize};

use crate::error::FaasError;
use crate::Result;

/// splitmix64 finalizer: the workspace-standard seed scrambler.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Identity of one worker execution — the key fault sampling hashes.
///
/// `lane` distinguishes the primary execution (0) from its hedge (1) so a
/// hedge can draw an independent fault for the same attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSite {
    /// Query index within the run.
    pub query: u64,
    /// Plan group index.
    pub group: u32,
    /// Partition index within the group.
    pub part: u32,
    /// Retry attempt (0 = first try).
    pub attempt: u32,
    /// 0 = primary, 1 = hedge.
    pub lane: u32,
}

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// The invocation never starts (platform-level error, detected after
    /// the invocation jitter).
    InvokeFailure,
    /// The worker crashes mid-compute after `work_done` of its compute
    /// (fraction in `(0, 1)`); the partial duration is still billed.
    Crash {
        /// Fraction of the compute finished before the crash.
        work_done: f64,
    },
    /// The worker runs to completion but `slowdown`× slower than normal.
    Straggler {
        /// Compute-time multiplier (≥ 1).
        slowdown: f64,
    },
    /// The worker completes but its response is corrupted in transfer; the
    /// master detects it at the join and must treat the attempt as failed.
    Corrupt,
}

/// Fault-injection knobs. All rates are per worker *execution* (an attempt
/// or a hedge), mutually exclusive, and must sum to at most 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Seed driving every fault decision (splitmix64-hashed with the site).
    pub seed: u64,
    /// Probability an invocation fails outright.
    pub invoke_failure_rate: f64,
    /// Probability the worker crashes mid-compute.
    pub crash_rate: f64,
    /// Probability the worker straggles.
    pub straggler_rate: f64,
    /// Compute-time multiplier for a straggling worker (≥ 1); the actual
    /// slowdown is drawn deterministically between half and full effect.
    pub straggler_slowdown: f64,
    /// Probability the response is corrupted in transfer.
    pub corrupt_rate: f64,
    /// Probability the *orchestrator* (the fork-join master or a pipeline
    /// stage orchestrator) crashes at a stage boundary, per boundary
    /// crossed. Sampled on a separate pure hash keyed by
    /// `(query, boundary, incarnation)`, so it is independent of the
    /// worker-fault rates above and not part of their mutual-exclusion sum.
    pub orchestrator_crash_rate: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            invoke_failure_rate: 0.0,
            crash_rate: 0.0,
            straggler_rate: 0.0,
            straggler_slowdown: 4.0,
            corrupt_rate: 0.0,
            orchestrator_crash_rate: 0.0,
        }
    }
}

impl ChaosConfig {
    /// Config that only fails invocations, at `rate` — the legacy
    /// `invocation_failure_rate` platform knob expressed as chaos.
    pub fn invoke_only(rate: f64, seed: u64) -> Self {
        ChaosConfig {
            seed,
            invoke_failure_rate: rate,
            ..ChaosConfig::default()
        }
    }

    /// Reads chaos knobs from the environment: `GILLIS_CHAOS_RATE` (total
    /// fault rate, split 40% invocation failures / 40% crashes / 20%
    /// corruption) and `GILLIS_CHAOS_SEED` (default `0xC4A05EED`). Returns
    /// `None` when `GILLIS_CHAOS_RATE` is unset or not a positive number;
    /// a malformed value is reported on stderr (see [`crate::envutil`]).
    /// This is how CI's chaos job injects faults into the test suite.
    pub fn from_env() -> Option<Self> {
        let rate: f64 = crate::envutil::env_var("GILLIS_CHAOS_RATE")?;
        // NaN-rejecting: only a definitely-positive rate enables chaos.
        if rate.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return None;
        }
        let rate = rate.min(1.0);
        let seed = crate::envutil::env_var("GILLIS_CHAOS_SEED").unwrap_or(0xC4A0_5EED);
        let orch: f64 = crate::envutil::env_var("GILLIS_CHAOS_ORCH_RATE").unwrap_or(0.0);
        Some(ChaosConfig {
            seed,
            invoke_failure_rate: 0.4 * rate,
            crash_rate: 0.4 * rate,
            straggler_rate: 0.0,
            straggler_slowdown: 4.0,
            corrupt_rate: 0.2 * rate,
            orchestrator_crash_rate: orch.clamp(0.0, 1.0),
        })
    }

    /// Validates the config and builds the injector.
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::InvalidArgument`] when a rate is outside
    /// `[0, 1]`, the rates sum past 1, or the slowdown is below 1.
    pub fn build(self) -> Result<FaultInjector> {
        let rates = [
            self.invoke_failure_rate,
            self.crash_rate,
            self.straggler_rate,
            self.corrupt_rate,
        ];
        if rates.iter().any(|r| !(0.0..=1.0).contains(r)) {
            return Err(FaasError::InvalidArgument(format!(
                "chaos rates must each be in [0, 1]: {self:?}"
            )));
        }
        if rates.iter().sum::<f64>() > 1.0 + 1e-12 {
            return Err(FaasError::InvalidArgument(format!(
                "chaos rates must sum to at most 1: {self:?}"
            )));
        }
        // NaN-rejecting comparison: NaN fails the `>= 1` requirement.
        if self.straggler_slowdown.partial_cmp(&1.0) == Some(std::cmp::Ordering::Less)
            || self.straggler_slowdown.is_nan()
        {
            return Err(FaasError::InvalidArgument(format!(
                "straggler slowdown must be >= 1: {}",
                self.straggler_slowdown
            )));
        }
        if !(0.0..=1.0).contains(&self.orchestrator_crash_rate) {
            return Err(FaasError::InvalidArgument(format!(
                "orchestrator crash rate must be in [0, 1]: {}",
                self.orchestrator_crash_rate
            )));
        }
        Ok(FaultInjector { cfg: self })
    }
}

/// Salt constants separating the independent per-site decisions.
mod salt {
    pub const KIND: u64 = 0x11;
    pub const CRASH_FRAC: u64 = 0x22;
    pub const SLOWDOWN: u64 = 0x33;
    pub const BACKOFF: u64 = 0x44;
    pub const ORCH: u64 = 0x77;
}

/// Cap on the effective (outage-scaled) orchestrator crash probability at
/// one boundary. Without it a severe episode would drive the probability to
/// 1 and every incarnation would crash again forever — the simulated query
/// could never make progress.
const ORCH_CRASH_PROB_CAP: f64 = 0.75;

/// Seedable, deterministic fault sampler: every decision is a pure function
/// of `(config.seed, site)`, so runs are bit-identical across thread counts
/// and the same site re-queried always faults the same way.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    cfg: ChaosConfig,
}

impl FaultInjector {
    /// The config this injector samples from.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    fn word(&self, site: FaultSite, salt: u64) -> u64 {
        let mut h = splitmix64(self.cfg.seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        h = splitmix64(h ^ site.query);
        h = splitmix64(
            h ^ (((site.group as u64) << 40)
                | ((site.part as u64) << 16)
                | ((site.lane as u64) << 8)),
        );
        splitmix64(h ^ site.attempt as u64)
    }

    fn unit(&self, site: FaultSite, salt: u64) -> f64 {
        (self.word(site, salt) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Samples the fault (if any) of one worker execution.
    pub fn fault(&self, site: FaultSite) -> Option<Fault> {
        self.fault_with_rates(
            site,
            self.cfg.invoke_failure_rate,
            self.cfg.crash_rate,
            self.cfg.corrupt_rate,
            self.cfg.straggler_rate,
        )
    }

    /// [`Self::fault`] with the invoke-failure and straggler rates scaled by
    /// an outage-episode multiplier (see [`OutageModel::multiplier`]).
    ///
    /// `mult <= 1` takes exactly the [`Self::fault`] path — outside an
    /// episode the sampler is bit-identical to the per-site baseline. Inside
    /// one, the scaled rates are renormalized to sum at most 1, so a severe
    /// episode saturates into near-certain failure instead of overflowing
    /// the unit interval. The same hash word decides either way: scaling
    /// only moves the thresholds, never the draw.
    pub fn fault_scaled(&self, site: FaultSite, mult: f64) -> Option<Fault> {
        if mult <= 1.0 {
            return self.fault(site);
        }
        let mut invoke = self.cfg.invoke_failure_rate * mult;
        let mut crash = self.cfg.crash_rate;
        let mut corrupt = self.cfg.corrupt_rate;
        let mut straggler = self.cfg.straggler_rate * mult;
        let total = invoke + crash + corrupt + straggler;
        if total > 1.0 {
            let s = 1.0 / total;
            invoke *= s;
            crash *= s;
            corrupt *= s;
            straggler *= s;
        }
        self.fault_with_rates(site, invoke, crash, corrupt, straggler)
    }

    fn fault_with_rates(
        &self,
        site: FaultSite,
        invoke: f64,
        crash: f64,
        corrupt: f64,
        straggler: f64,
    ) -> Option<Fault> {
        let u = self.unit(site, salt::KIND);
        let mut acc = invoke;
        if u < acc {
            return Some(Fault::InvokeFailure);
        }
        acc += crash;
        if u < acc {
            // Crash somewhere in the middle 15%–85% of the compute.
            let work_done = 0.15 + 0.7 * self.unit(site, salt::CRASH_FRAC);
            return Some(Fault::Crash { work_done });
        }
        acc += corrupt;
        if u < acc {
            return Some(Fault::Corrupt);
        }
        acc += straggler;
        if u < acc {
            let excess = self.cfg.straggler_slowdown - 1.0;
            let slowdown = 1.0 + excess * (0.5 + 0.5 * self.unit(site, salt::SLOWDOWN));
            return Some(Fault::Straggler { slowdown });
        }
        None
    }

    /// Deterministic `U[0, 1)` draw used for backoff jitter at this site.
    pub fn backoff_unit(&self, site: FaultSite) -> f64 {
        self.unit(site, salt::BACKOFF)
    }

    /// Whether the orchestrator crashes at `boundary` (the stage index just
    /// completed) of `query`, on its `incarnation`-th life. A pure function
    /// of `(seed, query, boundary, incarnation)` that consumes no RNG
    /// stream, so crash injection never shifts the draws of the work around
    /// it — the property the failover-replay bit-identity proptests pin.
    ///
    /// `mult` is the outage-episode severity multiplier for the
    /// orchestrator domain (`1.0` outside episodes); the scaled probability
    /// is capped below 1 so a crashed orchestrator's replacement can always
    /// eventually make progress.
    pub fn orchestrator_crash(
        &self,
        query: u64,
        boundary: u32,
        incarnation: u32,
        mult: f64,
    ) -> bool {
        let rate = self.cfg.orchestrator_crash_rate;
        if rate <= 0.0 {
            return false;
        }
        let p = (rate * mult.max(1.0)).min(ORCH_CRASH_PROB_CAP);
        let site = FaultSite {
            query,
            group: boundary,
            part: 0,
            attempt: incarnation,
            lane: 2,
        };
        self.unit(site, salt::ORCH) < p
    }
}

/// The process-wide environment-driven injector (see
/// [`ChaosConfig::from_env`]), built once. `None` when the environment sets
/// no chaos, or sets an invalid config.
pub fn env_injector() -> Option<&'static FaultInjector> {
    use std::sync::OnceLock;
    static INJECTOR: OnceLock<Option<FaultInjector>> = OnceLock::new();
    INJECTOR
        .get_or_init(|| ChaosConfig::from_env().and_then(|cfg| cfg.build().ok()))
        .as_ref()
}

/// splitmix64-folded checksum over a wire payload's f32 bit patterns.
///
/// Fork-join joins verify it so transfer corruption is *detected* at the
/// master rather than assumed: a mismatch fails the attempt (triggering the
/// normal retry path) and counts in
/// [`ResilienceCounters::corruptions_detected`].
#[must_use]
pub fn wire_checksum(data: &[f32]) -> u64 {
    let mut h = 0xC0FF_EE00_D5A1_7E5E_u64 ^ data.len() as u64;
    for x in data {
        h = splitmix64(h ^ u64::from(x.to_bits()));
    }
    h
}

/// One correlated-failure blast radius. Outage episodes are sampled per
/// domain, so one episode elevates fault rates across every execution the
/// domain covers *simultaneously* — the correlated shape that i.i.d.
/// per-site sampling cannot produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultDomain {
    /// The whole platform: every worker lane at once.
    Platform,
    /// One worker lane — a single partition's function, across queries.
    Lane {
        /// Plan group index.
        group: u32,
        /// Partition index within the group.
        part: u32,
    },
    /// Every function deployed at `mb` MB instances.
    MemoryTier {
        /// Instance memory in MB.
        mb: u64,
    },
    /// The orchestrator tier: the fork-join master and pipeline stage
    /// orchestrators. An episode here scales the orchestrator *crash* rate,
    /// not worker-lane faults — the control plane itself is the blast
    /// radius.
    Orchestrator,
}

impl FaultDomain {
    /// Stable 64-bit id hashed into episode sampling. The high byte
    /// separates the domain kinds so ids can never collide across kinds.
    fn id(self) -> u64 {
        match self {
            FaultDomain::Platform => 0x01,
            FaultDomain::Lane { group, part } => {
                0x4C00_0000_0000_0000 | (u64::from(group) << 32) | u64::from(part)
            }
            FaultDomain::MemoryTier { mb } => 0x7E00_0000_0000_0000 | mb,
            FaultDomain::Orchestrator => 0x0F,
        }
    }
}

/// Correlated-outage knobs: a deterministic Markov on/off episode model per
/// fault domain. Virtual time is quantized into windows of `window_ms`; in
/// each window each enabled domain independently *starts* an episode with
/// probability `start_prob`, whose length is drawn between `min_windows`
/// and `max_windows`. While any covering episode is active the domain is
/// "in outage" and invoke-failure/straggler rates are multiplied by
/// `severity` (once per active domain; overlapping domains compound).
///
/// Episode membership is a pure function of `(seed, domain id, window
/// index)` — no state machine is stepped, so any thread can ask about any
/// instant in any order and get the same answer (the determinism the
/// serving proptests pin across `GILLIS_THREADS` {1, 2, 8}).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutageConfig {
    /// Seed driving episode starts and lengths (independent of the chaos
    /// seed so outages can be re-rolled without moving per-site faults).
    pub seed: u64,
    /// Virtual-time window size in milliseconds; episode state is constant
    /// within a window.
    pub window_ms: f64,
    /// Per-window probability that a domain starts a new episode.
    pub start_prob: f64,
    /// Minimum episode length, in windows (≥ 1).
    pub min_windows: u32,
    /// Maximum episode length, in windows (≥ `min_windows`).
    pub max_windows: u32,
    /// Multiplier applied to invoke-failure and straggler rates per active
    /// domain (≥ 1).
    pub severity: f64,
    /// Enables the platform-wide domain.
    pub platform: bool,
    /// Enables the per-lane domains.
    pub lanes: bool,
    /// Enables the per-memory-tier domains.
    pub memory_tiers: bool,
    /// Enables the orchestrator domain: episodes scale the chaos config's
    /// orchestrator crash rate (see
    /// [`FaultInjector::orchestrator_crash`]) instead of worker-lane
    /// fault rates.
    pub orchestrators: bool,
}

impl Default for OutageConfig {
    fn default() -> Self {
        OutageConfig {
            seed: 0x007A_6E5E,
            window_ms: 250.0,
            start_prob: 0.02,
            min_windows: 4,
            max_windows: 16,
            severity: 8.0,
            platform: true,
            lanes: true,
            memory_tiers: true,
            orchestrators: false,
        }
    }
}

impl OutageConfig {
    /// Preset for severe correlated outages: long platform-wide episodes
    /// at `severity`× fault rates, covering a large fraction of the run.
    pub fn severe(severity: f64, seed: u64) -> Self {
        OutageConfig {
            seed,
            window_ms: 200.0,
            start_prob: 0.08,
            min_windows: 10,
            max_windows: 25,
            severity,
            platform: true,
            lanes: false,
            memory_tiers: false,
            orchestrators: false,
        }
    }

    /// Reads outage knobs from the environment. `GILLIS_OUTAGE_SEVERITY`
    /// enables the model (a multiplier ≥ 1); `GILLIS_OUTAGE_SEED`,
    /// `GILLIS_OUTAGE_WINDOW_MS`, `GILLIS_OUTAGE_START_PROB`,
    /// `GILLIS_OUTAGE_MIN_WINDOWS`, `GILLIS_OUTAGE_MAX_WINDOWS` override
    /// defaults, and `GILLIS_OUTAGE_DOMAINS` is a comma list drawn from
    /// `platform`, `lane`, `tier`. Malformed values are reported on stderr.
    pub fn from_env() -> Option<Self> {
        use crate::envutil::env_var;
        let severity: f64 = env_var("GILLIS_OUTAGE_SEVERITY")?;
        if severity < 1.0 || severity.is_nan() {
            return None;
        }
        let mut cfg = OutageConfig {
            severity,
            ..OutageConfig::default()
        };
        if let Some(seed) = env_var("GILLIS_OUTAGE_SEED") {
            cfg.seed = seed;
        }
        if let Some(w) = env_var("GILLIS_OUTAGE_WINDOW_MS") {
            cfg.window_ms = w;
        }
        if let Some(p) = env_var("GILLIS_OUTAGE_START_PROB") {
            cfg.start_prob = p;
        }
        if let Some(n) = env_var("GILLIS_OUTAGE_MIN_WINDOWS") {
            cfg.min_windows = n;
        }
        if let Some(n) = env_var("GILLIS_OUTAGE_MAX_WINDOWS") {
            cfg.max_windows = n;
        }
        if let Ok(spec) = std::env::var("GILLIS_OUTAGE_DOMAINS") {
            cfg.platform = false;
            cfg.lanes = false;
            cfg.memory_tiers = false;
            cfg.orchestrators = false;
            for name in spec.split(',') {
                match name.trim() {
                    "platform" => cfg.platform = true,
                    "lane" | "lanes" => cfg.lanes = true,
                    "tier" | "tiers" | "memory" => cfg.memory_tiers = true,
                    "orchestrator" | "orchestrators" | "orch" => cfg.orchestrators = true,
                    other => eprintln!(
                        "gillis: ignoring unknown GILLIS_OUTAGE_DOMAINS entry {other:?} \
                         (platform | lane | tier | orchestrator)"
                    ),
                }
            }
        }
        Some(cfg)
    }

    /// Validates the config and builds the episode model.
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::InvalidArgument`] for a non-positive window, a
    /// start probability outside `[0, 1]`, inverted or zero length bounds,
    /// an overlong lookback (`max_windows` > 4096), a severity below 1, or
    /// no enabled domain.
    pub fn build(self) -> Result<OutageModel> {
        if self.window_ms <= 0.0 || !self.window_ms.is_finite() {
            return Err(FaasError::InvalidArgument(format!(
                "outage window_ms must be positive and finite: {}",
                self.window_ms
            )));
        }
        if !(0.0..=1.0).contains(&self.start_prob) {
            return Err(FaasError::InvalidArgument(format!(
                "outage start_prob must be in [0, 1]: {}",
                self.start_prob
            )));
        }
        if self.min_windows == 0 || self.min_windows > self.max_windows {
            return Err(FaasError::InvalidArgument(format!(
                "outage length bounds need 1 <= min <= max: {}..{}",
                self.min_windows, self.max_windows
            )));
        }
        if self.max_windows > 4096 {
            return Err(FaasError::InvalidArgument(format!(
                "outage max_windows is capped at 4096 (episode lookup is \
                 O(max_windows)): {}",
                self.max_windows
            )));
        }
        if self.severity < 1.0 || self.severity.is_nan() {
            return Err(FaasError::InvalidArgument(format!(
                "outage severity must be >= 1: {}",
                self.severity
            )));
        }
        if !(self.platform || self.lanes || self.memory_tiers || self.orchestrators) {
            return Err(FaasError::InvalidArgument(
                "outage config enables no fault domain".to_string(),
            ));
        }
        Ok(OutageModel { cfg: self })
    }

    /// Serializes to the versioned key=value text format.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut domains: Vec<&str> = Vec::new();
        if self.platform {
            domains.push("platform");
        }
        if self.lanes {
            domains.push("lane");
        }
        if self.memory_tiers {
            domains.push("tier");
        }
        if self.orchestrators {
            domains.push("orchestrator");
        }
        format!(
            "gillis-outage v1\nseed={} window_ms={} start_prob={} min_windows={} \
             max_windows={} severity={} domains={}\n",
            self.seed,
            self.window_ms,
            self.start_prob,
            self.min_windows,
            self.max_windows,
            self.severity,
            domains.join(",")
        )
    }

    /// Parses the [`Self::to_text`] format.
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::InvalidArgument`] on a bad header, unknown key,
    /// or malformed value, and the [`Self::build`] validation errors on
    /// out-of-range knobs (so a parsed config is always buildable).
    pub fn from_text(text: &str) -> Result<Self> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().unwrap_or_default().trim();
        if header != "gillis-outage v1" {
            return Err(FaasError::InvalidArgument(format!(
                "expected 'gillis-outage v1' header, got {header:?}"
            )));
        }
        let mut cfg = OutageConfig::default();
        for line in lines {
            for tok in line.split_whitespace() {
                let (key, value) = tok.split_once('=').ok_or_else(|| {
                    FaasError::InvalidArgument(format!("expected key=value, got {tok:?}"))
                })?;
                let bad = |e: &dyn std::fmt::Display| {
                    FaasError::InvalidArgument(format!("bad {key} value {value:?}: {e}"))
                };
                match key {
                    "seed" => cfg.seed = value.parse().map_err(|e| bad(&e))?,
                    "window_ms" => cfg.window_ms = value.parse().map_err(|e| bad(&e))?,
                    "start_prob" => cfg.start_prob = value.parse().map_err(|e| bad(&e))?,
                    "min_windows" => cfg.min_windows = value.parse().map_err(|e| bad(&e))?,
                    "max_windows" => cfg.max_windows = value.parse().map_err(|e| bad(&e))?,
                    "severity" => cfg.severity = value.parse().map_err(|e| bad(&e))?,
                    "domains" => {
                        cfg.platform = false;
                        cfg.lanes = false;
                        cfg.memory_tiers = false;
                        cfg.orchestrators = false;
                        for name in value.split(',').filter(|d| !d.is_empty()) {
                            match name {
                                "platform" => cfg.platform = true,
                                "lane" | "lanes" => cfg.lanes = true,
                                "tier" | "tiers" | "memory" => cfg.memory_tiers = true,
                                "orchestrator" | "orchestrators" | "orch" => {
                                    cfg.orchestrators = true;
                                }
                                other => {
                                    return Err(FaasError::InvalidArgument(format!(
                                        "unknown outage domain {other:?}"
                                    )));
                                }
                            }
                        }
                    }
                    other => {
                        return Err(FaasError::InvalidArgument(format!(
                            "unknown outage key {other:?}"
                        )));
                    }
                }
            }
        }
        cfg.build()?;
        Ok(cfg)
    }
}

/// Salt constants for the independent per-(domain, window) decisions.
mod outage_salt {
    pub const START: u64 = 0x55;
    pub const LEN: u64 = 0x66;
}

/// Validated outage-episode sampler (see [`OutageConfig`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageModel {
    cfg: OutageConfig,
}

impl OutageModel {
    /// The config this model samples from.
    pub fn config(&self) -> &OutageConfig {
        &self.cfg
    }

    fn word(&self, domain: u64, window: u64, salt: u64) -> u64 {
        let mut h = splitmix64(self.cfg.seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        h = splitmix64(h ^ domain);
        splitmix64(h ^ window)
    }

    fn starts_at(&self, domain: u64, window: u64) -> bool {
        let u = (self.word(domain, window, outage_salt::START) >> 11) as f64 / (1u64 << 53) as f64;
        u < self.cfg.start_prob
    }

    fn episode_len(&self, domain: u64, window: u64) -> u64 {
        let span = u64::from(self.cfg.max_windows - self.cfg.min_windows) + 1;
        u64::from(self.cfg.min_windows) + self.word(domain, window, outage_salt::LEN) % span
    }

    /// Whether `domain` is inside an outage episode at virtual time `t_ms`.
    ///
    /// An episode started in window `s` covers windows `[s, s + len)`, so
    /// membership needs only a bounded lookback of `max_windows` starts —
    /// each itself a pure hash — keeping the query stateless.
    pub fn in_episode(&self, domain: FaultDomain, t_ms: f64) -> bool {
        let id = domain.id();
        let w = (t_ms.max(0.0) / self.cfg.window_ms) as u64;
        let lo = w.saturating_sub(u64::from(self.cfg.max_windows) - 1);
        (lo..=w).any(|s| self.starts_at(id, s) && s + self.episode_len(id, s) > w)
    }

    /// Severity multiplier for a worker-lane execution at `t_ms`: the
    /// product over active enabled domains (platform, this lane, this
    /// memory tier) of the configured severity. `1.0` outside all episodes.
    pub fn multiplier(&self, group: u32, part: u32, memory_mb: u64, t_ms: f64) -> f64 {
        let mut m = 1.0;
        if self.cfg.platform && self.in_episode(FaultDomain::Platform, t_ms) {
            m *= self.cfg.severity;
        }
        if self.cfg.lanes && self.in_episode(FaultDomain::Lane { group, part }, t_ms) {
            m *= self.cfg.severity;
        }
        if self.cfg.memory_tiers && self.in_episode(FaultDomain::MemoryTier { mb: memory_mb }, t_ms)
        {
            m *= self.cfg.severity;
        }
        m
    }

    /// Severity multiplier for an orchestrator crash decision at `t_ms`:
    /// the product of the platform and orchestrator domains' severities
    /// while their episodes are active (worker-lane and memory-tier domains
    /// do not cover the control plane). `1.0` outside all episodes.
    pub fn orchestrator_multiplier(&self, t_ms: f64) -> f64 {
        let mut m = 1.0;
        if self.cfg.platform && self.in_episode(FaultDomain::Platform, t_ms) {
            m *= self.cfg.severity;
        }
        if self.cfg.orchestrators && self.in_episode(FaultDomain::Orchestrator, t_ms) {
            m *= self.cfg.severity;
        }
        m
    }

    /// Fraction of the windows covering `[0, horizon_ms)` during which
    /// `domain` is in an episode — reporting helper for benches.
    pub fn episode_fraction(&self, domain: FaultDomain, horizon_ms: f64) -> f64 {
        let windows = (horizon_ms / self.cfg.window_ms).ceil().max(1.0) as u64;
        let active = (0..windows)
            .filter(|&w| self.in_episode(domain, (w as f64 + 0.5) * self.cfg.window_ms))
            .count();
        active as f64 / windows as f64
    }
}

/// What the master does about worker faults.
///
/// Timeouts and hedge delays are expressed as multiples of the *predicted*
/// p95 latency of the attempt (compute prediction plus invocation-jitter
/// quantile), so the knobs transfer across partitions of very different
/// sizes. `f64::INFINITY` disables the respective mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResiliencePolicy {
    /// Total attempts per worker partition, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, in milliseconds (0 = immediate).
    pub backoff_base_ms: f64,
    /// Multiplier applied per further retry.
    pub backoff_multiplier: f64,
    /// Upper bound on a single backoff, in milliseconds.
    pub backoff_cap_ms: f64,
    /// Jitter fraction in `[0, 1]`: a backoff `b` becomes
    /// `b × (1 − frac/2 + frac × u)` for a deterministic `u ∈ [0, 1)`.
    pub backoff_jitter_frac: f64,
    /// Per-attempt timeout = this factor × predicted attempt p95.
    pub attempt_timeout_factor: f64,
    /// Hedge launch delay = this factor × predicted attempt p95; the hedge
    /// runs the same partition on a second instance, first result wins.
    pub hedge_delay_factor: f64,
    /// On retry-budget exhaustion, the master recomputes the shard locally
    /// (degrading that group to single-function semantics) instead of
    /// failing the query.
    pub local_fallback: bool,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy::backoff()
    }
}

impl ResiliencePolicy {
    /// No resilience at all: one attempt, no hedge; failures degrade to a
    /// master-local recompute.
    pub fn none() -> Self {
        ResiliencePolicy {
            max_attempts: 1,
            backoff_base_ms: 0.0,
            backoff_multiplier: 1.0,
            backoff_cap_ms: 0.0,
            backoff_jitter_frac: 0.0,
            attempt_timeout_factor: f64::INFINITY,
            hedge_delay_factor: f64::INFINITY,
            local_fallback: true,
        }
    }

    /// Naive immediate retry (the pre-resilience behaviour, minus the
    /// "final attempt always succeeds" fiction): four attempts, no backoff,
    /// no timeout, no hedge.
    pub fn naive_retry() -> Self {
        ResiliencePolicy {
            max_attempts: 4,
            ..ResiliencePolicy::none()
        }
    }

    /// Exponential backoff with deterministic jitter and per-attempt
    /// timeouts — the default.
    pub fn backoff() -> Self {
        ResiliencePolicy {
            max_attempts: 4,
            backoff_base_ms: 2.0,
            backoff_multiplier: 2.0,
            backoff_cap_ms: 60.0,
            backoff_jitter_frac: 0.5,
            attempt_timeout_factor: 10.0,
            hedge_delay_factor: f64::INFINITY,
            local_fallback: true,
        }
    }

    /// Backoff plus hedged requests: a speculative duplicate is launched
    /// once an attempt exceeds its predicted p95, first result wins.
    pub fn backoff_hedged() -> Self {
        ResiliencePolicy {
            hedge_delay_factor: 1.0,
            ..ResiliencePolicy::backoff()
        }
    }

    /// Whether hedging is enabled.
    pub fn hedged(&self) -> bool {
        self.hedge_delay_factor.is_finite()
    }

    /// Backoff before retry number `retry + 1` (zero-based retry index),
    /// jittered by a deterministic `unit ∈ [0, 1)`.
    pub fn backoff_ms(&self, retry: u32, unit: f64) -> f64 {
        if self.backoff_base_ms <= 0.0 {
            return 0.0;
        }
        let raw = self.backoff_base_ms * self.backoff_multiplier.powi(retry as i32);
        let capped = raw.min(self.backoff_cap_ms);
        let f = self.backoff_jitter_frac;
        capped * (1.0 - f / 2.0 + f * unit)
    }

    /// Validates the knob ranges (the presets are all valid by
    /// construction; this guards configs parsed from text).
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::InvalidArgument`] for zero attempts, a negative
    /// or non-finite backoff shape, a jitter fraction outside `[0, 1]`, or
    /// a non-positive timeout/hedge factor (NaN always fails).
    pub fn validate(&self) -> Result<()> {
        if self.max_attempts == 0 {
            return Err(FaasError::InvalidArgument(
                "resilience max_attempts must be >= 1".to_string(),
            ));
        }
        for (name, v) in [
            ("backoff_base_ms", self.backoff_base_ms),
            ("backoff_multiplier", self.backoff_multiplier),
            ("backoff_cap_ms", self.backoff_cap_ms),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(FaasError::InvalidArgument(format!(
                    "resilience {name} must be finite and >= 0: {v}"
                )));
            }
        }
        if !(0.0..=1.0).contains(&self.backoff_jitter_frac) {
            return Err(FaasError::InvalidArgument(format!(
                "resilience backoff_jitter_frac must be in [0, 1]: {}",
                self.backoff_jitter_frac
            )));
        }
        for (name, v) in [
            ("attempt_timeout_factor", self.attempt_timeout_factor),
            ("hedge_delay_factor", self.hedge_delay_factor),
        ] {
            // NaN-rejecting: inf disables, but the factor must be positive.
            if v.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                return Err(FaasError::InvalidArgument(format!(
                    "resilience {name} must be positive (inf disables): {v}"
                )));
            }
        }
        Ok(())
    }

    /// Serializes to the versioned key=value text format.
    #[must_use]
    pub fn to_text(&self) -> String {
        format!(
            "gillis-resilience v1\nmax_attempts={} backoff_base_ms={} backoff_multiplier={} \
             backoff_cap_ms={} backoff_jitter_frac={} attempt_timeout_factor={} \
             hedge_delay_factor={} local_fallback={}\n",
            self.max_attempts,
            self.backoff_base_ms,
            self.backoff_multiplier,
            self.backoff_cap_ms,
            self.backoff_jitter_frac,
            self.attempt_timeout_factor,
            self.hedge_delay_factor,
            self.local_fallback
        )
    }

    /// Parses the [`Self::to_text`] format.
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::InvalidArgument`] on a bad header, unknown key,
    /// or malformed value, and [`Self::validate`] errors on out-of-range
    /// knobs.
    pub fn from_text(text: &str) -> Result<Self> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().unwrap_or_default().trim();
        if header != "gillis-resilience v1" {
            return Err(FaasError::InvalidArgument(format!(
                "expected 'gillis-resilience v1' header, got {header:?}"
            )));
        }
        let mut policy = ResiliencePolicy::default();
        for line in lines {
            for tok in line.split_whitespace() {
                let (key, value) = tok.split_once('=').ok_or_else(|| {
                    FaasError::InvalidArgument(format!("expected key=value, got {tok:?}"))
                })?;
                let bad = |e: &dyn std::fmt::Display| {
                    FaasError::InvalidArgument(format!("bad {key} value {value:?}: {e}"))
                };
                match key {
                    "max_attempts" => policy.max_attempts = value.parse().map_err(|e| bad(&e))?,
                    "backoff_base_ms" => {
                        policy.backoff_base_ms = value.parse().map_err(|e| bad(&e))?;
                    }
                    "backoff_multiplier" => {
                        policy.backoff_multiplier = value.parse().map_err(|e| bad(&e))?;
                    }
                    "backoff_cap_ms" => {
                        policy.backoff_cap_ms = value.parse().map_err(|e| bad(&e))?;
                    }
                    "backoff_jitter_frac" => {
                        policy.backoff_jitter_frac = value.parse().map_err(|e| bad(&e))?;
                    }
                    "attempt_timeout_factor" => {
                        policy.attempt_timeout_factor = value.parse().map_err(|e| bad(&e))?;
                    }
                    "hedge_delay_factor" => {
                        policy.hedge_delay_factor = value.parse().map_err(|e| bad(&e))?;
                    }
                    "local_fallback" => {
                        policy.local_fallback = value.parse().map_err(|e| bad(&e))?;
                    }
                    other => {
                        return Err(FaasError::InvalidArgument(format!(
                            "unknown resilience key {other:?}"
                        )));
                    }
                }
            }
        }
        policy.validate()?;
        Ok(policy)
    }
}

/// Terminal status of one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryStatus {
    /// Every worker partition succeeded within its retry budget.
    Ok,
    /// At least one shard exhausted its budget and was recomputed locally
    /// by the master (correct result, degraded latency).
    Degraded,
    /// A shard exhausted its budget with local fallback disabled; the
    /// query produced no result.
    Failed,
    /// The admission queue rejected the query before any work started
    /// (queue full, or predicted wait + latency already past the deadline).
    Shed,
    /// The query was admitted but its deadline expired mid-plan; remaining
    /// work was cancelled.
    DeadlineExceeded,
}

/// Honest resilience accounting across a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ResilienceCounters {
    /// Retry attempts launched (beyond each worker's first attempt).
    pub retries: u64,
    /// Hedged (speculative duplicate) executions launched.
    pub hedges: u64,
    /// Hedges whose result was accepted over the primary's.
    pub hedge_wins: u64,
    /// Attempts abandoned at the per-attempt timeout.
    pub timeouts: u64,
    /// Shards recomputed locally by the master after budget exhaustion.
    pub degraded_shards: u64,
    /// Queries fully served by workers.
    pub ok_queries: u64,
    /// Queries that completed only via local fallback.
    pub degraded_queries: u64,
    /// Queries that produced no result.
    pub failed_queries: u64,
    /// Queries rejected at admission (overload shedding).
    pub shed_queries: u64,
    /// Queries cancelled mid-plan by deadline expiry.
    pub deadline_exceeded_queries: u64,
    /// Worker lanes launched: first attempts, retries, and hedges — the
    /// numerator of [`Self::retry_amplification`].
    pub worker_invocations: u64,
    /// First attempts launched (attempt 0, primary lane): one per worker
    /// partition a query actually dispatched.
    pub first_attempts: u64,
    /// First attempts that resolved successfully — the health signal the
    /// brownout ladder and retry-budget refill watch.
    pub first_attempt_successes: u64,
    /// Corrupted responses caught by the wire checksum at the join.
    pub corruptions_detected: u64,
    /// Retries skipped because the retry budget was exhausted.
    pub budget_denied_retries: u64,
    /// Hedges skipped because the retry budget was exhausted.
    pub budget_denied_hedges: u64,
}

impl ResilienceCounters {
    /// Folds another counter set into this one.
    pub fn absorb(&mut self, other: &ResilienceCounters) {
        self.retries += other.retries;
        self.hedges += other.hedges;
        self.hedge_wins += other.hedge_wins;
        self.timeouts += other.timeouts;
        self.degraded_shards += other.degraded_shards;
        self.ok_queries += other.ok_queries;
        self.degraded_queries += other.degraded_queries;
        self.failed_queries += other.failed_queries;
        self.shed_queries += other.shed_queries;
        self.deadline_exceeded_queries += other.deadline_exceeded_queries;
        self.worker_invocations += other.worker_invocations;
        self.first_attempts += other.first_attempts;
        self.first_attempt_successes += other.first_attempt_successes;
        self.corruptions_detected += other.corruptions_detected;
        self.budget_denied_retries += other.budget_denied_retries;
        self.budget_denied_hedges += other.budget_denied_hedges;
    }

    /// Worker invocations per first attempt (≥ 1 whenever anything ran):
    /// 1.0 when no retry or hedge ever launched; a naive retry storm under
    /// total failure approaches the policy's `max_attempts`. First attempts
    /// are admitted queries × dispatched worker lanes, so this is the
    /// per-lane form of the "invocations ÷ admitted queries" amplification.
    pub fn retry_amplification(&self) -> f64 {
        if self.first_attempts == 0 {
            return 1.0;
        }
        self.worker_invocations as f64 / self.first_attempts as f64
    }

    /// Records one query's terminal status.
    pub fn record_status(&mut self, status: QueryStatus) {
        match status {
            QueryStatus::Ok => self.ok_queries += 1,
            QueryStatus::Degraded => self.degraded_queries += 1,
            QueryStatus::Failed => self.failed_queries += 1,
            QueryStatus::Shed => self.shed_queries += 1,
            QueryStatus::DeadlineExceeded => self.deadline_exceeded_queries += 1,
        }
    }

    /// Total queries accounted for (including shed and deadline-expired).
    pub fn queries(&self) -> u64 {
        self.ok_queries
            + self.degraded_queries
            + self.failed_queries
            + self.shed_queries
            + self.deadline_exceeded_queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(query: u64, attempt: u32) -> FaultSite {
        FaultSite {
            query,
            group: 1,
            part: 2,
            attempt,
            lane: 0,
        }
    }

    #[test]
    fn config_validation() {
        assert!(ChaosConfig::default().build().is_ok());
        assert!(ChaosConfig {
            invoke_failure_rate: 1.2,
            ..ChaosConfig::default()
        }
        .build()
        .is_err());
        assert!(ChaosConfig {
            invoke_failure_rate: 0.6,
            crash_rate: 0.6,
            ..ChaosConfig::default()
        }
        .build()
        .is_err());
        assert!(ChaosConfig {
            straggler_rate: 0.1,
            straggler_slowdown: 0.5,
            ..ChaosConfig::default()
        }
        .build()
        .is_err());
        assert!(ChaosConfig {
            invoke_failure_rate: f64::NAN,
            ..ChaosConfig::default()
        }
        .build()
        .is_err());
    }

    #[test]
    fn sampling_is_deterministic_and_seed_sensitive() {
        let a = ChaosConfig {
            seed: 7,
            invoke_failure_rate: 0.2,
            crash_rate: 0.2,
            straggler_rate: 0.2,
            corrupt_rate: 0.2,
            ..ChaosConfig::default()
        }
        .build()
        .unwrap();
        let b = ChaosConfig {
            seed: 8,
            ..*a.config()
        }
        .build()
        .unwrap();
        let sites: Vec<FaultSite> = (0..200).map(|q| site(q, 0)).collect();
        let fa: Vec<_> = sites.iter().map(|&s| a.fault(s)).collect();
        let fa2: Vec<_> = sites.iter().map(|&s| a.fault(s)).collect();
        assert_eq!(fa, fa2, "same seed + site must fault identically");
        let fb: Vec<_> = sites.iter().map(|&s| b.fault(s)).collect();
        assert_ne!(fa, fb, "different seeds should differ somewhere");
    }

    #[test]
    fn fault_rates_are_respected() {
        let inj = ChaosConfig {
            seed: 3,
            invoke_failure_rate: 0.1,
            crash_rate: 0.1,
            straggler_rate: 0.1,
            corrupt_rate: 0.1,
            straggler_slowdown: 4.0,
            ..ChaosConfig::default()
        }
        .build()
        .unwrap();
        let n = 20_000u64;
        let mut counts = [0u64; 5];
        for q in 0..n {
            match inj.fault(site(q, 0)) {
                None => counts[0] += 1,
                Some(Fault::InvokeFailure) => counts[1] += 1,
                Some(Fault::Crash { work_done }) => {
                    assert!((0.15..=0.85).contains(&work_done));
                    counts[2] += 1;
                }
                Some(Fault::Straggler { slowdown }) => {
                    assert!((1.0..=4.0).contains(&slowdown));
                    counts[3] += 1;
                }
                Some(Fault::Corrupt) => counts[4] += 1,
            }
        }
        assert!((counts[0] as f64 / n as f64 - 0.6).abs() < 0.02);
        for &c in &counts[1..] {
            assert!(
                (c as f64 / n as f64 - 0.1).abs() < 0.01,
                "counts {counts:?}"
            );
        }
    }

    #[test]
    fn lanes_and_attempts_are_independent() {
        let inj = ChaosConfig {
            seed: 5,
            invoke_failure_rate: 0.5,
            ..ChaosConfig::default()
        }
        .build()
        .unwrap();
        let primary: Vec<_> = (0..200)
            .map(|q| {
                inj.fault(FaultSite {
                    lane: 0,
                    ..site(q, 0)
                })
            })
            .collect();
        let hedge: Vec<_> = (0..200)
            .map(|q| {
                inj.fault(FaultSite {
                    lane: 1,
                    ..site(q, 0)
                })
            })
            .collect();
        let retry: Vec<_> = (0..200).map(|q| inj.fault(site(q, 1))).collect();
        assert_ne!(primary, hedge);
        assert_ne!(primary, retry);
    }

    #[test]
    fn backoff_schedule_grows_and_caps() {
        let p = ResiliencePolicy::backoff();
        let b0 = p.backoff_ms(0, 0.5);
        let b1 = p.backoff_ms(1, 0.5);
        let b9 = p.backoff_ms(9, 0.5);
        assert!(b0 > 0.0 && b1 > b0);
        assert!(b9 <= p.backoff_cap_ms * (1.0 + p.backoff_jitter_frac / 2.0));
        // Jitter brackets the nominal value.
        assert!(p.backoff_ms(0, 0.0) < p.backoff_ms(0, 0.999));
        // Naive retry never waits.
        assert_eq!(ResiliencePolicy::naive_retry().backoff_ms(3, 0.7), 0.0);
    }

    #[test]
    fn policy_presets() {
        assert_eq!(ResiliencePolicy::none().max_attempts, 1);
        assert!(!ResiliencePolicy::backoff().hedged());
        assert!(ResiliencePolicy::backoff_hedged().hedged());
        assert_eq!(
            ResiliencePolicy::default(),
            ResiliencePolicy::backoff(),
            "default policy is plain backoff"
        );
    }

    #[test]
    fn counters_absorb_and_account() {
        let mut a = ResilienceCounters {
            retries: 1,
            hedges: 2,
            worker_invocations: 9,
            first_attempts: 6,
            first_attempt_successes: 5,
            corruptions_detected: 3,
            budget_denied_retries: 2,
            budget_denied_hedges: 1,
            ..ResilienceCounters::default()
        };
        a.record_status(QueryStatus::Ok);
        a.record_status(QueryStatus::Degraded);
        a.record_status(QueryStatus::Failed);
        let mut b = ResilienceCounters::default();
        b.absorb(&a);
        b.absorb(&a);
        assert_eq!(b.retries, 2);
        assert_eq!(b.hedges, 4);
        assert_eq!(b.queries(), 6);
        assert_eq!(b.ok_queries, 2);
        assert_eq!(b.degraded_queries, 2);
        assert_eq!(b.failed_queries, 2);
        assert_eq!(b.worker_invocations, 18);
        assert_eq!(b.first_attempts, 12);
        assert_eq!(b.first_attempt_successes, 10);
        assert_eq!(b.corruptions_detected, 6);
        assert_eq!(b.budget_denied_retries, 4);
        assert_eq!(b.budget_denied_hedges, 2);
        // Amplification absorbs correctly too: the ratio of sums.
        assert!((b.retry_amplification() - 1.5).abs() < 1e-12);
        assert_eq!(ResilienceCounters::default().retry_amplification(), 1.0);
    }

    #[test]
    fn scaled_sampling_matches_baseline_at_unit_multiplier() {
        let inj = ChaosConfig {
            seed: 17,
            invoke_failure_rate: 0.1,
            crash_rate: 0.1,
            straggler_rate: 0.1,
            corrupt_rate: 0.1,
            ..ChaosConfig::default()
        }
        .build()
        .unwrap();
        for q in 0..500 {
            let s = site(q, 0);
            assert_eq!(inj.fault_scaled(s, 1.0), inj.fault(s));
            assert_eq!(inj.fault_scaled(s, 0.5), inj.fault(s));
        }
    }

    #[test]
    fn scaled_sampling_raises_failure_and_saturates() {
        let inj = ChaosConfig {
            seed: 23,
            invoke_failure_rate: 0.05,
            straggler_rate: 0.05,
            ..ChaosConfig::default()
        }
        .build()
        .unwrap();
        let n = 10_000u64;
        let faulted = |mult: f64| {
            (0..n)
                .filter(|&q| inj.fault_scaled(site(q, 0), mult).is_some())
                .count() as f64
                / n as f64
        };
        let base = faulted(1.0);
        let stormy = faulted(8.0);
        assert!((base - 0.1).abs() < 0.02, "{base}");
        assert!((stormy - 0.8).abs() < 0.02, "{stormy}");
        // Past saturation the renormalized rates sum to 1: everything faults.
        assert!((faulted(100.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn outage_episodes_are_pure_and_cover_expected_fraction() {
        let model = OutageConfig {
            seed: 11,
            window_ms: 100.0,
            start_prob: 0.05,
            min_windows: 5,
            max_windows: 10,
            severity: 10.0,
            platform: true,
            lanes: true,
            memory_tiers: true,
            orchestrators: false,
        }
        .build()
        .unwrap();
        // Stateless: any instant queried twice (or in any order) agrees.
        let probes: Vec<f64> = (0..2000).map(|i| i as f64 * 37.7).collect();
        let fwd: Vec<bool> = probes
            .iter()
            .map(|&t| model.in_episode(FaultDomain::Platform, t))
            .collect();
        let rev: Vec<bool> = probes
            .iter()
            .rev()
            .map(|&t| model.in_episode(FaultDomain::Platform, t))
            .collect();
        assert_eq!(fwd, rev.into_iter().rev().collect::<Vec<_>>());
        assert!(fwd.iter().any(|&b| b), "episodes should occur");
        assert!(!fwd.iter().all(|&b| b), "episodes should end");
        // Coverage roughly matches start_prob × mean length (geometric-ish;
        // overlaps make it sub-additive, so allow a wide band).
        let frac = model.episode_fraction(FaultDomain::Platform, 500_000.0);
        assert!((0.1..=0.6).contains(&frac), "{frac}");
        // Domains are independent: the lane domain differs somewhere.
        let lane: Vec<bool> = probes
            .iter()
            .map(|&t| model.in_episode(FaultDomain::Lane { group: 0, part: 1 }, t))
            .collect();
        assert_ne!(fwd, lane);
        // Multiplier compounds across simultaneously-active domains.
        let t_active = probes[fwd.iter().position(|&b| b).unwrap()];
        assert!(model.multiplier(0, 1, 2048, t_active) >= 10.0);
    }

    #[test]
    fn outage_config_validation() {
        assert!(OutageConfig::default().build().is_ok());
        assert!(OutageConfig {
            window_ms: 0.0,
            ..OutageConfig::default()
        }
        .build()
        .is_err());
        assert!(OutageConfig {
            start_prob: 1.5,
            ..OutageConfig::default()
        }
        .build()
        .is_err());
        assert!(OutageConfig {
            min_windows: 5,
            max_windows: 4,
            ..OutageConfig::default()
        }
        .build()
        .is_err());
        assert!(OutageConfig {
            severity: 0.5,
            ..OutageConfig::default()
        }
        .build()
        .is_err());
        assert!(OutageConfig {
            platform: false,
            lanes: false,
            memory_tiers: false,
            ..OutageConfig::default()
        }
        .build()
        .is_err());
    }

    #[test]
    fn wire_checksum_detects_any_single_bit_flip() {
        let data: Vec<f32> = (0..64).map(|i| (i as f32 - 32.0) / 7.0).collect();
        let sum = wire_checksum(&data);
        assert_eq!(sum, wire_checksum(&data), "checksum is deterministic");
        for i in [0usize, 31, 63] {
            let mut corrupted = data.clone();
            corrupted[i] = f32::from_bits(corrupted[i].to_bits() ^ 0x8000_0000);
            assert_ne!(sum, wire_checksum(&corrupted), "flip at {i} undetected");
        }
        assert_ne!(wire_checksum(&data[..63]), sum, "length is covered");
    }

    #[test]
    fn orchestrator_crashes_are_pure_rate_respecting_and_capped() {
        let inj = ChaosConfig {
            seed: 41,
            orchestrator_crash_rate: 0.1,
            ..ChaosConfig::default()
        }
        .build()
        .unwrap();
        let n = 20_000u64;
        let crashed = |mult: f64| {
            (0..n)
                .filter(|&q| inj.orchestrator_crash(q, 1, 0, mult))
                .count() as f64
                / n as f64
        };
        assert!((crashed(1.0) - 0.1).abs() < 0.01);
        // Outage scaling raises the probability but saturates at the cap.
        assert!((crashed(4.0) - 0.4).abs() < 0.015);
        assert!((crashed(100.0) - 0.75).abs() < 0.015);
        // Pure: the same (query, boundary, incarnation) always agrees, and
        // each coordinate is independent.
        for q in 0..200 {
            assert_eq!(
                inj.orchestrator_crash(q, 2, 1, 1.0),
                inj.orchestrator_crash(q, 2, 1, 1.0)
            );
        }
        let by_boundary: Vec<bool> = (0..200)
            .map(|q| inj.orchestrator_crash(q, 0, 0, 8.0))
            .collect();
        let other_boundary: Vec<bool> = (0..200)
            .map(|q| inj.orchestrator_crash(q, 1, 0, 8.0))
            .collect();
        let other_incarnation: Vec<bool> = (0..200)
            .map(|q| inj.orchestrator_crash(q, 0, 1, 8.0))
            .collect();
        assert_ne!(by_boundary, other_boundary);
        assert_ne!(by_boundary, other_incarnation);
        // Worker-fault sampling is untouched by the orchestrator rate.
        let plain = ChaosConfig {
            seed: 41,
            ..ChaosConfig::default()
        }
        .build()
        .unwrap();
        for q in 0..200 {
            assert_eq!(inj.fault(site(q, 0)), plain.fault(site(q, 0)));
        }
        // A zero rate never crashes, whatever the multiplier.
        assert!((0..200).all(|q| !plain.orchestrator_crash(q, 0, 0, 100.0)));
        // Validation rejects out-of-range rates.
        assert!(ChaosConfig {
            orchestrator_crash_rate: 1.5,
            ..ChaosConfig::default()
        }
        .build()
        .is_err());
        assert!(ChaosConfig {
            orchestrator_crash_rate: f64::NAN,
            ..ChaosConfig::default()
        }
        .build()
        .is_err());
    }

    #[test]
    fn orchestrator_outage_domain_scales_crashes_only() {
        let model = OutageConfig {
            seed: 19,
            platform: false,
            lanes: false,
            memory_tiers: false,
            orchestrators: true,
            ..OutageConfig::default()
        }
        .build()
        .unwrap();
        let active: Vec<f64> = (0..4000)
            .map(|i| i as f64 * 41.3)
            .filter(|&t| model.in_episode(FaultDomain::Orchestrator, t))
            .collect();
        assert!(!active.is_empty(), "orchestrator episodes should occur");
        let t = active[0];
        assert_eq!(model.orchestrator_multiplier(t), model.config().severity);
        // Worker-lane executions are not covered by the orchestrator domain.
        assert_eq!(model.multiplier(0, 1, 2048, t), 1.0);
        // Outside every episode both multipliers are unity.
        let calm = (0..4000)
            .map(|i| i as f64 * 41.3)
            .find(|&t| !model.in_episode(FaultDomain::Orchestrator, t))
            .unwrap();
        assert_eq!(model.orchestrator_multiplier(calm), 1.0);
    }

    #[test]
    fn resilience_policy_text_round_trips() {
        for p in [
            ResiliencePolicy::none(),
            ResiliencePolicy::naive_retry(),
            ResiliencePolicy::backoff(),
            ResiliencePolicy::backoff_hedged(),
        ] {
            let text = p.to_text();
            assert_eq!(ResiliencePolicy::from_text(&text).unwrap(), p, "{text}");
        }
        assert!(ResiliencePolicy::from_text("").is_err());
        assert!(ResiliencePolicy::from_text("gillis-resilience v2\n").is_err());
        assert!(ResiliencePolicy::from_text("gillis-resilience v1\nmax_attempts=zero\n").is_err());
        assert!(ResiliencePolicy::from_text("gillis-resilience v1\nmax_attempts=0\n").is_err());
        assert!(ResiliencePolicy::from_text("gillis-resilience v1\nnope=1\n").is_err());
        assert!(ResiliencePolicy::from_text("gillis-resilience v1\nbackoff_base_ms\n").is_err());
    }

    #[test]
    fn outage_config_text_round_trips() {
        for cfg in [
            OutageConfig::default(),
            OutageConfig::severe(12.0, 99),
            OutageConfig {
                orchestrators: true,
                ..OutageConfig::severe(8.0, 3)
            },
        ] {
            let text = cfg.to_text();
            assert_eq!(OutageConfig::from_text(&text).unwrap(), cfg, "{text}");
        }
        assert!(OutageConfig::from_text("").is_err());
        assert!(OutageConfig::from_text("gillis-outage v1\nseverity=banana\n").is_err());
        assert!(OutageConfig::from_text("gillis-outage v1\ndomains=warp\n").is_err());
        // A parsed config is always buildable: out-of-range knobs fail here.
        assert!(OutageConfig::from_text("gillis-outage v1\nseverity=0.5\n").is_err());
        assert!(OutageConfig::from_text("gillis-outage v1\ndomains=\n").is_err());
    }

    #[test]
    fn garbled_chaos_rate_is_rejected_with_a_warning() {
        // The parse path itself (shared by from_env) names the variable.
        let err = crate::envutil::parse_value::<f64>("GILLIS_CHAOS_RATE", "banana").unwrap_err();
        assert!(err.contains("GILLIS_CHAOS_RATE"), "{err}");
        assert!(err.contains("banana"), "{err}");
        // End to end: a garbled value disables chaos instead of panicking
        // or silently misconfiguring. Restore whatever was set so parallel
        // tests and CI's chaos job are unaffected.
        let saved = std::env::var("GILLIS_CHAOS_RATE").ok();
        std::env::set_var("GILLIS_CHAOS_RATE", "banana");
        assert_eq!(ChaosConfig::from_env(), None);
        match saved {
            Some(v) => std::env::set_var("GILLIS_CHAOS_RATE", v),
            None => std::env::remove_var("GILLIS_CHAOS_RATE"),
        }
    }
}
