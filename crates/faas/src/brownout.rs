//! Brownout degradation ladder: hysteretic service-level step-downs driven
//! by a windowed worker-health score.
//!
//! When a correlated outage makes worker lanes fail en masse, the right
//! response is not to retry harder but to *serve less expensively*: first
//! stop hedging (no speculative duplicates), then shrink transfers to the
//! int8 wire format, then stop forking entirely (master-local fallback),
//! and finally shed. [`BrownoutController`] walks that ladder one level per
//! unhealthy window and climbs back only after several consecutive clean
//! windows, so a flapping signal cannot oscillate the service level.
//!
//! Health is the fraction of *first attempts* that succeed, accumulated
//! over fixed-size windows of lane outcomes. Both the signal and the level
//! changes are plain counters updated in the serving loop's own
//! deterministic event order — no wall clocks, no RNG — which keeps serving
//! bit-identical across `GILLIS_THREADS` and is why the controller lives in
//! the sequential serving paths rather than inside parallel replications.

use serde::{Deserialize, Serialize};

use crate::error::FaasError;
use crate::Result;

/// One rung of the degradation ladder. Effects are cumulative: every level
/// keeps the restrictions of the levels above it.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum BrownoutLevel {
    /// Full service: hedging and the configured wire format.
    #[default]
    Full,
    /// Hedging disabled — no speculative duplicate invocations.
    NoHedge,
    /// Transfers forced to the int8 wire format (~4× smaller payloads).
    Int8,
    /// No forking at all: the master computes every partition locally and
    /// the query completes `Degraded`.
    LocalOnly,
    /// Arrivals are shed (except health probes).
    Shed,
}

impl BrownoutLevel {
    /// All levels, mildest first — index order matches
    /// [`BrownoutCounters::queries_at_level`].
    pub const ALL: [BrownoutLevel; 5] = [
        BrownoutLevel::Full,
        BrownoutLevel::NoHedge,
        BrownoutLevel::Int8,
        BrownoutLevel::LocalOnly,
        BrownoutLevel::Shed,
    ];

    /// Position on the ladder (0 = full service, 4 = shed).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short label for reports.
    pub fn name(self) -> &'static str {
        match self {
            BrownoutLevel::Full => "full",
            BrownoutLevel::NoHedge => "no-hedge",
            BrownoutLevel::Int8 => "int8",
            BrownoutLevel::LocalOnly => "local-only",
            BrownoutLevel::Shed => "shed",
        }
    }

    fn step_down(self) -> Self {
        BrownoutLevel::ALL[(self.index() + 1).min(4)]
    }

    fn step_up(self) -> Self {
        BrownoutLevel::ALL[self.index().saturating_sub(1)]
    }
}

/// Ladder knobs for [`BrownoutController`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BrownoutPolicy {
    /// First-attempt outcomes per health window.
    pub window_lanes: u32,
    /// Step one level down when a window's health falls below this.
    pub degrade_below: f64,
    /// A window counts as clean when health is at or above this; keeping
    /// `recover_above > degrade_below` is the hysteresis band.
    pub recover_above: f64,
    /// Consecutive clean windows required before stepping one level up.
    pub clean_windows: u32,
    /// At `LocalOnly`/`Shed`, every `probe_interval`-th arrival is served
    /// through the (int8) fork-join path so worker health keeps being
    /// measured — without probes the ladder could never observe recovery.
    pub probe_interval: u32,
    /// Probe cadence while fully shedding; `None` inherits
    /// `probe_interval`. Shedding is far more expensive than serving local
    /// fallbacks, so a ladder that probes sparsely at `LocalOnly` (to avoid
    /// demoting on one unlucky sample) can still probe eagerly at `Shed`
    /// and notice recovery quickly.
    pub shed_probe_interval: Option<u32>,
}

impl Default for BrownoutPolicy {
    fn default() -> Self {
        BrownoutPolicy {
            window_lanes: 32,
            degrade_below: 0.7,
            recover_above: 0.9,
            clean_windows: 2,
            probe_interval: 4,
            shed_probe_interval: None,
        }
    }
}

impl BrownoutPolicy {
    /// Reads ladder knobs from the environment. `GILLIS_BROWNOUT_WINDOW`
    /// enables the ladder (first attempts per window);
    /// `GILLIS_BROWNOUT_DEGRADE_BELOW`, `GILLIS_BROWNOUT_RECOVER_ABOVE`,
    /// `GILLIS_BROWNOUT_CLEAN_WINDOWS`, `GILLIS_BROWNOUT_PROBE_INTERVAL`,
    /// and `GILLIS_BROWNOUT_SHED_PROBE_INTERVAL` override the rest.
    /// Malformed values are reported on stderr.
    pub fn from_env() -> Option<Self> {
        use crate::envutil::env_var;
        let window_lanes: u32 = env_var("GILLIS_BROWNOUT_WINDOW")?;
        if window_lanes == 0 {
            return None;
        }
        let d = BrownoutPolicy::default();
        Some(BrownoutPolicy {
            window_lanes,
            degrade_below: env_var("GILLIS_BROWNOUT_DEGRADE_BELOW").unwrap_or(d.degrade_below),
            recover_above: env_var("GILLIS_BROWNOUT_RECOVER_ABOVE").unwrap_or(d.recover_above),
            clean_windows: env_var("GILLIS_BROWNOUT_CLEAN_WINDOWS").unwrap_or(d.clean_windows),
            probe_interval: env_var("GILLIS_BROWNOUT_PROBE_INTERVAL").unwrap_or(d.probe_interval),
            shed_probe_interval: env_var("GILLIS_BROWNOUT_SHED_PROBE_INTERVAL"),
        })
    }

    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::InvalidArgument`] for a zero window or probe
    /// interval, thresholds outside `[0, 1]`, or an inverted hysteresis
    /// band (`recover_above < degrade_below`).
    pub fn validate(&self) -> Result<()> {
        if self.window_lanes == 0 {
            return Err(FaasError::InvalidArgument(
                "brownout window_lanes must be >= 1".to_string(),
            ));
        }
        if self.probe_interval == 0 {
            return Err(FaasError::InvalidArgument(
                "brownout probe_interval must be >= 1".to_string(),
            ));
        }
        if self.shed_probe_interval == Some(0) {
            return Err(FaasError::InvalidArgument(
                "brownout shed_probe_interval must be >= 1 when set".to_string(),
            ));
        }
        for (name, v) in [
            ("degrade_below", self.degrade_below),
            ("recover_above", self.recover_above),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(FaasError::InvalidArgument(format!(
                    "brownout {name} must be in [0, 1]: {v}"
                )));
            }
        }
        if self.recover_above < self.degrade_below {
            return Err(FaasError::InvalidArgument(format!(
                "brownout hysteresis band is inverted: recover_above {} < degrade_below {}",
                self.recover_above, self.degrade_below
            )));
        }
        if self.clean_windows == 0 {
            return Err(FaasError::InvalidArgument(
                "brownout clean_windows must be >= 1".to_string(),
            ));
        }
        Ok(())
    }
}

/// Ladder accounting across a serving run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BrownoutCounters {
    /// Arrivals classified while the ladder sat at each level (index order
    /// of [`BrownoutLevel::ALL`]) — the brownout-level-time columns.
    pub queries_at_level: [u64; 5],
    /// Level step-downs taken.
    pub step_downs: u64,
    /// Level step-ups taken (recoveries).
    pub step_ups: u64,
    /// Arrivals shed by the ladder (distinct from overload-queue shedding).
    pub shed_queries: u64,
    /// Probe arrivals served through the fork-join path at `LocalOnly` or
    /// `Shed`.
    pub probes: u64,
}

impl BrownoutCounters {
    /// Folds another counter set into this one.
    pub fn absorb(&mut self, other: &BrownoutCounters) {
        for (a, b) in self
            .queries_at_level
            .iter_mut()
            .zip(other.queries_at_level.iter())
        {
            *a += b;
        }
        self.step_downs += other.step_downs;
        self.step_ups += other.step_ups;
        self.shed_queries += other.shed_queries;
        self.probes += other.probes;
    }

    /// Arrivals classified below full service.
    pub fn degraded_arrivals(&self) -> u64 {
        self.queries_at_level[1..].iter().sum()
    }

    /// Total arrivals classified.
    pub fn arrivals(&self) -> u64 {
        self.queries_at_level.iter().sum()
    }
}

/// Verdict for one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalDecision {
    /// Serve the query at this level (a probe serves at
    /// [`BrownoutLevel::Int8`] while the ladder sits lower).
    Serve(BrownoutLevel),
    /// Reject the query.
    Shed,
}

/// The live ladder state machine (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct BrownoutController {
    policy: BrownoutPolicy,
    level: BrownoutLevel,
    window_attempts: u64,
    window_successes: u64,
    clean: u32,
    arrivals: u64,
    /// Accounting; taken by the serving loop at the end of the run.
    pub counters: BrownoutCounters,
}

impl BrownoutController {
    /// Starts at full service.
    pub fn new(policy: BrownoutPolicy) -> Self {
        BrownoutController {
            policy,
            level: BrownoutLevel::Full,
            window_attempts: 0,
            window_successes: 0,
            clean: 0,
            arrivals: 0,
            counters: BrownoutCounters::default(),
        }
    }

    /// The current ladder level.
    pub fn level(&self) -> BrownoutLevel {
        self.level
    }

    /// Classifies the next arrival at the current level. Consumes no RNG:
    /// probe selection is the arrival index modulo the probe interval.
    pub fn classify_arrival(&mut self) -> ArrivalDecision {
        self.counters.queries_at_level[self.level.index()] += 1;
        let interval = match self.level {
            BrownoutLevel::Shed => self
                .policy
                .shed_probe_interval
                .unwrap_or(self.policy.probe_interval),
            _ => self.policy.probe_interval,
        };
        let probe = self.arrivals.is_multiple_of(u64::from(interval));
        self.arrivals += 1;
        match self.level {
            BrownoutLevel::LocalOnly | BrownoutLevel::Shed if probe => {
                self.counters.probes += 1;
                ArrivalDecision::Serve(BrownoutLevel::Int8)
            }
            BrownoutLevel::Shed => {
                self.counters.shed_queries += 1;
                ArrivalDecision::Shed
            }
            level => ArrivalDecision::Serve(level),
        }
    }

    /// Feeds one query's first-attempt outcomes into the health window and
    /// evaluates the ladder at each window boundary. The level can only
    /// move here — never mid-window — so transitions are monotone within a
    /// window by construction.
    pub fn observe(&mut self, first_attempts: u64, first_successes: u64) {
        debug_assert!(first_successes <= first_attempts);
        self.window_attempts += first_attempts;
        self.window_successes += first_successes;
        if self.window_attempts >= u64::from(self.policy.window_lanes) {
            self.evaluate();
        }
    }

    fn evaluate(&mut self) {
        let health = self.window_successes as f64 / self.window_attempts as f64;
        self.window_attempts = 0;
        self.window_successes = 0;
        if health < self.policy.degrade_below {
            self.clean = 0;
            if self.level != BrownoutLevel::Shed {
                self.level = self.level.step_down();
                self.counters.step_downs += 1;
            }
        } else if health >= self.policy.recover_above {
            self.clean += 1;
            if self.clean >= self.policy.clean_windows {
                self.clean = 0;
                if self.level != BrownoutLevel::Full {
                    self.level = self.level.step_up();
                    self.counters.step_ups += 1;
                }
            }
        } else {
            // Inside the hysteresis band: hold the level, reset the streak.
            self.clean = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> BrownoutController {
        BrownoutController::new(BrownoutPolicy {
            window_lanes: 4,
            clean_windows: 2,
            probe_interval: 3,
            ..BrownoutPolicy::default()
        })
    }

    #[test]
    fn policy_validation() {
        assert!(BrownoutPolicy::default().validate().is_ok());
        for bad in [
            BrownoutPolicy {
                window_lanes: 0,
                ..BrownoutPolicy::default()
            },
            BrownoutPolicy {
                probe_interval: 0,
                ..BrownoutPolicy::default()
            },
            BrownoutPolicy {
                degrade_below: 1.5,
                ..BrownoutPolicy::default()
            },
            BrownoutPolicy {
                degrade_below: 0.9,
                recover_above: 0.7,
                ..BrownoutPolicy::default()
            },
            BrownoutPolicy {
                clean_windows: 0,
                ..BrownoutPolicy::default()
            },
            BrownoutPolicy {
                shed_probe_interval: Some(0),
                ..BrownoutPolicy::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn ladder_steps_down_under_failure_and_recovers_with_hysteresis() {
        let mut c = controller();
        assert_eq!(c.level(), BrownoutLevel::Full);
        // Four all-fail windows walk Full → NoHedge → Int8 → LocalOnly →
        // Shed, one rung per window.
        for expected in [
            BrownoutLevel::NoHedge,
            BrownoutLevel::Int8,
            BrownoutLevel::LocalOnly,
            BrownoutLevel::Shed,
        ] {
            c.observe(4, 0);
            assert_eq!(c.level(), expected);
        }
        // Further failure holds at Shed.
        c.observe(4, 0);
        assert_eq!(c.level(), BrownoutLevel::Shed);
        // One clean window is not enough (clean_windows = 2)…
        c.observe(4, 4);
        assert_eq!(c.level(), BrownoutLevel::Shed);
        // …two are, and each recovery restarts the streak.
        c.observe(4, 4);
        assert_eq!(c.level(), BrownoutLevel::LocalOnly);
        c.observe(4, 4);
        assert_eq!(c.level(), BrownoutLevel::LocalOnly);
        c.observe(4, 4);
        assert_eq!(c.level(), BrownoutLevel::Int8);
        assert_eq!(c.counters.step_downs, 4);
        assert_eq!(c.counters.step_ups, 2);
    }

    #[test]
    fn hysteresis_band_holds_level_and_resets_streak() {
        let mut c = controller();
        c.observe(4, 0); // → NoHedge
        assert_eq!(c.level(), BrownoutLevel::NoHedge);
        // Health 0.75 sits between degrade (0.7) and recover (0.9): hold.
        for _ in 0..10 {
            c.observe(4, 3);
            assert_eq!(c.level(), BrownoutLevel::NoHedge);
        }
        // A clean window followed by an in-band window must not recover.
        c.observe(4, 4);
        c.observe(4, 3);
        c.observe(4, 4);
        assert_eq!(c.level(), BrownoutLevel::NoHedge, "streak was reset");
        c.observe(4, 4);
        assert_eq!(c.level(), BrownoutLevel::Full);
    }

    #[test]
    fn shed_level_probes_and_sheds_the_rest() {
        let mut c = controller();
        for _ in 0..4 {
            c.observe(4, 0);
        }
        assert_eq!(c.level(), BrownoutLevel::Shed);
        let decisions: Vec<ArrivalDecision> = (0..6).map(|_| c.classify_arrival()).collect();
        assert_eq!(decisions[0], ArrivalDecision::Serve(BrownoutLevel::Int8));
        assert_eq!(decisions[1], ArrivalDecision::Shed);
        assert_eq!(decisions[2], ArrivalDecision::Shed);
        assert_eq!(decisions[3], ArrivalDecision::Serve(BrownoutLevel::Int8));
        assert_eq!(c.counters.probes, 2);
        assert_eq!(c.counters.shed_queries, 4);
        assert_eq!(c.counters.queries_at_level[BrownoutLevel::Shed.index()], 6);
    }

    #[test]
    fn shed_probes_can_run_on_their_own_faster_cadence() {
        let mut c = BrownoutController::new(BrownoutPolicy {
            window_lanes: 4,
            probe_interval: 8,
            shed_probe_interval: Some(2),
            ..BrownoutPolicy::default()
        });
        // Walk to LocalOnly: probes every 8th arrival.
        for _ in 0..3 {
            c.observe(4, 0);
        }
        assert_eq!(c.level(), BrownoutLevel::LocalOnly);
        let local: Vec<ArrivalDecision> = (0..4).map(|_| c.classify_arrival()).collect();
        assert_eq!(local[0], ArrivalDecision::Serve(BrownoutLevel::Int8));
        assert!(local[1..]
            .iter()
            .all(|d| *d == ArrivalDecision::Serve(BrownoutLevel::LocalOnly)));
        // One more bad window reaches Shed, where probes fire every 2nd
        // arrival instead of every 8th.
        c.observe(4, 0);
        assert_eq!(c.level(), BrownoutLevel::Shed);
        let shed: Vec<ArrivalDecision> = (0..4).map(|_| c.classify_arrival()).collect();
        assert_eq!(shed[0], ArrivalDecision::Serve(BrownoutLevel::Int8));
        assert_eq!(shed[1], ArrivalDecision::Shed);
        assert_eq!(shed[2], ArrivalDecision::Serve(BrownoutLevel::Int8));
        assert_eq!(shed[3], ArrivalDecision::Shed);
    }

    #[test]
    fn counters_absorb() {
        let mut a = BrownoutCounters {
            queries_at_level: [5, 4, 3, 2, 1],
            step_downs: 4,
            step_ups: 2,
            shed_queries: 1,
            probes: 1,
        };
        a.absorb(&a.clone());
        assert_eq!(a.queries_at_level, [10, 8, 6, 4, 2]);
        assert_eq!(a.step_downs, 8);
        assert_eq!(a.arrivals(), 30);
        assert_eq!(a.degraded_arrivals(), 20);
    }
}
