//! An S3-like object store.
//!
//! The Pipeline baseline (§V-B) stages model partitions in external storage
//! and streams them into a single function at query time; its latency is
//! dominated by these reads (paper Fig 11). The store tracks object sizes
//! and charges the platform's storage latency + streaming time per GET.

use std::collections::HashMap;

use crate::error::FaasError;
use crate::platform::PlatformProfile;
use crate::Result;

/// A simulated object store holding named blobs (sizes only — the simulator
/// never materializes weight bytes).
#[derive(Debug, Clone, Default)]
pub struct ObjectStore {
    objects: HashMap<String, u64>,
}

impl ObjectStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ObjectStore::default()
    }

    /// Uploads (or replaces) an object of `bytes` size.
    pub fn put(&mut self, key: impl Into<String>, bytes: u64) {
        self.objects.insert(key.into(), bytes);
    }

    /// Size of an object.
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::NoSuchObject`] for unknown keys.
    pub fn size(&self, key: &str) -> Result<u64> {
        self.objects
            .get(key)
            .copied()
            .ok_or_else(|| FaasError::NoSuchObject(key.to_string()))
    }

    /// Mean time for a function on `platform` to GET the object, in ms.
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::NoSuchObject`] for unknown keys.
    pub fn read_ms(&self, key: &str, platform: &PlatformProfile) -> Result<f64> {
        Ok(platform.storage_read_ms(self.size(key)?))
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut s = ObjectStore::new();
        assert!(s.is_empty());
        s.put("part-0", 100_000_000);
        s.put("part-1", 50_000_000);
        assert_eq!(s.len(), 2);
        assert_eq!(s.size("part-0").unwrap(), 100_000_000);
        s.put("part-0", 1);
        assert_eq!(s.size("part-0").unwrap(), 1);
    }

    #[test]
    fn missing_key_errors() {
        let s = ObjectStore::new();
        assert!(matches!(s.size("nope"), Err(FaasError::NoSuchObject(_))));
    }

    #[test]
    fn read_time_scales_with_size() {
        let mut s = ObjectStore::new();
        s.put("small", 1_000_000);
        s.put("large", 1_000_000_000);
        let p = PlatformProfile::aws_lambda();
        let small = s.read_ms("small", &p).unwrap();
        let large = s.read_ms("large", &p).unwrap();
        assert!(large > 100.0 * small / 2.0);
        // Streaming 1 GB of weights takes seconds — the Fig 11 bottleneck.
        assert!(large > 8000.0);
    }
}
