//! Stage-level checkpointed recovery.
//!
//! Gillis splits a plan into layer groups (stages); before this module every
//! retry, hedge, or orchestrator failure recomputed the query from group 0 —
//! at 5%+ fault rates most of the retry amplification paid for work on
//! stages that had already succeeded. The pieces here make recovery
//! *incremental*:
//!
//! - [`CheckpointCache`] — a deterministic stage-output checkpoint store
//!   keyed by `(query id, stage index, weight-identity token)` with FIFO
//!   capacity eviction and TTL expiry. The weight token ties a checkpoint to
//!   the exact weights that produced it, so a redeployed model can never
//!   resume from a stale activation.
//! - [`RecoveryPolicy`] — the knobs: cache capacity/TTL, the orchestrator
//!   failover replay delay, and the speculative re-execution trigger
//!   (straggler stages past `spec_factor` × predicted p95 get a second
//!   execution seeded from the cached upstream output, first result wins).
//! - [`RecoveryCounters`] — honest accounting: checkpoint hits/misses/
//!   evictions/expirations, stages saved, recompute avoided, orchestrator
//!   crashes split into failover replays vs full restarts, and speculation
//!   outcomes.
//!
//! Everything here is deterministic: the cache is a pure function of the
//! put/get sequence, and the serving runtime samples orchestrator crashes as
//! a pure function of `(chaos seed, query, boundary, incarnation)` — so a
//! crashed run replayed from checkpoints is bit-identical at any
//! `GILLIS_THREADS`.

use std::collections::{BTreeMap, VecDeque};

use serde::{Deserialize, Serialize};

use crate::error::FaasError;
use crate::Result;

/// Failover replay delay charged when no [`RecoveryPolicy`] overrides it
/// (orchestrator crashes are sampled by the chaos layer whether or not
/// recovery is configured; without a policy every crash is a full restart).
pub const DEFAULT_FAILOVER_MS: f64 = 25.0;

/// Stage-level recovery knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Maximum checkpoints held; the oldest stored entry is evicted first.
    pub capacity: usize,
    /// Checkpoint time-to-live in virtual milliseconds; `inf` never expires.
    pub ttl_ms: f64,
    /// Delay a replacement orchestrator pays to reconstruct in-flight state
    /// from checkpoints after a crash, in milliseconds.
    pub failover_ms: f64,
    /// Speculative re-execution trigger: a stage still running past this
    /// factor × its predicted attempt p95 gets a second execution seeded
    /// from the cached upstream output (first result wins, the loser is
    /// cancelled at its next checkpoint). `inf` disables speculation.
    pub spec_factor: f64,
    /// Maximum speculative executions per query.
    pub max_speculations: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            capacity: 256,
            ttl_ms: f64::INFINITY,
            failover_ms: DEFAULT_FAILOVER_MS,
            spec_factor: f64::INFINITY,
            max_speculations: 1,
        }
    }
}

impl RecoveryPolicy {
    /// Validates the knob ranges.
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::InvalidArgument`] for a zero capacity, a
    /// non-positive TTL, a negative or non-finite failover delay, or a
    /// speculation factor below 1.
    pub fn validate(&self) -> Result<()> {
        if self.capacity == 0 {
            return Err(FaasError::InvalidArgument(
                "recovery capacity must be >= 1".to_string(),
            ));
        }
        // NaN-rejecting: `ttl_ms` must be definitely positive (inf is fine).
        if self.ttl_ms.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(FaasError::InvalidArgument(format!(
                "recovery ttl_ms must be positive: {}",
                self.ttl_ms
            )));
        }
        if !self.failover_ms.is_finite() || self.failover_ms < 0.0 {
            return Err(FaasError::InvalidArgument(format!(
                "recovery failover_ms must be finite and >= 0: {}",
                self.failover_ms
            )));
        }
        // NaN-rejecting: a speculation threshold below the p95 itself would
        // re-execute healthy stages.
        if self.spec_factor.partial_cmp(&1.0) != Some(std::cmp::Ordering::Greater)
            && self.spec_factor != 1.0
        {
            return Err(FaasError::InvalidArgument(format!(
                "recovery spec_factor must be >= 1 (inf disables): {}",
                self.spec_factor
            )));
        }
        Ok(())
    }

    /// Serializes to the versioned key=value text format.
    #[must_use]
    pub fn to_text(&self) -> String {
        format!(
            "gillis-recovery v1\ncapacity={} ttl_ms={} failover_ms={} spec_factor={} \
             max_speculations={}\n",
            self.capacity, self.ttl_ms, self.failover_ms, self.spec_factor, self.max_speculations
        )
    }

    /// Parses the [`Self::to_text`] format.
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::InvalidArgument`] on a bad header, unknown key,
    /// or malformed value, and validation errors on out-of-range knobs.
    pub fn from_text(text: &str) -> Result<Self> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().unwrap_or_default().trim();
        if header != "gillis-recovery v1" {
            return Err(FaasError::InvalidArgument(format!(
                "expected 'gillis-recovery v1' header, got {header:?}"
            )));
        }
        let mut policy = RecoveryPolicy::default();
        for line in lines {
            for tok in line.split_whitespace() {
                let (key, value) = tok.split_once('=').ok_or_else(|| {
                    FaasError::InvalidArgument(format!("expected key=value, got {tok:?}"))
                })?;
                let bad = |e: &dyn std::fmt::Display| {
                    FaasError::InvalidArgument(format!("bad {key} value {value:?}: {e}"))
                };
                match key {
                    "capacity" => policy.capacity = value.parse().map_err(|e| bad(&e))?,
                    "ttl_ms" => policy.ttl_ms = value.parse().map_err(|e| bad(&e))?,
                    "failover_ms" => policy.failover_ms = value.parse().map_err(|e| bad(&e))?,
                    "spec_factor" => policy.spec_factor = value.parse().map_err(|e| bad(&e))?,
                    "max_speculations" => {
                        policy.max_speculations = value.parse().map_err(|e| bad(&e))?;
                    }
                    other => {
                        return Err(FaasError::InvalidArgument(format!(
                            "unknown recovery key {other:?}"
                        )));
                    }
                }
            }
        }
        policy.validate()?;
        Ok(policy)
    }

    /// Reads recovery knobs from the environment. `GILLIS_RECOVERY_CAPACITY`
    /// enables the cache; `GILLIS_RECOVERY_TTL_MS`,
    /// `GILLIS_RECOVERY_FAILOVER_MS`, `GILLIS_RECOVERY_SPEC_FACTOR`, and
    /// `GILLIS_RECOVERY_MAX_SPEC` override defaults. Malformed values are
    /// reported on stderr (see [`crate::envutil`]). Returns `None` when the
    /// capacity knob is unset or zero.
    pub fn from_env() -> Option<Self> {
        use crate::envutil::env_var;
        let capacity: usize = env_var("GILLIS_RECOVERY_CAPACITY")?;
        if capacity == 0 {
            return None;
        }
        let mut policy = RecoveryPolicy {
            capacity,
            ..RecoveryPolicy::default()
        };
        if let Some(ttl) = env_var("GILLIS_RECOVERY_TTL_MS") {
            policy.ttl_ms = ttl;
        }
        if let Some(f) = env_var("GILLIS_RECOVERY_FAILOVER_MS") {
            policy.failover_ms = f;
        }
        if let Some(s) = env_var("GILLIS_RECOVERY_SPEC_FACTOR") {
            policy.spec_factor = s;
        }
        if let Some(n) = env_var("GILLIS_RECOVERY_MAX_SPEC") {
            policy.max_speculations = n;
        }
        Some(policy)
    }
}

/// One stage-boundary checkpoint: the durable record that a query's groups
/// `0..=stage` completed. The simulator does not persist activations, so the
/// payload is the accounting needed to price what a resume avoids.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageCheckpoint {
    /// Cumulative execution time through the end of this stage, in
    /// milliseconds — the work a full restart would redo.
    pub elapsed_ms: f64,
    /// Whether any stage so far completed degraded (local fallback).
    pub degraded: bool,
    /// Virtual time the checkpoint was (last) stored, for TTL expiry.
    pub stored_at_ms: f64,
}

/// Honest recovery accounting across a run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RecoveryCounters {
    /// Checkpoints written (including overwrites of the same key).
    pub checkpoints_stored: u64,
    /// Lookups that found a live checkpoint.
    pub checkpoint_hits: u64,
    /// Lookups that found nothing (never stored, or evicted).
    pub checkpoint_misses: u64,
    /// Checkpoints evicted by capacity pressure.
    pub checkpoint_evictions: u64,
    /// Checkpoints dropped at lookup because their TTL had passed.
    pub checkpoint_expirations: u64,
    /// Stages whose re-execution a resume avoided.
    pub stages_saved: u64,
    /// Execution milliseconds a resume avoided recomputing.
    pub recompute_avoided_ms: f64,
    /// Orchestrator crashes sampled (both arms: replay and restart).
    pub orchestrator_crashes: u64,
    /// Crashes recovered by failover replay from a checkpoint.
    pub failover_replays: u64,
    /// Crashes that restarted the query from stage 0 (no usable checkpoint).
    pub full_restarts: u64,
    /// Resumes skipped because the deadline could no longer be met.
    pub resume_skipped_deadline: u64,
    /// Failed stages retried from the last checkpointed boundary.
    pub resume_retries: u64,
    /// Resume retries that turned a failed stage into a success.
    pub resume_retry_wins: u64,
    /// Speculative stage re-executions launched.
    pub speculative_executions: u64,
    /// Speculations whose result was accepted over the primary's.
    pub speculation_wins: u64,
    /// Speculations cancelled at their next checkpoint (primary won).
    pub speculation_cancelled: u64,
}

impl RecoveryCounters {
    /// Folds another counter set into this one.
    pub fn absorb(&mut self, other: &RecoveryCounters) {
        self.checkpoints_stored += other.checkpoints_stored;
        self.checkpoint_hits += other.checkpoint_hits;
        self.checkpoint_misses += other.checkpoint_misses;
        self.checkpoint_evictions += other.checkpoint_evictions;
        self.checkpoint_expirations += other.checkpoint_expirations;
        self.stages_saved += other.stages_saved;
        self.recompute_avoided_ms += other.recompute_avoided_ms;
        self.orchestrator_crashes += other.orchestrator_crashes;
        self.failover_replays += other.failover_replays;
        self.full_restarts += other.full_restarts;
        self.resume_skipped_deadline += other.resume_skipped_deadline;
        self.resume_retries += other.resume_retries;
        self.resume_retry_wins += other.resume_retry_wins;
        self.speculative_executions += other.speculative_executions;
        self.speculation_wins += other.speculation_wins;
        self.speculation_cancelled += other.speculation_cancelled;
    }
}

/// Deterministic stage-output checkpoint cache.
///
/// Keys are `(query id, stage index, weight-identity token)`; values record
/// the cumulative work the checkpoint makes skippable. Capacity eviction is
/// FIFO over first-store order (an overwrite refreshes the entry in place
/// without renewing its eviction position), and TTL expiry is checked at
/// lookup — both pure functions of the call sequence, so every run is
/// bit-identical regardless of threading.
#[derive(Debug, Clone)]
pub struct CheckpointCache {
    policy: RecoveryPolicy,
    map: BTreeMap<(u64, u32, u64), StageCheckpoint>,
    fifo: VecDeque<(u64, u32, u64)>,
}

impl CheckpointCache {
    /// Fresh cache under `policy` (assumed validated).
    #[must_use]
    pub fn new(policy: RecoveryPolicy) -> Self {
        CheckpointCache {
            policy,
            map: BTreeMap::new(),
            fifo: VecDeque::new(),
        }
    }

    /// The policy this cache enforces.
    pub fn policy(&self) -> &RecoveryPolicy {
        &self.policy
    }

    /// Live entry count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no checkpoints.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Stores (or refreshes) the checkpoint for `(query, stage, token)`,
    /// evicting the oldest stored entry on capacity pressure.
    pub fn put(
        &mut self,
        query: u64,
        stage: u32,
        token: u64,
        ckpt: StageCheckpoint,
        rec: &mut RecoveryCounters,
    ) {
        let key = (query, stage, token);
        if self.map.insert(key, ckpt).is_none() {
            while self.map.len() > self.policy.capacity {
                if let Some(old) = self.fifo.pop_front() {
                    if self.map.remove(&old).is_some() {
                        rec.checkpoint_evictions += 1;
                    }
                } else {
                    break;
                }
            }
            self.fifo.push_back(key);
        }
        rec.checkpoints_stored += 1;
    }

    /// Looks up the checkpoint for `(query, stage, token)` at virtual time
    /// `now_ms`, counting the hit/miss/expiry honestly. An expired entry is
    /// dropped and reported as a miss.
    pub fn get(
        &mut self,
        query: u64,
        stage: u32,
        token: u64,
        now_ms: f64,
        rec: &mut RecoveryCounters,
    ) -> Option<StageCheckpoint> {
        let key = (query, stage, token);
        match self.map.get(&key) {
            Some(c) if now_ms - c.stored_at_ms <= self.policy.ttl_ms => {
                rec.checkpoint_hits += 1;
                Some(*c)
            }
            Some(_) => {
                self.map.remove(&key);
                rec.checkpoint_expirations += 1;
                rec.checkpoint_misses += 1;
                None
            }
            None => {
                rec.checkpoint_misses += 1;
                None
            }
        }
    }

    /// Non-counting liveness probe (TTL-aware): used by gates that only ask
    /// whether a resume *would* find its upstream checkpoint.
    #[must_use]
    pub fn contains(&self, query: u64, stage: u32, token: u64, now_ms: f64) -> bool {
        self.map
            .get(&(query, stage, token))
            .is_some_and(|c| now_ms - c.stored_at_ms <= self.policy.ttl_ms)
    }

    /// Latest live checkpointed stage at or below `upto` for `query` — the
    /// walk-back a partially evicted query resumes from. Counts one hit or
    /// one miss for the outcome of the walk.
    pub fn latest_before(
        &mut self,
        query: u64,
        upto: u32,
        token: u64,
        now_ms: f64,
        rec: &mut RecoveryCounters,
    ) -> Option<(u32, StageCheckpoint)> {
        for stage in (0..=upto).rev() {
            if self.contains(query, stage, token, now_ms) {
                let c = self.map[&(query, stage, token)];
                rec.checkpoint_hits += 1;
                return Some((stage, c));
            }
        }
        rec.checkpoint_misses += 1;
        None
    }

    /// Drops every checkpoint a finished query holds, freeing capacity.
    /// Retirement is consumption, not pressure — it does not count as
    /// eviction.
    pub fn retire_query(&mut self, query: u64, token: u64) {
        let keys: Vec<(u64, u32, u64)> = self
            .map
            .range((query, 0, 0)..=(query, u32::MAX, u64::MAX))
            .map(|(k, _)| *k)
            .filter(|k| k.2 == token)
            .collect();
        for k in keys {
            self.map.remove(&k);
        }
        self.fifo.retain(|k| self.map.contains_key(k));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ckpt(elapsed_ms: f64, at: f64) -> StageCheckpoint {
        StageCheckpoint {
            elapsed_ms,
            degraded: false,
            stored_at_ms: at,
        }
    }

    #[test]
    fn policy_validation() {
        assert!(RecoveryPolicy::default().validate().is_ok());
        assert!(RecoveryPolicy {
            capacity: 0,
            ..RecoveryPolicy::default()
        }
        .validate()
        .is_err());
        assert!(RecoveryPolicy {
            ttl_ms: 0.0,
            ..RecoveryPolicy::default()
        }
        .validate()
        .is_err());
        assert!(RecoveryPolicy {
            ttl_ms: f64::NAN,
            ..RecoveryPolicy::default()
        }
        .validate()
        .is_err());
        assert!(RecoveryPolicy {
            failover_ms: -1.0,
            ..RecoveryPolicy::default()
        }
        .validate()
        .is_err());
        assert!(RecoveryPolicy {
            failover_ms: f64::INFINITY,
            ..RecoveryPolicy::default()
        }
        .validate()
        .is_err());
        assert!(RecoveryPolicy {
            spec_factor: 0.5,
            ..RecoveryPolicy::default()
        }
        .validate()
        .is_err());
        assert!(RecoveryPolicy {
            spec_factor: 1.0,
            ..RecoveryPolicy::default()
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn text_round_trips_including_infinities() {
        let policies = [
            RecoveryPolicy::default(),
            RecoveryPolicy {
                capacity: 8,
                ttl_ms: 1500.0,
                failover_ms: 0.0,
                spec_factor: 2.5,
                max_speculations: 3,
            },
        ];
        for p in policies {
            let text = p.to_text();
            let back = RecoveryPolicy::from_text(&text).unwrap();
            assert_eq!(p, back, "{text}");
        }
        assert!(RecoveryPolicy::from_text("nope").is_err());
        assert!(RecoveryPolicy::from_text("gillis-recovery v1\ncapacity=zero\n").is_err());
        assert!(RecoveryPolicy::from_text("gillis-recovery v1\nwhat=1\n").is_err());
        assert!(RecoveryPolicy::from_text("gillis-recovery v1\ncapacity\n").is_err());
        // Out-of-range values fail validation, not just parsing.
        assert!(RecoveryPolicy::from_text("gillis-recovery v1\ncapacity=0\n").is_err());
    }

    #[test]
    fn cache_hits_misses_and_capacity_eviction() {
        let mut rec = RecoveryCounters::default();
        let mut cache = CheckpointCache::new(RecoveryPolicy {
            capacity: 2,
            ..RecoveryPolicy::default()
        });
        let tok = 7;
        cache.put(1, 0, tok, ckpt(10.0, 10.0), &mut rec);
        cache.put(1, 1, tok, ckpt(25.0, 25.0), &mut rec);
        assert_eq!(
            cache.get(1, 1, tok, 30.0, &mut rec).unwrap().elapsed_ms,
            25.0
        );
        assert!(cache.get(2, 0, tok, 30.0, &mut rec).is_none());
        // Third insert evicts the oldest stored key (query 1 stage 0).
        cache.put(2, 0, tok, ckpt(5.0, 30.0), &mut rec);
        assert_eq!(cache.len(), 2);
        assert!(!cache.contains(1, 0, tok, 30.0));
        assert!(cache.contains(1, 1, tok, 30.0));
        // Wrong weight token never matches.
        assert!(cache.get(1, 1, tok + 1, 30.0, &mut rec).is_none());
        assert_eq!(rec.checkpoints_stored, 3);
        assert_eq!(rec.checkpoint_hits, 1);
        assert_eq!(rec.checkpoint_misses, 2);
        assert_eq!(rec.checkpoint_evictions, 1);
    }

    #[test]
    fn overwrite_refreshes_without_duplicating() {
        let mut rec = RecoveryCounters::default();
        let mut cache = CheckpointCache::new(RecoveryPolicy {
            capacity: 2,
            ttl_ms: 100.0,
            ..RecoveryPolicy::default()
        });
        cache.put(1, 0, 0, ckpt(10.0, 0.0), &mut rec);
        cache.put(1, 0, 0, ckpt(12.0, 50.0), &mut rec);
        assert_eq!(cache.len(), 1);
        // Refresh restarted the TTL clock.
        assert!(cache.contains(1, 0, 0, 140.0));
        assert_eq!(rec.checkpoints_stored, 2);
        assert_eq!(rec.checkpoint_evictions, 0);
    }

    #[test]
    fn ttl_expiry_counts_and_drops() {
        let mut rec = RecoveryCounters::default();
        let mut cache = CheckpointCache::new(RecoveryPolicy {
            ttl_ms: 100.0,
            ..RecoveryPolicy::default()
        });
        cache.put(3, 2, 9, ckpt(40.0, 1000.0), &mut rec);
        assert!(cache.contains(3, 2, 9, 1100.0));
        assert!(!cache.contains(3, 2, 9, 1100.1));
        assert!(cache.get(3, 2, 9, 1200.0, &mut rec).is_none());
        assert!(cache.is_empty(), "expired entry is dropped");
        assert_eq!(rec.checkpoint_expirations, 1);
        assert_eq!(rec.checkpoint_misses, 1);
    }

    #[test]
    fn latest_before_walks_back_and_retire_clears() {
        let mut rec = RecoveryCounters::default();
        let mut cache = CheckpointCache::new(RecoveryPolicy::default());
        cache.put(5, 0, 1, ckpt(10.0, 10.0), &mut rec);
        cache.put(5, 1, 1, ckpt(20.0, 20.0), &mut rec);
        let (stage, c) = cache.latest_before(5, 3, 1, 25.0, &mut rec).unwrap();
        assert_eq!((stage, c.elapsed_ms), (1, 20.0));
        assert!(cache.latest_before(6, 3, 1, 25.0, &mut rec).is_none());
        cache.retire_query(5, 1);
        assert!(cache.is_empty());
        assert!(cache.latest_before(5, 3, 1, 25.0, &mut rec).is_none());
    }

    #[test]
    fn counters_absorb_all_fields() {
        let a = RecoveryCounters {
            checkpoints_stored: 1,
            checkpoint_hits: 2,
            checkpoint_misses: 3,
            checkpoint_evictions: 4,
            checkpoint_expirations: 5,
            stages_saved: 6,
            recompute_avoided_ms: 7.5,
            orchestrator_crashes: 8,
            failover_replays: 9,
            full_restarts: 10,
            resume_skipped_deadline: 11,
            resume_retries: 12,
            resume_retry_wins: 13,
            speculative_executions: 14,
            speculation_wins: 15,
            speculation_cancelled: 16,
        };
        let mut b = RecoveryCounters::default();
        b.absorb(&a);
        b.absorb(&a);
        assert_eq!(b.checkpoints_stored, 2);
        assert_eq!(b.checkpoint_expirations, 10);
        assert_eq!(b.stages_saved, 12);
        assert!((b.recompute_avoided_ms - 15.0).abs() < 1e-12);
        assert_eq!(b.full_restarts, 20);
        assert_eq!(b.speculation_cancelled, 32);
    }

    #[test]
    fn from_env_requires_capacity() {
        // Only asserts the unset path: parallel tests share the process
        // environment, so we never set GILLIS_* here.
        std::env::remove_var("GILLIS_RECOVERY_CAPACITY");
        assert_eq!(RecoveryPolicy::from_env(), None);
    }
}
