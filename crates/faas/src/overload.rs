//! Overload protection: admission policies, cooperative cancellation, and
//! per-lane circuit breakers.
//!
//! Gillis's open-loop serving accepts unbounded Poisson arrivals; a burst
//! past capacity drives every query's latency to infinity while workers
//! keep burning billed GB-s on requests that already missed their SLO.
//! Serverless serving systems (MOPAR, HydraServe) treat overload as a
//! first-class failure mode; this module provides the deterministic knobs
//! the fork-join runtime uses to degrade gracefully instead of collapsing:
//!
//! - [`OverloadPolicy`] — a bounded admission queue (depth cap), a
//!   per-query deadline derived from the SLO, and shed-on-admission when
//!   predicted queue wait plus predicted plan latency already exceeds the
//!   deadline.
//! - [`CancelToken`] — cooperative cancellation for in-flight queries: the
//!   master checks the token at deterministic points (group boundaries,
//!   retry rounds) so cancellation outcomes are bit-identical at any thread
//!   count.
//! - [`CircuitBreaker`] — a consecutive-failure / open / half-open state
//!   machine per worker lane; an open lane is routed around (master-local
//!   degraded execution) before the retry budget is spent.
//! - [`OverloadCounters`] — honest accounting of sheds, cancellations, and
//!   breaker transitions, reported next to the resilience counters.
//!
//! Like fault injection ([`crate::chaos`]), every decision here is a pure
//! function of the policy, the seed-driven simulation state, and the query's
//! identity — never of wall-clock time or scheduling.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::FaasError;
use crate::time::Micros;
use crate::Result;

/// Circuit-breaker knobs for one worker lane (a `g{i}p{j}` function).
///
/// A lane whose worker executions exhaust their retry budget
/// `failure_threshold` times in a row trips the breaker open: subsequent
/// queries route around the lane (master-local degraded execution) without
/// spending any retry budget. After `cooldown_ms` of virtual time the
/// breaker half-opens and lets a single probe attempt through; the probe's
/// success (after `half_open_probes` in a row) closes the breaker, its
/// failure re-opens it for another cooldown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakerPolicy {
    /// Consecutive lane failures that trip the breaker (0 disables it).
    pub failure_threshold: u32,
    /// Virtual-time cooldown an open breaker waits before half-opening.
    pub cooldown_ms: f64,
    /// Consecutive half-open probe successes required to close (≥ 1).
    pub half_open_probes: u32,
}

impl BreakerPolicy {
    /// Breakers off: every lane is always attempted.
    pub fn disabled() -> Self {
        BreakerPolicy {
            failure_threshold: 0,
            cooldown_ms: 0.0,
            half_open_probes: 1,
        }
    }

    /// The default enabled configuration: open after 3 consecutive lane
    /// failures, cool down 250 ms, close after one successful probe.
    pub fn standard() -> Self {
        BreakerPolicy {
            failure_threshold: 3,
            cooldown_ms: 250.0,
            half_open_probes: 1,
        }
    }

    /// Whether this policy ever trips.
    pub fn enabled(&self) -> bool {
        self.failure_threshold > 0
    }

    fn validate(&self) -> Result<()> {
        // NaN fails `is_finite`, so this also rejects NaN cooldowns.
        if !self.cooldown_ms.is_finite() || self.cooldown_ms < 0.0 {
            return Err(FaasError::InvalidArgument(format!(
                "breaker cooldown must be finite and non-negative: {}",
                self.cooldown_ms
            )));
        }
        if self.enabled() && self.half_open_probes == 0 {
            return Err(FaasError::InvalidArgument(
                "breaker half_open_probes must be >= 1 when enabled".into(),
            ));
        }
        Ok(())
    }
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy::disabled()
    }
}

/// Observable state of a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: attempts flow normally.
    Closed,
    /// Tripped: the lane is routed around until the cooldown expires.
    Open,
    /// Cooling down finished: probe attempts are allowed through.
    HalfOpen,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Closed { consecutive_failures: u32 },
    Open { until: Micros },
    HalfOpen { successes: u32 },
}

/// Consecutive-failure / half-open state machine for one worker lane.
///
/// All transitions happen at virtual times supplied by the (sequential)
/// serving loop, so breaker evolution is a pure function of the query
/// sequence — bit-identical across `GILLIS_THREADS`.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    state: State,
}

impl CircuitBreaker {
    /// A closed breaker under `policy`.
    pub fn new(policy: BreakerPolicy) -> Self {
        CircuitBreaker {
            policy,
            state: State::Closed {
                consecutive_failures: 0,
            },
        }
    }

    /// The current coarse state.
    pub fn state(&self) -> BreakerState {
        match self.state {
            State::Closed { .. } => BreakerState::Closed,
            State::Open { .. } => BreakerState::Open,
            State::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    /// Whether the lane may be attempted at virtual time `now`. An open
    /// breaker past its cooldown half-opens (counted) and admits a probe;
    /// an open breaker inside the cooldown refuses (counted as a
    /// short-circuit — the caller must degrade locally instead).
    pub fn admits(&mut self, now: Micros, counters: &mut OverloadCounters) -> bool {
        if !self.policy.enabled() {
            return true;
        }
        match self.state {
            State::Closed { .. } | State::HalfOpen { .. } => true,
            State::Open { until } => {
                if now >= until {
                    self.state = State::HalfOpen { successes: 0 };
                    counters.breaker_half_opens += 1;
                    true
                } else {
                    counters.breaker_short_circuits += 1;
                    false
                }
            }
        }
    }

    /// Whether the next admitted execution is a half-open probe (callers
    /// should grant probes a single attempt, not the full retry budget).
    pub fn probing(&self) -> bool {
        matches!(self.state, State::HalfOpen { .. })
    }

    /// Records a lane success (the lane resolved within its budget).
    pub fn record_success(&mut self, counters: &mut OverloadCounters) {
        if !self.policy.enabled() {
            return;
        }
        match self.state {
            State::Closed { .. } => {
                self.state = State::Closed {
                    consecutive_failures: 0,
                };
            }
            State::HalfOpen { successes } => {
                let successes = successes + 1;
                if successes >= self.policy.half_open_probes {
                    self.state = State::Closed {
                        consecutive_failures: 0,
                    };
                    counters.breaker_closes += 1;
                } else {
                    self.state = State::HalfOpen { successes };
                }
            }
            State::Open { .. } => {}
        }
    }

    /// Records a lane failure (retry budget exhausted) observed at `now`.
    pub fn record_failure(&mut self, now: Micros, counters: &mut OverloadCounters) {
        if !self.policy.enabled() {
            return;
        }
        let open = |c: &mut OverloadCounters| {
            c.breaker_opens += 1;
            State::Open {
                until: now + Micros::from_ms(self.policy.cooldown_ms),
            }
        };
        match self.state {
            State::Closed {
                consecutive_failures,
            } => {
                let consecutive_failures = consecutive_failures + 1;
                if consecutive_failures >= self.policy.failure_threshold {
                    self.state = open(counters);
                } else {
                    self.state = State::Closed {
                        consecutive_failures,
                    };
                }
            }
            // A failed probe re-opens for another cooldown.
            State::HalfOpen { .. } => self.state = open(counters),
            State::Open { .. } => {}
        }
    }
}

/// How the serving path responds to sustained overload.
///
/// The admission queue models the master front door: at most
/// `max_concurrency` queries are in flight, at most `queue_depth` more may
/// wait, and each admitted query carries a deadline of `deadline_ms` from
/// its arrival. Shedding decisions and deadline expiries are pure functions
/// of the arrival sequence and the simulation seed — bit-identical across
/// `GILLIS_THREADS`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverloadPolicy {
    /// Queries served concurrently (the master pool size, ≥ 1).
    pub max_concurrency: usize,
    /// Maximum queries waiting for a master (`usize::MAX` = unbounded).
    /// An arrival that finds the queue full is shed immediately.
    pub queue_depth: usize,
    /// Per-query deadline from arrival, in milliseconds
    /// (`f64::INFINITY` disables deadlines).
    pub deadline_ms: f64,
    /// Shed on admission when predicted queue wait + predicted plan latency
    /// already exceeds the deadline (requires a finite deadline).
    pub shed_on_predicted_miss: bool,
    /// Per-worker-lane circuit breaking.
    pub breaker: BreakerPolicy,
}

impl OverloadPolicy {
    /// No protection beyond the concurrency cap: unbounded queue, no
    /// deadline, no shedding, breakers off. The honest baseline an
    /// overloaded deployment collapses under.
    pub fn unprotected(max_concurrency: usize) -> Self {
        OverloadPolicy {
            max_concurrency,
            queue_depth: usize::MAX,
            deadline_ms: f64::INFINITY,
            shed_on_predicted_miss: false,
            breaker: BreakerPolicy::disabled(),
        }
    }

    /// Full protection derived from an SLO: queue bounded at twice the
    /// concurrency, deadline equal to the SLO, predictive shedding on, and
    /// standard breakers.
    pub fn for_slo(slo_ms: f64, max_concurrency: usize) -> Self {
        OverloadPolicy {
            max_concurrency,
            queue_depth: 2 * max_concurrency.max(1),
            deadline_ms: slo_ms,
            shed_on_predicted_miss: true,
            breaker: BreakerPolicy::standard(),
        }
    }

    /// The absolute deadline of a query arriving at `arrival`, if deadlines
    /// are enabled.
    pub fn deadline_at(&self, arrival: Micros) -> Option<Micros> {
        self.deadline_ms
            .is_finite()
            .then(|| arrival + Micros::from_ms(self.deadline_ms))
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::InvalidArgument`] for a zero concurrency, a
    /// non-positive or NaN deadline, predictive shedding without a finite
    /// deadline, or an invalid breaker config.
    pub fn validate(&self) -> Result<()> {
        if self.max_concurrency == 0 {
            return Err(FaasError::InvalidArgument(
                "overload max_concurrency must be >= 1".into(),
            ));
        }
        // NaN-rejecting: the deadline must be definitely positive.
        if self.deadline_ms.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(FaasError::InvalidArgument(format!(
                "overload deadline_ms must be positive (or infinite to disable): {}",
                self.deadline_ms
            )));
        }
        if self.shed_on_predicted_miss && !self.deadline_ms.is_finite() {
            return Err(FaasError::InvalidArgument(
                "shed_on_predicted_miss requires a finite deadline_ms".into(),
            ));
        }
        self.breaker.validate()
    }

    /// Serializes the policy to a compact one-line `key=value` format,
    /// preceded by a header — the deployment artifact shape shared with
    /// `ExecutionPlan::to_text`.
    pub fn to_text(&self) -> String {
        format!(
            "gillis-overload v1\nconcurrency={} queue={} deadline_ms={} shed_predicted={} \
             breaker_failures={} breaker_cooldown_ms={} breaker_probes={}\n",
            self.max_concurrency,
            self.queue_depth,
            self.deadline_ms,
            self.shed_on_predicted_miss,
            self.breaker.failure_threshold,
            self.breaker.cooldown_ms,
            self.breaker.half_open_probes,
        )
    }

    /// Parses the format produced by [`OverloadPolicy::to_text`] and
    /// validates the result.
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::InvalidArgument`] on header, field, or
    /// validation errors.
    pub fn from_text(text: &str) -> Result<Self> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines
            .next()
            .ok_or_else(|| FaasError::InvalidArgument("empty overload policy text".into()))?;
        if header.trim() != "gillis-overload v1" {
            return Err(FaasError::InvalidArgument(format!(
                "unknown overload policy header: {header}"
            )));
        }
        let mut policy = OverloadPolicy::unprotected(1);
        for token in lines.flat_map(str::split_whitespace) {
            let (key, value) = token.split_once('=').ok_or_else(|| {
                FaasError::InvalidArgument(format!("expected key=value, got: {token}"))
            })?;
            let bad =
                |what: &str| FaasError::InvalidArgument(format!("bad overload {what}: {value}"));
            match key {
                "concurrency" => {
                    policy.max_concurrency = value.parse().map_err(|_| bad("concurrency"))?;
                }
                "queue" => policy.queue_depth = value.parse().map_err(|_| bad("queue"))?,
                "deadline_ms" => {
                    policy.deadline_ms = value.parse().map_err(|_| bad("deadline_ms"))?;
                }
                "shed_predicted" => {
                    policy.shed_on_predicted_miss =
                        value.parse().map_err(|_| bad("shed_predicted"))?;
                }
                "breaker_failures" => {
                    policy.breaker.failure_threshold =
                        value.parse().map_err(|_| bad("breaker_failures"))?;
                }
                "breaker_cooldown_ms" => {
                    policy.breaker.cooldown_ms =
                        value.parse().map_err(|_| bad("breaker_cooldown_ms"))?;
                }
                "breaker_probes" => {
                    policy.breaker.half_open_probes =
                        value.parse().map_err(|_| bad("breaker_probes"))?;
                }
                other => {
                    return Err(FaasError::InvalidArgument(format!(
                        "unknown overload policy key: {other}"
                    )));
                }
            }
        }
        policy.validate()?;
        Ok(policy)
    }

    /// Reads overload knobs from the environment, mirroring
    /// [`crate::chaos::ChaosConfig::from_env`]: `GILLIS_OVERLOAD_CONCURRENCY`
    /// enables the policy (required); `GILLIS_OVERLOAD_QUEUE`,
    /// `GILLIS_OVERLOAD_DEADLINE_MS`, `GILLIS_OVERLOAD_SHED_PREDICTED`,
    /// `GILLIS_OVERLOAD_BREAKER_FAILURES`,
    /// `GILLIS_OVERLOAD_BREAKER_COOLDOWN_MS`, and
    /// `GILLIS_OVERLOAD_BREAKER_PROBES` override the `for_slo`-style
    /// defaults. Returns `None` when the concurrency variable is unset, and
    /// `None` for an invalid combination; malformed values are reported on
    /// stderr (see [`crate::envutil`]).
    pub fn from_env() -> Option<Self> {
        use crate::envutil::env_var as var;
        let max_concurrency: usize = var("GILLIS_OVERLOAD_CONCURRENCY")?;
        let mut policy = OverloadPolicy {
            max_concurrency,
            queue_depth: 2 * max_concurrency.max(1),
            deadline_ms: f64::INFINITY,
            shed_on_predicted_miss: false,
            breaker: BreakerPolicy::disabled(),
        };
        if let Some(q) = var("GILLIS_OVERLOAD_QUEUE") {
            policy.queue_depth = q;
        }
        if let Some(d) = var("GILLIS_OVERLOAD_DEADLINE_MS") {
            policy.deadline_ms = d;
        }
        if let Some(s) = var("GILLIS_OVERLOAD_SHED_PREDICTED") {
            policy.shed_on_predicted_miss = s;
        }
        if let Some(f) = var("GILLIS_OVERLOAD_BREAKER_FAILURES") {
            policy.breaker.failure_threshold = f;
        }
        if let Some(c) = var("GILLIS_OVERLOAD_BREAKER_COOLDOWN_MS") {
            policy.breaker.cooldown_ms = c;
        }
        if let Some(p) = var("GILLIS_OVERLOAD_BREAKER_PROBES") {
            policy.breaker.half_open_probes = p;
        }
        policy.validate().ok().map(|()| policy)
    }
}

/// Honest overload accounting across a serving run, reported next to the
/// resilience counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OverloadCounters {
    /// Queries admitted past the front door.
    pub admitted: u64,
    /// Arrivals shed because the admission queue was full.
    pub shed_queue_full: u64,
    /// Arrivals shed because predicted wait + predicted latency already
    /// exceeded the deadline.
    pub shed_predicted_miss: u64,
    /// Worker attempts (or planned local recomputes) cancelled because the
    /// query's deadline expired — doomed work not performed.
    pub cancelled_attempts: u64,
    /// Deepest the admission queue ever got.
    pub peak_queue_depth: u64,
    /// Breaker transitions into Open.
    pub breaker_opens: u64,
    /// Breaker transitions into Closed (successful probes).
    pub breaker_closes: u64,
    /// Breaker transitions into HalfOpen (cooldown expiries).
    pub breaker_half_opens: u64,
    /// Lane executions skipped outright because the breaker was open.
    pub breaker_short_circuits: u64,
}

impl OverloadCounters {
    /// Total arrivals shed at admission.
    pub fn shed(&self) -> u64 {
        self.shed_queue_full + self.shed_predicted_miss
    }

    /// Folds another counter set into this one.
    pub fn absorb(&mut self, other: &OverloadCounters) {
        self.admitted += other.admitted;
        self.shed_queue_full += other.shed_queue_full;
        self.shed_predicted_miss += other.shed_predicted_miss;
        self.cancelled_attempts += other.cancelled_attempts;
        self.peak_queue_depth = self.peak_queue_depth.max(other.peak_queue_depth);
        self.breaker_opens += other.breaker_opens;
        self.breaker_closes += other.breaker_closes;
        self.breaker_half_opens += other.breaker_half_opens;
        self.breaker_short_circuits += other.breaker_short_circuits;
    }
}

#[derive(Debug)]
struct TokenInner {
    cancelled: AtomicBool,
    /// Checkpoints remaining before auto-cancellation; `u64::MAX` means
    /// "manual only" (never auto-cancels).
    budget: AtomicU64,
}

/// Cooperative cancellation handle for one in-flight query.
///
/// The executing master calls [`CancelToken::checkpoint`] at deterministic
/// points (before each plan group and each retry round); any holder of a
/// clone can [`CancelToken::cancel`] to make the next checkpoint abort the
/// query. For reproducible tests, [`CancelToken::after_checkpoints`] builds
/// a token that auto-cancels at the (n+1)-th checkpoint — because
/// checkpoints only happen on the sequential master path, the cancellation
/// point is a pure function of `n`, bit-identical at any thread count.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl CancelToken {
    /// A token that never cancels unless [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                budget: AtomicU64::new(u64::MAX),
            }),
        }
    }

    /// A token that lets `n` checkpoints pass and cancels at the next one.
    pub fn after_checkpoints(n: u64) -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                budget: AtomicU64::new(n),
            }),
        }
    }

    /// Requests cancellation; the query aborts at its next checkpoint.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation has been observed or requested.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// Consumes one checkpoint; returns `true` when the query must abort.
    /// Called only from the (single) master thread of a query.
    pub fn checkpoint(&self) -> bool {
        if self.is_cancelled() {
            return true;
        }
        let budget = self.inner.budget.load(Ordering::Relaxed);
        if budget == u64::MAX {
            return false;
        }
        if budget == 0 {
            self.cancel();
            return true;
        }
        self.inner.budget.store(budget - 1, Ordering::Relaxed);
        false
    }
}

// `Default for CancelToken` derives to a zero budget (cancel at the first
// checkpoint), which is surprising; make it the manual token instead.
impl Default for TokenInner {
    fn default() -> Self {
        TokenInner {
            cancelled: AtomicBool::new(false),
            budget: AtomicU64::new(u64::MAX),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_validation() {
        assert!(OverloadPolicy::unprotected(4).validate().is_ok());
        assert!(OverloadPolicy::for_slo(500.0, 8).validate().is_ok());
        assert!(OverloadPolicy {
            max_concurrency: 0,
            ..OverloadPolicy::unprotected(1)
        }
        .validate()
        .is_err());
        assert!(OverloadPolicy {
            deadline_ms: 0.0,
            ..OverloadPolicy::unprotected(1)
        }
        .validate()
        .is_err());
        assert!(OverloadPolicy {
            deadline_ms: f64::NAN,
            ..OverloadPolicy::unprotected(1)
        }
        .validate()
        .is_err());
        // Predictive shedding needs a finite deadline.
        assert!(OverloadPolicy {
            shed_on_predicted_miss: true,
            ..OverloadPolicy::unprotected(1)
        }
        .validate()
        .is_err());
        // Enabled breaker with zero probes is invalid.
        assert!(OverloadPolicy {
            breaker: BreakerPolicy {
                failure_threshold: 2,
                cooldown_ms: 10.0,
                half_open_probes: 0,
            },
            ..OverloadPolicy::unprotected(1)
        }
        .validate()
        .is_err());
        assert!(OverloadPolicy {
            breaker: BreakerPolicy {
                cooldown_ms: f64::NAN,
                ..BreakerPolicy::standard()
            },
            ..OverloadPolicy::unprotected(1)
        }
        .validate()
        .is_err());
    }

    #[test]
    fn policy_text_round_trips() {
        for policy in [
            OverloadPolicy::unprotected(3),
            OverloadPolicy::for_slo(437.25, 8),
            OverloadPolicy {
                queue_depth: usize::MAX,
                ..OverloadPolicy::for_slo(10.5, 1)
            },
        ] {
            let text = policy.to_text();
            let parsed = OverloadPolicy::from_text(&text).unwrap();
            assert_eq!(policy, parsed, "{text}");
        }
        assert!(OverloadPolicy::from_text("").is_err());
        assert!(OverloadPolicy::from_text("nope\nconcurrency=1").is_err());
        assert!(OverloadPolicy::from_text("gillis-overload v1\nconcurrency").is_err());
        assert!(OverloadPolicy::from_text("gillis-overload v1\nconcurrency=x").is_err());
        assert!(OverloadPolicy::from_text("gillis-overload v1\nwat=1").is_err());
        // Parsed policies are validated.
        assert!(OverloadPolicy::from_text("gillis-overload v1\nconcurrency=0").is_err());
    }

    #[test]
    fn breaker_trips_cools_down_and_recovers() {
        let mut c = OverloadCounters::default();
        let mut b = CircuitBreaker::new(BreakerPolicy {
            failure_threshold: 2,
            cooldown_ms: 100.0,
            half_open_probes: 1,
        });
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admits(Micros::ZERO, &mut c));
        b.record_failure(Micros::from_ms(10.0), &mut c);
        assert_eq!(b.state(), BreakerState::Closed, "below threshold");
        b.record_failure(Micros::from_ms(20.0), &mut c);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(c.breaker_opens, 1);
        // Inside the cooldown: short-circuits.
        assert!(!b.admits(Micros::from_ms(50.0), &mut c));
        assert_eq!(c.breaker_short_circuits, 1);
        // Past the cooldown: half-opens and admits a probe.
        assert!(b.admits(Micros::from_ms(121.0), &mut c));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.probing());
        assert_eq!(c.breaker_half_opens, 1);
        // Successful probe closes.
        b.record_success(&mut c);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(c.breaker_closes, 1);
        // A success resets the consecutive-failure count.
        b.record_failure(Micros::from_ms(130.0), &mut c);
        b.record_success(&mut c);
        b.record_failure(Micros::from_ms(140.0), &mut c);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_failure_reopens() {
        let mut c = OverloadCounters::default();
        let mut b = CircuitBreaker::new(BreakerPolicy {
            failure_threshold: 1,
            cooldown_ms: 50.0,
            half_open_probes: 2,
        });
        b.record_failure(Micros::ZERO, &mut c);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.admits(Micros::from_ms(60.0), &mut c));
        // One probe success is not enough at half_open_probes = 2.
        b.record_success(&mut c);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_failure(Micros::from_ms(70.0), &mut c);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(c.breaker_opens, 2);
        assert_eq!(c.breaker_closes, 0);
    }

    #[test]
    fn disabled_breaker_never_trips() {
        let mut c = OverloadCounters::default();
        let mut b = CircuitBreaker::new(BreakerPolicy::disabled());
        for i in 0..10 {
            b.record_failure(Micros::from_ms(i as f64), &mut c);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admits(Micros::ZERO, &mut c));
        assert_eq!(c.breaker_opens, 0);
    }

    #[test]
    fn cancel_token_checkpoints() {
        let t = CancelToken::new();
        for _ in 0..100 {
            assert!(!t.checkpoint());
        }
        t.cancel();
        assert!(t.is_cancelled());
        assert!(t.checkpoint());

        let t = CancelToken::after_checkpoints(3);
        assert!(!t.checkpoint());
        assert!(!t.checkpoint());
        assert!(!t.checkpoint());
        assert!(t.checkpoint(), "cancels at the 4th checkpoint");
        assert!(t.is_cancelled());

        // Clones share state.
        let t = CancelToken::new();
        let clone = t.clone();
        t.cancel();
        assert!(clone.checkpoint());

        // The default token is manual (does not cancel at first checkpoint).
        let t = CancelToken::default();
        assert!(!t.checkpoint());
    }

    #[test]
    fn counters_absorb() {
        let a = OverloadCounters {
            admitted: 2,
            shed_queue_full: 1,
            shed_predicted_miss: 3,
            cancelled_attempts: 4,
            peak_queue_depth: 7,
            breaker_opens: 1,
            breaker_closes: 1,
            breaker_half_opens: 2,
            breaker_short_circuits: 5,
        };
        let mut b = OverloadCounters {
            peak_queue_depth: 9,
            ..OverloadCounters::default()
        };
        b.absorb(&a);
        assert_eq!(b.admitted, 2);
        assert_eq!(b.shed(), 4);
        assert_eq!(b.peak_queue_depth, 9, "peak is a max, not a sum");
        b.absorb(&a);
        assert_eq!(b.shed(), 8);
        assert_eq!(b.breaker_short_circuits, 10);
    }

    #[test]
    fn env_parsing_round_trips_defaults() {
        // from_env is driven by process-global env vars; only exercise the
        // unset path here (CI never sets these for unit tests).
        if std::env::var("GILLIS_OVERLOAD_CONCURRENCY").is_err() {
            assert!(OverloadPolicy::from_env().is_none());
        }
    }

    #[test]
    fn deadline_at_arrivals() {
        let p = OverloadPolicy::for_slo(100.0, 2);
        assert_eq!(
            p.deadline_at(Micros::from_ms(50.0)),
            Some(Micros::from_ms(150.0))
        );
        assert_eq!(
            OverloadPolicy::unprotected(2).deadline_at(Micros::ZERO),
            None
        );
    }
}
