//! Discrete-event serverless platform simulator.
//!
//! The Gillis paper deploys on AWS Lambda, Google Cloud Functions, and KNIX.
//! This crate simulates those platforms at the level of detail the paper's
//! algorithms and experiments observe:
//!
//! - [`platform::PlatformProfile`] — per-platform constants: instance memory,
//!   model-memory budget (the paper's `M = 1.4 GB` on Lambda), billing
//!   granularity (1 ms Lambda, 100 ms GCF), network bandwidth, CPU speed, and
//!   invocation-latency distributions.
//! - [`exgauss::ExGaussian`] — the exponentially-modified Gaussian the paper
//!   fits to function communication delays (§IV-A), with numerical order
//!   statistics for the max of `n` concurrent invocations.
//! - [`fleet`] — warm pools with cold starts and idle expiry.
//! - [`billing`] — pay-per-use metering rounded to the platform granularity
//!   (paper Eq. 2).
//! - [`store`] — an S3-like object store (used by the Pipeline baseline).
//! - [`des`] / [`workload`] / [`metrics`] — an event queue, client workload
//!   generators, and latency/cost recorders for end-to-end serving
//!   experiments (100 clients × 1000 queries, §V-C).
//!
//! The simulated "hardware ground truth" for layer compute lives here too
//! ([`compute`]); the performance model in `gillis-perf` must *learn* it by
//! profiling, exactly as the paper profiles real functions.

pub mod batch;
pub mod billing;
pub mod brownout;
pub mod budget;
pub mod chaos;
pub mod compute;
pub mod des;
pub mod envutil;
pub mod error;
pub mod exgauss;
pub mod fleet;
pub mod metrics;
pub mod overload;
pub mod pipeline;
pub mod platform;
pub mod recovery;
pub mod stats;
pub mod store;
pub mod time;
pub mod vm;
pub mod workload;

pub use batch::{BatchCounters, BatchPolicy, SloClass};
pub use brownout::{
    ArrivalDecision, BrownoutController, BrownoutCounters, BrownoutLevel, BrownoutPolicy,
};
pub use budget::{RetryBudget, RetryBudgetPolicy};
pub use chaos::{
    env_injector, wire_checksum, ChaosConfig, Fault, FaultDomain, FaultInjector, FaultSite,
    OutageConfig, OutageModel, QueryStatus, ResilienceCounters, ResiliencePolicy,
};
pub use error::FaasError;
pub use exgauss::ExGaussian;
pub use overload::{
    BreakerPolicy, BreakerState, CancelToken, CircuitBreaker, OverloadCounters, OverloadPolicy,
};
pub use pipeline::{PipelineCounters, PipelinePolicy};
pub use platform::{PlatformKind, PlatformProfile};
pub use recovery::{
    CheckpointCache, RecoveryCounters, RecoveryPolicy, StageCheckpoint, DEFAULT_FAILOVER_MS,
};
pub use time::Micros;

/// Convenient result alias for fallible simulator operations.
pub type Result<T> = std::result::Result<T, FaasError>;
