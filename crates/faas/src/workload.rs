//! Client workload generators for end-to-end serving experiments.

use rand::RngExt;

use crate::error::FaasError;
use crate::stats::sample_exponential;
use crate::time::Micros;
use crate::Result;

/// A closed-loop client population: `clients` concurrent clients, each
/// issuing its next query as soon as the previous response returns (plus an
/// optional think time), until `total_queries` have been issued.
///
/// This is the paper's §V-C workload: "100 clients that concurrently query
/// the inference service 1000 times".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClosedLoop {
    /// Number of concurrent clients.
    pub clients: usize,
    /// Total queries across all clients.
    pub total_queries: usize,
    /// Pause between receiving a response and sending the next query.
    pub think_time: Micros,
    issued: usize,
}

impl ClosedLoop {
    /// Creates the workload.
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::InvalidArgument`] if `clients == 0`.
    pub fn new(clients: usize, total_queries: usize, think_time: Micros) -> Result<Self> {
        if clients == 0 {
            return Err(FaasError::InvalidArgument(
                "closed loop needs at least one client".into(),
            ));
        }
        Ok(ClosedLoop {
            clients,
            total_queries,
            think_time,
            issued: 0,
        })
    }

    /// The paper's §V-C configuration: 100 clients × 1000 queries, no think
    /// time.
    pub fn paper_slo_workload() -> Self {
        ClosedLoop::new(100, 1000, Micros::ZERO).expect("valid workload")
    }

    /// Claims the next query to issue; returns `false` once the budget is
    /// exhausted. The initial `clients` queries all arrive at time zero.
    pub fn try_issue(&mut self) -> bool {
        if self.issued < self.total_queries {
            self.issued += 1;
            true
        } else {
            false
        }
    }

    /// How many queries have been issued so far.
    pub fn issued(&self) -> usize {
        self.issued
    }
}

/// Open-loop Poisson arrivals at a fixed rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonArrivals {
    rate_per_sec: f64,
}

impl PoissonArrivals {
    /// Creates a Poisson arrival process.
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::InvalidArgument`] unless the rate is positive.
    pub fn new(rate_per_sec: f64) -> Result<Self> {
        if rate_per_sec <= 0.0 || rate_per_sec.is_nan() {
            return Err(FaasError::InvalidArgument(
                "arrival rate must be positive".into(),
            ));
        }
        Ok(PoissonArrivals { rate_per_sec })
    }

    /// Samples the gap to the next arrival.
    pub fn next_gap<R: RngExt + ?Sized>(&self, rng: &mut R) -> Micros {
        let secs = sample_exponential(rng, self.rate_per_sec);
        Micros::from_ms(secs * 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn closed_loop_issues_exactly_total() {
        let mut w = ClosedLoop::new(4, 10, Micros::ZERO).unwrap();
        let mut n = 0;
        while w.try_issue() {
            n += 1;
        }
        assert_eq!(n, 10);
        assert_eq!(w.issued(), 10);
        assert!(!w.try_issue());
    }

    #[test]
    fn closed_loop_validates_clients() {
        assert!(ClosedLoop::new(0, 10, Micros::ZERO).is_err());
        let paper = ClosedLoop::paper_slo_workload();
        assert_eq!(paper.clients, 100);
        assert_eq!(paper.total_queries, 1000);
    }

    #[test]
    fn poisson_rate_is_respected() {
        let p = PoissonArrivals::new(50.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let total: f64 = (0..5000).map(|_| p.next_gap(&mut rng).as_secs()).sum();
        let mean_gap = total / 5000.0;
        assert!((mean_gap - 0.02).abs() < 0.002, "mean gap {mean_gap}");
        assert!(PoissonArrivals::new(0.0).is_err());
        assert!(PoissonArrivals::new(-1.0).is_err());
    }
}
