//! Function registry and warm pools.
//!
//! Serverless instances stay warm between invocations and are reclaimed
//! after an idle timeout; a request that finds no warm instance pays a cold
//! start (container provisioning plus package load). The paper warms
//! functions up before measuring (§III-A), and its §V-C experiments run
//! thousands of queries against steady warm pools — both behaviours fall out
//! of this model.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::FaasError;
use crate::platform::PlatformProfile;
use crate::time::Micros;
use crate::Result;

/// A deployable function: name, configured memory, and deployment package
/// size (model weights dominate for serving functions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionSpec {
    /// Unique function name.
    pub name: String,
    /// Configured instance memory in bytes.
    pub memory_bytes: u64,
    /// Deployment package size in bytes (loaded on cold start).
    pub package_bytes: u64,
}

/// Outcome of acquiring an instance for an invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Acquisition {
    /// Whether this start was cold.
    pub cold: bool,
    /// When the instance is ready to run the handler.
    pub ready_at: Micros,
}

#[derive(Debug, Clone, Default)]
struct FunctionPool {
    spec_memory: u64,
    package_bytes: u64,
    /// Times at which warm instances become (or became) free.
    free_at: Vec<Micros>,
    cold_starts: u64,
    warm_starts: u64,
    peak_instances: usize,
    busy: usize,
}

/// The per-platform function registry with warm-pool simulation.
#[derive(Debug, Clone)]
pub struct Fleet {
    profile: PlatformProfile,
    pools: HashMap<String, FunctionPool>,
}

impl Fleet {
    /// Creates an empty fleet on a platform.
    pub fn new(profile: PlatformProfile) -> Self {
        Fleet {
            profile,
            pools: HashMap::new(),
        }
    }

    /// The platform this fleet runs on.
    pub fn profile(&self) -> &PlatformProfile {
        &self.profile
    }

    /// Deploys a function.
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::OutOfMemory`] if the requested memory exceeds the
    /// platform's instance limit, and [`FaasError::InvalidArgument`] on
    /// duplicate names.
    pub fn deploy(&mut self, spec: FunctionSpec) -> Result<()> {
        if spec.memory_bytes > self.profile.instance_memory_bytes {
            return Err(FaasError::OutOfMemory {
                requested: spec.memory_bytes,
                limit: self.profile.instance_memory_bytes,
            });
        }
        if self.pools.contains_key(&spec.name) {
            return Err(FaasError::InvalidArgument(format!(
                "function {} already deployed",
                spec.name
            )));
        }
        self.pools.insert(
            spec.name.clone(),
            FunctionPool {
                spec_memory: spec.memory_bytes,
                package_bytes: spec.package_bytes,
                ..FunctionPool::default()
            },
        );
        Ok(())
    }

    /// Acquires an instance of `name` at virtual time `now`: reuses a warm
    /// instance if one is free, otherwise pays a cold start (provisioning
    /// plus package load from the object store).
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::NoSuchFunction`] for unknown names.
    pub fn acquire(&mut self, name: &str, now: Micros) -> Result<Acquisition> {
        let idle_timeout = self.profile.warm_idle_timeout;
        let cold_ms =
            self.profile.cold_start_ms + self.profile.storage_read_ms(self.package_bytes(name)?);
        let pool = self
            .pools
            .get_mut(name)
            .ok_or_else(|| FaasError::NoSuchFunction(name.to_string()))?;

        // Reclaim instances idle past the timeout.
        pool.free_at.retain(|&f| f + idle_timeout >= now);

        // Prefer the most recently freed warm instance that is actually free.
        let mut best: Option<usize> = None;
        for (i, &f) in pool.free_at.iter().enumerate() {
            if f <= now && best.map(|b| pool.free_at[b] < f).unwrap_or(true) {
                best = Some(i);
            }
        }
        let acq = match best {
            Some(i) => {
                pool.free_at.swap_remove(i);
                pool.warm_starts += 1;
                Acquisition {
                    cold: false,
                    ready_at: now,
                }
            }
            None => {
                pool.cold_starts += 1;
                Acquisition {
                    cold: true,
                    ready_at: now + Micros::from_ms(cold_ms),
                }
            }
        };
        pool.busy += 1;
        pool.peak_instances = pool.peak_instances.max(pool.busy + pool.free_at.len());
        Ok(acq)
    }

    /// Releases an instance of `name` back to the warm pool at time `at`.
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::NoSuchFunction`] for unknown names.
    pub fn release(&mut self, name: &str, at: Micros) -> Result<()> {
        let pool = self
            .pools
            .get_mut(name)
            .ok_or_else(|| FaasError::NoSuchFunction(name.to_string()))?;
        pool.busy = pool.busy.saturating_sub(1);
        pool.free_at.push(at);
        Ok(())
    }

    /// Pre-warms `count` instances of `name`, as Gillis's periodic pings do
    /// (§III-A): they become free immediately at `now`.
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::NoSuchFunction`] for unknown names.
    pub fn prewarm(&mut self, name: &str, count: usize, now: Micros) -> Result<()> {
        let pool = self
            .pools
            .get_mut(name)
            .ok_or_else(|| FaasError::NoSuchFunction(name.to_string()))?;
        for _ in 0..count {
            pool.free_at.push(now);
        }
        pool.peak_instances = pool.peak_instances.max(pool.busy + pool.free_at.len());
        Ok(())
    }

    /// Configured memory of a function.
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::NoSuchFunction`] for unknown names.
    pub fn memory_bytes(&self, name: &str) -> Result<u64> {
        Ok(self
            .pools
            .get(name)
            .ok_or_else(|| FaasError::NoSuchFunction(name.to_string()))?
            .spec_memory)
    }

    /// Package size of a function.
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::NoSuchFunction`] for unknown names.
    pub fn package_bytes(&self, name: &str) -> Result<u64> {
        Ok(self
            .pools
            .get(name)
            .ok_or_else(|| FaasError::NoSuchFunction(name.to_string()))?
            .package_bytes)
    }

    /// `(cold_starts, warm_starts, peak_instances)` counters of a function.
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::NoSuchFunction`] for unknown names.
    pub fn stats(&self, name: &str) -> Result<(u64, u64, usize)> {
        let p = self
            .pools
            .get(name)
            .ok_or_else(|| FaasError::NoSuchFunction(name.to_string()))?;
        Ok((p.cold_starts, p.warm_starts, p.peak_instances))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> Fleet {
        let mut f = Fleet::new(PlatformProfile::aws_lambda());
        f.deploy(FunctionSpec {
            name: "worker".into(),
            memory_bytes: 3_000_000_000,
            package_bytes: 100_000_000,
        })
        .unwrap();
        f
    }

    #[test]
    fn deploy_rejects_oversized_and_duplicate() {
        let mut f = Fleet::new(PlatformProfile::aws_lambda());
        assert!(matches!(
            f.deploy(FunctionSpec {
                name: "big".into(),
                memory_bytes: 5_000_000_000,
                package_bytes: 0,
            }),
            Err(FaasError::OutOfMemory { .. })
        ));
        f.deploy(FunctionSpec {
            name: "ok".into(),
            memory_bytes: 1_000_000_000,
            package_bytes: 0,
        })
        .unwrap();
        assert!(f
            .deploy(FunctionSpec {
                name: "ok".into(),
                memory_bytes: 1_000_000_000,
                package_bytes: 0,
            })
            .is_err());
    }

    #[test]
    fn first_start_is_cold_then_warm() {
        let mut f = fleet();
        let a = f.acquire("worker", Micros::ZERO).unwrap();
        assert!(a.cold);
        assert!(a.ready_at > Micros::ZERO);
        f.release("worker", Micros::from_ms(500.0)).unwrap();
        let b = f.acquire("worker", Micros::from_ms(600.0)).unwrap();
        assert!(!b.cold);
        assert_eq!(b.ready_at, Micros::from_ms(600.0));
        let (cold, warm, peak) = f.stats("worker").unwrap();
        assert_eq!((cold, warm), (1, 1));
        assert_eq!(peak, 1);
    }

    #[test]
    fn concurrent_requests_scale_out() {
        let mut f = fleet();
        let a = f.acquire("worker", Micros::ZERO).unwrap();
        let b = f.acquire("worker", Micros::ZERO).unwrap();
        assert!(a.cold && b.cold);
        let (cold, _, peak) = f.stats("worker").unwrap();
        assert_eq!(cold, 2);
        assert_eq!(peak, 2);
    }

    #[test]
    fn busy_instance_is_not_reused() {
        let mut f = fleet();
        let _ = f.acquire("worker", Micros::ZERO).unwrap();
        f.release("worker", Micros::from_ms(100.0)).unwrap();
        // At t=50 the instance is still busy (frees at 100) -> cold start.
        let b = f.acquire("worker", Micros::from_ms(50.0)).unwrap();
        assert!(b.cold);
    }

    #[test]
    fn idle_instances_expire() {
        let mut f = fleet();
        let _ = f.acquire("worker", Micros::ZERO).unwrap();
        f.release("worker", Micros::from_ms(10.0)).unwrap();
        // Just under the 600 s timeout: still warm.
        let t_warm = Micros::from_secs(599);
        let a = f.acquire("worker", t_warm).unwrap();
        assert!(!a.cold);
        f.release("worker", t_warm).unwrap();
        // Far past the timeout: reclaimed.
        let b = f.acquire("worker", Micros::from_secs(1500)).unwrap();
        assert!(b.cold);
    }

    #[test]
    fn prewarm_avoids_cold_start() {
        let mut f = fleet();
        f.prewarm("worker", 4, Micros::ZERO).unwrap();
        for _ in 0..4 {
            assert!(!f.acquire("worker", Micros::from_ms(1.0)).unwrap().cold);
        }
        assert!(f.acquire("worker", Micros::from_ms(1.0)).unwrap().cold);
    }

    #[test]
    fn cold_start_cost_includes_package_load() {
        let mut f = fleet();
        let a = f.acquire("worker", Micros::ZERO).unwrap();
        // 250 ms provisioning + 30 ms storage latency + 100 MB at 120 MB/s.
        let expected = 250.0 + 30.0 + 100_000_000.0 * 8.0 / 960e6 * 1000.0;
        assert!((a.ready_at.as_ms() - expected).abs() < 1.0);
    }

    #[test]
    fn unknown_function_errors() {
        let mut f = fleet();
        assert!(f.acquire("nope", Micros::ZERO).is_err());
        assert!(f.release("nope", Micros::ZERO).is_err());
        assert!(f.stats("nope").is_err());
        assert!(f.prewarm("nope", 1, Micros::ZERO).is_err());
    }
}
