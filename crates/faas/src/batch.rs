//! Adaptive multi-SLO batching policy: SLO classes, deadline-derived batch
//! windows, and the knobs the joint batch×memory configurator searches.
//!
//! Batching amortizes the fixed per-query costs of serverless inference —
//! weight-panel packing, fork/join invocation waves, per-invocation billing —
//! across several queries that share one master execution. The price is
//! queueing delay: a query waits for the window to fill. This module holds
//! the *policy* half of that trade (what may be batched, and for how long);
//! the serving runtime in `gillis-core` turns it into a schedule against the
//! performance model (HarmonyBatch-style joint batch-size × memory-size
//! selection) and forms batches deterministically.
//!
//! - [`SloClass`] — one latency class: a deadline and a traffic weight.
//!   Queries are only batched with others of the same class, so a lenient
//!   class can never delay a strict one.
//! - [`BatchPolicy`] — the classes plus global caps: maximum batch size,
//!   maximum accumulation window, the safety margin subtracted from
//!   deadlines, the perf model's amortized-compute fraction, and the
//!   candidate memory sizes the configurator may pick from.
//! - [`BatchCounters`] — honest accounting of batch formation, reported
//!   next to the overload counters.
//!
//! Like overload protection ([`crate::overload`]), every decision here is a
//! pure function of the policy, the virtual arrival times, and the seed —
//! never of wall-clock time or thread scheduling.

use serde::{Deserialize, Serialize};

use crate::error::FaasError;
use crate::Result;

/// One latency class of a multi-SLO workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloClass {
    /// Per-query deadline from arrival, in milliseconds (`f64::INFINITY`
    /// means best-effort: the window cap alone bounds batching delay).
    pub deadline_ms: f64,
    /// Relative traffic share of this class (positive; shares are
    /// normalized over the policy's classes).
    pub weight: f64,
}

/// How the serving path forms batches across SLO classes.
///
/// A query is assigned a class deterministically (a pure hash of the seed
/// and its index, weighted by the class shares), accumulates with same-class
/// arrivals up to a deadline-derived window, and is never held past the
/// point where the batch's predicted completion would miss its deadline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchPolicy {
    /// The SLO classes (at least one). Queries only batch within a class.
    pub classes: Vec<SloClass>,
    /// Largest batch the configurator may pick (≥ 1; 1 disables batching).
    pub max_batch: usize,
    /// Hard cap on the accumulation window in milliseconds, regardless of
    /// deadline slack.
    pub max_window_ms: f64,
    /// Safety margin in milliseconds subtracted from every deadline when
    /// deriving windows (absorbs prediction error and invocation jitter).
    pub window_margin_ms: f64,
    /// Fraction of a partition's compute that does *not* scale with the
    /// batch size (packing, panel-cache lookups, framework overhead) — the
    /// `α` of the perf model's `t_batch(plan, n)` term, in `[0, 1]`.
    pub amortized_fraction: f64,
    /// Candidate instance memory sizes in MB for the joint batch×memory
    /// search (CPU scales with memory, Lambda-style). Empty means "platform
    /// default only".
    pub memory_mb: Vec<u64>,
}

impl BatchPolicy {
    /// A single-class policy: one deadline for all traffic, batches up to
    /// `max_batch`, window capped at a quarter of the deadline, standard
    /// margin and amortized fraction, platform-default memory.
    pub fn single(deadline_ms: f64, max_batch: usize) -> Self {
        BatchPolicy {
            classes: vec![SloClass {
                deadline_ms,
                weight: 1.0,
            }],
            max_batch,
            max_window_ms: if deadline_ms.is_finite() {
                deadline_ms / 4.0
            } else {
                25.0
            },
            window_margin_ms: 5.0,
            amortized_fraction: 0.25,
            memory_mb: Vec::new(),
        }
    }

    /// Batching off: one best-effort class, batch size 1. Serving behaves
    /// exactly like the unbatched open loop.
    pub fn batch_one() -> Self {
        BatchPolicy {
            max_batch: 1,
            ..BatchPolicy::single(f64::INFINITY, 1)
        }
    }

    /// Whether this policy ever forms a batch larger than one.
    pub fn enabled(&self) -> bool {
        self.max_batch > 1
    }

    /// Sum of the class weights.
    pub fn total_weight(&self) -> f64 {
        self.classes.iter().map(|c| c.weight).sum()
    }

    /// Deterministically assigns query `query` of a run keyed by `seed` to
    /// a class index, weighted by the class shares. A pure splitmix64 hash
    /// of `(seed, query)` — no RNG stream is consumed, so class assignment
    /// never perturbs arrival or noise draws and is bit-identical at any
    /// thread count.
    pub fn class_of(&self, seed: u64, query: u64) -> usize {
        let mut z = seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(query.wrapping_mul(0xd1b5_4a32_d192_ed03));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        // Map the hash to [0, 1) and walk the cumulative weights.
        let u = (z >> 11) as f64 / (1u64 << 53) as f64;
        let total = self.total_weight();
        let mut acc = 0.0;
        for (i, c) in self.classes.iter().enumerate() {
            acc += c.weight / total;
            if u < acc {
                return i;
            }
        }
        self.classes.len() - 1
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::InvalidArgument`] for an empty class list,
    /// non-positive or NaN deadlines/weights, a zero batch cap, negative or
    /// NaN window/margin, an amortized fraction outside `[0, 1]`, or a zero
    /// memory candidate.
    pub fn validate(&self) -> Result<()> {
        if self.classes.is_empty() {
            return Err(FaasError::InvalidArgument(
                "batch policy needs at least one SLO class".into(),
            ));
        }
        for (i, c) in self.classes.iter().enumerate() {
            // NaN-rejecting: the deadline must be definitely positive.
            if c.deadline_ms.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                return Err(FaasError::InvalidArgument(format!(
                    "class {i} deadline_ms must be positive (or infinite): {}",
                    c.deadline_ms
                )));
            }
            if c.weight.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
                || !c.weight.is_finite()
            {
                return Err(FaasError::InvalidArgument(format!(
                    "class {i} weight must be positive and finite: {}",
                    c.weight
                )));
            }
        }
        if self.max_batch == 0 {
            return Err(FaasError::InvalidArgument(
                "batch max_batch must be >= 1".into(),
            ));
        }
        if !self.max_window_ms.is_finite() || self.max_window_ms < 0.0 {
            return Err(FaasError::InvalidArgument(format!(
                "batch max_window_ms must be finite and non-negative: {}",
                self.max_window_ms
            )));
        }
        if !self.window_margin_ms.is_finite() || self.window_margin_ms < 0.0 {
            return Err(FaasError::InvalidArgument(format!(
                "batch window_margin_ms must be finite and non-negative: {}",
                self.window_margin_ms
            )));
        }
        if !(0.0..=1.0).contains(&self.amortized_fraction) || self.amortized_fraction.is_nan() {
            return Err(FaasError::InvalidArgument(format!(
                "batch amortized_fraction must be in [0, 1]: {}",
                self.amortized_fraction
            )));
        }
        if self.memory_mb.contains(&0) {
            return Err(FaasError::InvalidArgument(
                "batch memory candidates must be positive MB values".into(),
            ));
        }
        Ok(())
    }

    /// Serializes the policy to a compact one-line `key=value` format,
    /// preceded by a header — the deployment artifact shape shared with
    /// `OverloadPolicy::to_text`. Classes serialize as
    /// `deadline:weight` pairs joined by commas; an empty memory candidate
    /// list serializes as `default`.
    pub fn to_text(&self) -> String {
        let classes = self
            .classes
            .iter()
            .map(|c| format!("{}:{}", c.deadline_ms, c.weight))
            .collect::<Vec<_>>()
            .join(",");
        let memory = if self.memory_mb.is_empty() {
            "default".to_string()
        } else {
            self.memory_mb
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "gillis-batch v1\nclasses={} max_batch={} window_ms={} margin_ms={} \
             amortized={} memory_mb={}\n",
            classes,
            self.max_batch,
            self.max_window_ms,
            self.window_margin_ms,
            self.amortized_fraction,
            memory,
        )
    }

    /// Parses the format produced by [`BatchPolicy::to_text`] and validates
    /// the result.
    ///
    /// # Errors
    ///
    /// Returns [`FaasError::InvalidArgument`] on header, field, or
    /// validation errors.
    pub fn from_text(text: &str) -> Result<Self> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines
            .next()
            .ok_or_else(|| FaasError::InvalidArgument("empty batch policy text".into()))?;
        if header.trim() != "gillis-batch v1" {
            return Err(FaasError::InvalidArgument(format!(
                "unknown batch policy header: {header}"
            )));
        }
        let mut policy = BatchPolicy::batch_one();
        for token in lines.flat_map(str::split_whitespace) {
            let (key, value) = token.split_once('=').ok_or_else(|| {
                FaasError::InvalidArgument(format!("expected key=value, got: {token}"))
            })?;
            let bad = |what: &str| FaasError::InvalidArgument(format!("bad batch {what}: {value}"));
            match key {
                "classes" => policy.classes = parse_classes(value)?,
                "max_batch" => policy.max_batch = value.parse().map_err(|_| bad("max_batch"))?,
                "window_ms" => {
                    policy.max_window_ms = value.parse().map_err(|_| bad("window_ms"))?;
                }
                "margin_ms" => {
                    policy.window_margin_ms = value.parse().map_err(|_| bad("margin_ms"))?;
                }
                "amortized" => {
                    policy.amortized_fraction = value.parse().map_err(|_| bad("amortized"))?;
                }
                "memory_mb" => {
                    policy.memory_mb = if value == "default" {
                        Vec::new()
                    } else {
                        value
                            .split(',')
                            .map(|m| m.parse().map_err(|_| bad("memory_mb")))
                            .collect::<Result<Vec<u64>>>()?
                    };
                }
                other => {
                    return Err(FaasError::InvalidArgument(format!(
                        "unknown batch policy key: {other}"
                    )));
                }
            }
        }
        policy.validate()?;
        Ok(policy)
    }

    /// Reads batching knobs from the environment, mirroring
    /// [`crate::overload::OverloadPolicy::from_env`]: `GILLIS_BATCH_MAX`
    /// enables the policy (required); `GILLIS_BATCH_CLASSES` (e.g.
    /// `250:1,500:2` as `deadline_ms:weight` pairs),
    /// `GILLIS_BATCH_WINDOW_MS`, `GILLIS_BATCH_MARGIN_MS`,
    /// `GILLIS_BATCH_AMORTIZED`, and `GILLIS_BATCH_MEMORY_MB` (comma list of
    /// MB sizes) override the `single`-class defaults. Returns `None` when
    /// the enabling variable is unset or unparseable, and `None` for an
    /// invalid combination; malformed values are reported on stderr (see
    /// [`crate::envutil`]).
    pub fn from_env() -> Option<Self> {
        use crate::envutil::env_var as var;
        let max_batch: usize = var("GILLIS_BATCH_MAX")?;
        let mut policy = BatchPolicy {
            max_batch,
            ..BatchPolicy::single(f64::INFINITY, max_batch)
        };
        if let Ok(spec) = std::env::var("GILLIS_BATCH_CLASSES") {
            match parse_classes(&spec) {
                Ok(classes) => policy.classes = classes,
                Err(e) => {
                    eprintln!("gillis: ignoring malformed GILLIS_BATCH_CLASSES={spec:?}: {e}");
                    return None;
                }
            }
        }
        if let Some(w) = var("GILLIS_BATCH_WINDOW_MS") {
            policy.max_window_ms = w;
        }
        if let Some(m) = var("GILLIS_BATCH_MARGIN_MS") {
            policy.window_margin_ms = m;
        }
        if let Some(a) = var("GILLIS_BATCH_AMORTIZED") {
            policy.amortized_fraction = a;
        }
        if std::env::var("GILLIS_BATCH_MEMORY_MB").is_ok() {
            policy.memory_mb = crate::envutil::env_list("GILLIS_BATCH_MEMORY_MB")?;
        }
        policy.validate().ok().map(|()| policy)
    }
}

/// Parses a `deadline:weight,deadline:weight` class list (`inf` deadlines
/// allowed).
fn parse_classes(spec: &str) -> Result<Vec<SloClass>> {
    spec.split(',')
        .map(|pair| {
            let (d, w) = pair.split_once(':').ok_or_else(|| {
                FaasError::InvalidArgument(format!("expected deadline:weight, got: {pair}"))
            })?;
            let bad = |what: &str| FaasError::InvalidArgument(format!("bad class {what}: {pair}"));
            Ok(SloClass {
                deadline_ms: d.parse().map_err(|_| bad("deadline"))?,
                weight: w.parse().map_err(|_| bad("weight"))?,
            })
        })
        .collect()
}

/// Honest batch-formation accounting across a serving run, reported next to
/// the overload counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BatchCounters {
    /// Batches dispatched (each is one master execution).
    pub batches: u64,
    /// Queries that rode in a batch of two or more.
    pub batched_queries: u64,
    /// Windows that closed with a single member and took the batch-1 fast
    /// path (no widened buffers, per-query execution storage).
    pub batch_one_fast_path: u64,
    /// Largest batch formed.
    pub largest_batch: u64,
    /// Batches dispatched because they reached their target size.
    pub size_closes: u64,
    /// Batches dispatched because their accumulation window expired.
    pub window_closes: u64,
}

impl BatchCounters {
    /// Mean formed batch size (1.0 when nothing was dispatched).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            1.0
        } else {
            (self.batched_queries + self.batch_one_fast_path) as f64 / self.batches as f64
        }
    }

    /// Folds another counter set into this one.
    pub fn absorb(&mut self, other: &BatchCounters) {
        self.batches += other.batches;
        self.batched_queries += other.batched_queries;
        self.batch_one_fast_path += other.batch_one_fast_path;
        self.largest_batch = self.largest_batch.max(other.largest_batch);
        self.size_closes += other.size_closes;
        self.window_closes += other.window_closes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_validation() {
        assert!(BatchPolicy::single(250.0, 8).validate().is_ok());
        assert!(BatchPolicy::batch_one().validate().is_ok());
        assert!(BatchPolicy {
            classes: Vec::new(),
            ..BatchPolicy::batch_one()
        }
        .validate()
        .is_err());
        assert!(BatchPolicy {
            max_batch: 0,
            ..BatchPolicy::single(100.0, 4)
        }
        .validate()
        .is_err());
        for bad_deadline in [0.0, -1.0, f64::NAN] {
            assert!(BatchPolicy::single(bad_deadline, 4).validate().is_err());
        }
        assert!(BatchPolicy {
            classes: vec![SloClass {
                deadline_ms: 100.0,
                weight: 0.0,
            }],
            ..BatchPolicy::single(100.0, 4)
        }
        .validate()
        .is_err());
        assert!(BatchPolicy {
            max_window_ms: f64::NAN,
            ..BatchPolicy::single(100.0, 4)
        }
        .validate()
        .is_err());
        assert!(BatchPolicy {
            window_margin_ms: -1.0,
            ..BatchPolicy::single(100.0, 4)
        }
        .validate()
        .is_err());
        assert!(BatchPolicy {
            amortized_fraction: 1.5,
            ..BatchPolicy::single(100.0, 4)
        }
        .validate()
        .is_err());
        assert!(BatchPolicy {
            amortized_fraction: f64::NAN,
            ..BatchPolicy::single(100.0, 4)
        }
        .validate()
        .is_err());
        assert!(BatchPolicy {
            memory_mb: vec![1792, 0],
            ..BatchPolicy::single(100.0, 4)
        }
        .validate()
        .is_err());
    }

    #[test]
    fn policy_text_round_trips() {
        for policy in [
            BatchPolicy::batch_one(),
            BatchPolicy::single(437.25, 8),
            BatchPolicy {
                classes: vec![
                    SloClass {
                        deadline_ms: 150.0,
                        weight: 2.0,
                    },
                    SloClass {
                        deadline_ms: 600.0,
                        weight: 1.0,
                    },
                    SloClass {
                        deadline_ms: f64::INFINITY,
                        weight: 0.5,
                    },
                ],
                max_batch: 16,
                max_window_ms: 40.0,
                window_margin_ms: 2.5,
                amortized_fraction: 0.3,
                memory_mb: vec![1792, 3008, 6016],
            },
        ] {
            let text = policy.to_text();
            let parsed = BatchPolicy::from_text(&text).unwrap();
            assert_eq!(policy, parsed, "{text}");
        }
        assert!(BatchPolicy::from_text("").is_err());
        assert!(BatchPolicy::from_text("nope\nmax_batch=2").is_err());
        assert!(BatchPolicy::from_text("gillis-batch v1\nmax_batch").is_err());
        assert!(BatchPolicy::from_text("gillis-batch v1\nmax_batch=x").is_err());
        assert!(BatchPolicy::from_text("gillis-batch v1\nwat=1").is_err());
        assert!(BatchPolicy::from_text("gillis-batch v1\nclasses=100").is_err());
        assert!(BatchPolicy::from_text("gillis-batch v1\nclasses=100:x").is_err());
        // Parsed policies are validated.
        assert!(BatchPolicy::from_text("gillis-batch v1\nmax_batch=0").is_err());
    }

    #[test]
    fn class_assignment_is_deterministic_and_tracks_weights() {
        let policy = BatchPolicy {
            classes: vec![
                SloClass {
                    deadline_ms: 100.0,
                    weight: 3.0,
                },
                SloClass {
                    deadline_ms: 500.0,
                    weight: 1.0,
                },
            ],
            ..BatchPolicy::single(100.0, 4)
        };
        let n = 10_000u64;
        let mut counts = [0u64; 2];
        for q in 0..n {
            let c = policy.class_of(7, q);
            assert_eq!(c, policy.class_of(7, q), "pure function of (seed, query)");
            counts[c] += 1;
        }
        // 3:1 split within a few percent.
        let share = counts[0] as f64 / n as f64;
        assert!((share - 0.75).abs() < 0.03, "class-0 share {share}");
        // Different seeds shuffle the assignment.
        assert!((0..64).any(|q| policy.class_of(7, q) != policy.class_of(8, q)));
    }

    #[test]
    fn counters_absorb_and_mean() {
        let a = BatchCounters {
            batches: 4,
            batched_queries: 9,
            batch_one_fast_path: 1,
            largest_batch: 5,
            size_closes: 2,
            window_closes: 2,
        };
        assert!((a.mean_batch() - 2.5).abs() < 1e-12);
        let mut b = BatchCounters {
            largest_batch: 7,
            ..BatchCounters::default()
        };
        assert_eq!(b.mean_batch(), 1.0);
        b.absorb(&a);
        assert_eq!(b.batches, 4);
        assert_eq!(b.largest_batch, 7, "largest is a max, not a sum");
        b.absorb(&a);
        assert_eq!(b.batched_queries, 18);
        assert_eq!(b.window_closes, 4);
    }

    #[test]
    fn env_parsing_requires_the_enabling_variable() {
        // from_env is driven by process-global env vars; only exercise the
        // unset path here (CI never sets these for unit tests).
        if std::env::var("GILLIS_BATCH_MAX").is_err() {
            assert!(BatchPolicy::from_env().is_none());
        }
    }

    #[test]
    fn class_spec_parsing() {
        let classes = parse_classes("150:2,600:1,inf:0.5").unwrap();
        assert_eq!(classes.len(), 3);
        assert_eq!(classes[0].deadline_ms, 150.0);
        assert_eq!(classes[1].weight, 1.0);
        assert!(classes[2].deadline_ms.is_infinite());
        assert!(parse_classes("150").is_err());
        assert!(parse_classes("150:x").is_err());
    }
}
