//! Simulated compute ground truth.
//!
//! A real deployment measures layer execution on actual vCPUs; here the
//! platform defines a ground-truth cost surface (peak GFLOP/s × per-class
//! efficiency + fixed per-layer overhead, with small multiplicative noise).
//! The performance model in `gillis-perf` never reads these constants — it
//! *profiles* layer executions and fits a regression, exactly like the paper
//! does against MXNet on Lambda (§IV-A).

use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::platform::PlatformProfile;
use crate::stats::sample_standard_normal;

/// Layer-class tag used to select an efficiency factor. This is the only
/// model-level information the simulator needs about a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EffClass {
    /// Convolution kernels.
    Conv,
    /// Dense (fully connected) kernels.
    Dense,
    /// Recurrent (LSTM) kernels.
    Recurrent,
    /// Pooling sweeps.
    Pool,
    /// Element-wise kernels.
    ElementWise,
}

impl PlatformProfile {
    fn efficiency_of(&self, class: EffClass) -> f64 {
        match class {
            EffClass::Conv => self.efficiency.conv,
            EffClass::Dense => self.efficiency.dense,
            EffClass::Recurrent => self.efficiency.recurrent,
            EffClass::Pool => self.efficiency.pool,
            EffClass::ElementWise => self.efficiency.element_wise,
        }
    }

    /// Ground-truth mean execution time of `flops` floating-point operations
    /// of the given class on one instance, in milliseconds.
    pub fn compute_ms(&self, flops: u64, class: EffClass) -> f64 {
        let eff = self.efficiency_of(class);
        self.per_layer_overhead_ms + flops as f64 / (self.cpu_gflops * 1e6 * eff)
    }

    /// One noisy observation of [`PlatformProfile::compute_ms`] — what a
    /// profiling run actually measures.
    pub fn compute_ms_noisy<R: RngExt + ?Sized>(
        &self,
        flops: u64,
        class: EffClass,
        rng: &mut R,
    ) -> f64 {
        let noise = 1.0 + self.compute_noise_rel_std * sample_standard_normal(rng);
        self.compute_ms(flops, class) * noise.max(0.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn compute_time_is_linear_in_flops() {
        let p = PlatformProfile::aws_lambda();
        let t1 = p.compute_ms(1_000_000_000, EffClass::Conv);
        let t2 = p.compute_ms(2_000_000_000, EffClass::Conv);
        let overhead = p.per_layer_overhead_ms;
        assert!(((t2 - overhead) - 2.0 * (t1 - overhead)).abs() < 1e-9);
    }

    #[test]
    fn dense_is_slower_per_flop_than_conv() {
        let p = PlatformProfile::aws_lambda();
        assert!(
            p.compute_ms(1_000_000_000, EffClass::Dense)
                > p.compute_ms(1_000_000_000, EffClass::Conv)
        );
    }

    #[test]
    fn lambda_serves_wrn50_3_in_over_two_seconds() {
        // Fig 1 anchor: WRN-50-3 takes > 2000 ms on a Lambda function.
        // WRN-50-3 forward ≈ 74 GFLOPs of conv work (ResNet-50 ≈ 8.2 GFLOPs,
        // widened 3x ≈ 9x the conv work).
        let p = PlatformProfile::aws_lambda();
        let t = p.compute_ms(74_000_000_000, EffClass::Conv);
        assert!(t > 2000.0 && t < 3500.0, "t = {t}");
    }

    #[test]
    fn noise_is_small_and_unbiased() {
        let p = PlatformProfile::aws_lambda();
        let mut rng = StdRng::seed_from_u64(5);
        let mean_true = p.compute_ms(5_000_000_000, EffClass::Conv);
        let xs: Vec<f64> = (0..2000)
            .map(|_| p.compute_ms_noisy(5_000_000_000, EffClass::Conv, &mut rng))
            .collect();
        let m = crate::stats::mean(&xs);
        assert!((m - mean_true).abs() / mean_true < 0.01);
        let sd = crate::stats::variance(&xs).sqrt();
        assert!(sd / mean_true < 0.04);
    }
}
