//! Property-based tests of the platform simulator's invariants.

use proptest::prelude::*;

use gillis_faas::billing::billed_ms;
use gillis_faas::des::EventQueue;
use gillis_faas::fleet::{Fleet, FunctionSpec};
use gillis_faas::overload::{BreakerPolicy, OverloadPolicy};
use gillis_faas::{ExGaussian, Micros, PlatformProfile};

proptest! {
    #[test]
    fn event_queue_pops_in_time_order_fifo_ties(
        events in prop::collection::vec((0u64..1000, any::<u16>()), 1..200)
    ) {
        let mut q = EventQueue::new();
        for (i, &(t, payload)) in events.iter().enumerate() {
            q.push(Micros(t), (i, payload));
        }
        let mut last: Option<(Micros, usize)> = None;
        let mut popped = 0;
        while let Some((t, (seq, _))) = q.pop() {
            popped += 1;
            if let Some((lt, lseq)) = last {
                prop_assert!(t >= lt, "time went backwards");
                if t == lt {
                    prop_assert!(seq > lseq, "FIFO violated among ties");
                }
            }
            last = Some((t, seq));
        }
        prop_assert_eq!(popped, events.len());
    }

    #[test]
    fn billing_rounds_up_within_one_granule(
        duration in 0.0f64..1e6,
        granularity in 1u64..500,
    ) {
        let billed = billed_ms(duration, granularity);
        prop_assert!(billed as f64 >= duration);
        if duration > 0.0 {
            prop_assert!((billed as f64) < duration + granularity as f64);
            prop_assert_eq!(billed % granularity, 0);
        }
    }

    #[test]
    fn billing_is_monotone_in_duration(
        a in 0.0f64..1e5,
        b in 0.0f64..1e5,
        granularity in 1u64..500,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(billed_ms(lo, granularity) <= billed_ms(hi, granularity));
    }

    #[test]
    fn exgaussian_cdf_is_monotone_for_random_params(
        mu in -10.0f64..50.0,
        sigma in 0.1f64..10.0,
        rate in 0.01f64..5.0,
        xs in prop::collection::vec(-50.0f64..200.0, 2..40),
    ) {
        let d = ExGaussian::new(mu, sigma, rate).unwrap();
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Tolerance matches the erf approximation's absolute error
        // (Abramowitz–Stegun 7.1.26: ~1.5e-7): tail values below that are
        // numerical noise.
        let mut prev = -1e-12;
        for x in sorted {
            let f = d.cdf(x);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= prev - 5e-7, "cdf not monotone at {x}");
            prev = f;
        }
    }

    #[test]
    fn expected_max_is_monotone_and_above_mean(
        mu in 0.0f64..20.0,
        sigma in 0.1f64..5.0,
        rate in 0.05f64..2.0,
    ) {
        let d = ExGaussian::new(mu, sigma, rate).unwrap();
        let mut prev = f64::NEG_INFINITY;
        for n in [1usize, 2, 4, 8] {
            let m = d.expected_max(n);
            prop_assert!(m >= prev);
            prev = m;
        }
        prop_assert!(d.expected_max(4) >= d.mean() - 1e-6);
    }

    #[test]
    fn fleet_acquire_release_never_loses_instances(
        script in prop::collection::vec((any::<bool>(), 0u64..10_000), 1..100)
    ) {
        let mut fleet = Fleet::new(PlatformProfile::aws_lambda());
        fleet
            .deploy(FunctionSpec {
                name: "f".into(),
                memory_bytes: 1_000_000_000,
                package_bytes: 1_000,
            })
            .unwrap();
        let mut now = Micros::ZERO;
        let mut held = 0usize;
        for (acquire, dt) in script {
            now += Micros(dt);
            if acquire {
                let a = fleet.acquire("f", now).unwrap();
                prop_assert!(a.ready_at >= now);
                held += 1;
            } else if held > 0 {
                fleet.release("f", now).unwrap();
                held -= 1;
            }
        }
        let (cold, warm, peak) = fleet.stats("f").unwrap();
        // Every start is cold or warm, and the pool never exceeds its peak.
        prop_assert!(cold + warm >= held as u64);
        prop_assert!(peak >= held);
    }

    #[test]
    fn micros_roundtrip_and_ordering(a in 0u64..1_000_000_000, b in 0u64..1_000_000_000) {
        let (ma, mb) = (Micros(a), Micros(b));
        prop_assert_eq!((ma + mb).0, a + b);
        prop_assert_eq!(ma.saturating_sub(mb).0, a.saturating_sub(b));
        prop_assert_eq!(ma < mb, a < b);
        let ms = Micros::from_ms(ma.as_ms());
        prop_assert_eq!(ms, ma);
    }

    /// Any valid overload policy survives a text round trip exactly — the
    /// same contract `ExecutionPlan::to_text`/`from_text` upholds for plans.
    #[test]
    fn overload_policy_text_round_trips_for_all_valid_policies(
        concurrency in 1usize..64,
        bounded_queue in any::<bool>(),
        queue in 0usize..1024,
        has_deadline in any::<bool>(),
        deadline in 1u32..1_000_000,
        shed in any::<bool>(),
        breaker_on in any::<bool>(),
        threshold in 1u32..16,
        cooldown in 0u32..1_000_000,
        probes in 1u32..8,
    ) {
        // Deadlines and cooldowns are drawn as integer quarter-ms so the
        // f64 values round-trip exactly through the decimal text form.
        let policy = OverloadPolicy {
            max_concurrency: concurrency,
            queue_depth: if bounded_queue { queue } else { usize::MAX },
            deadline_ms: if has_deadline {
                f64::from(deadline) * 0.25
            } else {
                f64::INFINITY
            },
            shed_on_predicted_miss: shed && has_deadline,
            breaker: if breaker_on {
                BreakerPolicy {
                    failure_threshold: threshold,
                    cooldown_ms: f64::from(cooldown) * 0.25,
                    half_open_probes: probes,
                }
            } else {
                BreakerPolicy::disabled()
            },
        };
        prop_assert!(policy.validate().is_ok());
        let text = policy.to_text();
        let parsed = OverloadPolicy::from_text(&text).unwrap();
        prop_assert_eq!(policy, parsed, "{}", text);
    }
}
