//! Property-based tests of the platform simulator's invariants.

use proptest::prelude::*;

use gillis_faas::billing::billed_ms;
use gillis_faas::des::EventQueue;
use gillis_faas::fleet::{Fleet, FunctionSpec};
use gillis_faas::overload::{BreakerPolicy, OverloadPolicy};
use gillis_faas::{ExGaussian, Micros, PlatformProfile};

proptest! {
    #[test]
    fn event_queue_pops_in_time_order_fifo_ties(
        events in prop::collection::vec((0u64..1000, any::<u16>()), 1..200)
    ) {
        let mut q = EventQueue::new();
        for (i, &(t, payload)) in events.iter().enumerate() {
            q.push(Micros(t), (i, payload));
        }
        let mut last: Option<(Micros, usize)> = None;
        let mut popped = 0;
        while let Some((t, (seq, _))) = q.pop() {
            popped += 1;
            if let Some((lt, lseq)) = last {
                prop_assert!(t >= lt, "time went backwards");
                if t == lt {
                    prop_assert!(seq > lseq, "FIFO violated among ties");
                }
            }
            last = Some((t, seq));
        }
        prop_assert_eq!(popped, events.len());
    }

    #[test]
    fn billing_rounds_up_within_one_granule(
        duration in 0.0f64..1e6,
        granularity in 1u64..500,
    ) {
        let billed = billed_ms(duration, granularity);
        prop_assert!(billed as f64 >= duration);
        if duration > 0.0 {
            prop_assert!((billed as f64) < duration + granularity as f64);
            prop_assert_eq!(billed % granularity, 0);
        }
    }

    #[test]
    fn billing_is_monotone_in_duration(
        a in 0.0f64..1e5,
        b in 0.0f64..1e5,
        granularity in 1u64..500,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(billed_ms(lo, granularity) <= billed_ms(hi, granularity));
    }

    #[test]
    fn exgaussian_cdf_is_monotone_for_random_params(
        mu in -10.0f64..50.0,
        sigma in 0.1f64..10.0,
        rate in 0.01f64..5.0,
        xs in prop::collection::vec(-50.0f64..200.0, 2..40),
    ) {
        let d = ExGaussian::new(mu, sigma, rate).unwrap();
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Tolerance matches the erf approximation's absolute error
        // (Abramowitz–Stegun 7.1.26: ~1.5e-7): tail values below that are
        // numerical noise.
        let mut prev = -1e-12;
        for x in sorted {
            let f = d.cdf(x);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= prev - 5e-7, "cdf not monotone at {x}");
            prev = f;
        }
    }

    #[test]
    fn expected_max_is_monotone_and_above_mean(
        mu in 0.0f64..20.0,
        sigma in 0.1f64..5.0,
        rate in 0.05f64..2.0,
    ) {
        let d = ExGaussian::new(mu, sigma, rate).unwrap();
        let mut prev = f64::NEG_INFINITY;
        for n in [1usize, 2, 4, 8] {
            let m = d.expected_max(n);
            prop_assert!(m >= prev);
            prev = m;
        }
        prop_assert!(d.expected_max(4) >= d.mean() - 1e-6);
    }

    #[test]
    fn fleet_acquire_release_never_loses_instances(
        script in prop::collection::vec((any::<bool>(), 0u64..10_000), 1..100)
    ) {
        let mut fleet = Fleet::new(PlatformProfile::aws_lambda());
        fleet
            .deploy(FunctionSpec {
                name: "f".into(),
                memory_bytes: 1_000_000_000,
                package_bytes: 1_000,
            })
            .unwrap();
        let mut now = Micros::ZERO;
        let mut held = 0usize;
        for (acquire, dt) in script {
            now += Micros(dt);
            if acquire {
                let a = fleet.acquire("f", now).unwrap();
                prop_assert!(a.ready_at >= now);
                held += 1;
            } else if held > 0 {
                fleet.release("f", now).unwrap();
                held -= 1;
            }
        }
        let (cold, warm, peak) = fleet.stats("f").unwrap();
        // Every start is cold or warm, and the pool never exceeds its peak.
        prop_assert!(cold + warm >= held as u64);
        prop_assert!(peak >= held);
    }

    #[test]
    fn micros_roundtrip_and_ordering(a in 0u64..1_000_000_000, b in 0u64..1_000_000_000) {
        let (ma, mb) = (Micros(a), Micros(b));
        prop_assert_eq!((ma + mb).0, a + b);
        prop_assert_eq!(ma.saturating_sub(mb).0, a.saturating_sub(b));
        prop_assert_eq!(ma < mb, a < b);
        let ms = Micros::from_ms(ma.as_ms());
        prop_assert_eq!(ms, ma);
    }

    /// Any valid overload policy survives a text round trip exactly — the
    /// same contract `ExecutionPlan::to_text`/`from_text` upholds for plans.
    #[test]
    fn overload_policy_text_round_trips_for_all_valid_policies(
        concurrency in 1usize..64,
        bounded_queue in any::<bool>(),
        queue in 0usize..1024,
        has_deadline in any::<bool>(),
        deadline in 1u32..1_000_000,
        shed in any::<bool>(),
        breaker_on in any::<bool>(),
        threshold in 1u32..16,
        cooldown in 0u32..1_000_000,
        probes in 1u32..8,
    ) {
        // Deadlines and cooldowns are drawn as integer quarter-ms so the
        // f64 values round-trip exactly through the decimal text form.
        let policy = OverloadPolicy {
            max_concurrency: concurrency,
            queue_depth: if bounded_queue { queue } else { usize::MAX },
            deadline_ms: if has_deadline {
                f64::from(deadline) * 0.25
            } else {
                f64::INFINITY
            },
            shed_on_predicted_miss: shed && has_deadline,
            breaker: if breaker_on {
                BreakerPolicy {
                    failure_threshold: threshold,
                    cooldown_ms: f64::from(cooldown) * 0.25,
                    half_open_probes: probes,
                }
            } else {
                BreakerPolicy::disabled()
            },
        };
        prop_assert!(policy.validate().is_ok());
        let text = policy.to_text();
        let parsed = OverloadPolicy::from_text(&text).unwrap();
        prop_assert_eq!(policy, parsed, "{}", text);
    }
}

proptest! {
    /// The outage schedule is a pure function of (config, domain, time):
    /// probing the same (group, part, memory, t) points in any order, any
    /// number of times, or from freshly built models yields bit-identical
    /// multipliers — episode state never leaks between queries.
    #[test]
    fn outage_multiplier_is_pure_and_order_invariant(
        seed in any::<u64>(),
        severity in 1.0f64..64.0,
        start_prob in 0.01f64..0.5,
        probes in prop::collection::vec(
            (0u32..16, 0u32..16, 256u64..8192, 0u64..200_000),
            1..60,
        ),
    ) {
        use gillis_faas::chaos::OutageConfig;
        let cfg = OutageConfig {
            seed,
            severity,
            start_prob,
            ..OutageConfig::default()
        };
        let model = cfg.build().unwrap();
        let forward: Vec<f64> = probes
            .iter()
            .map(|&(g, p, mem, t)| model.multiplier(g, p, mem, t as f64 * 0.1))
            .collect();
        // Reverse order, a second pass, and a freshly built model all agree.
        let fresh = cfg.build().unwrap();
        for (i, &(g, p, mem, t)) in probes.iter().enumerate().rev() {
            let again = model.multiplier(g, p, mem, t as f64 * 0.1);
            let other = fresh.multiplier(g, p, mem, t as f64 * 0.1);
            prop_assert_eq!(again.to_bits(), forward[i].to_bits());
            prop_assert_eq!(other.to_bits(), forward[i].to_bits());
            // Severity composes multiplicatively over at most 3 domains.
            prop_assert!(again >= 1.0);
            prop_assert!(again <= severity.powi(3) * (1.0 + 1e-9));
        }
    }

    /// On constant window health the ladder moves monotonically to its
    /// fixed point and then stays there — hysteresis never oscillates.
    #[test]
    fn brownout_ladder_is_monotone_and_never_oscillates_on_constant_health(
        window_lanes in 1u32..64,
        successes_frac in 0.0f64..1.0,
        clean_windows in 1u32..4,
        windows in 8u32..80,
    ) {
        use gillis_faas::brownout::{BrownoutController, BrownoutLevel, BrownoutPolicy};
        let policy = BrownoutPolicy {
            window_lanes,
            clean_windows,
            ..BrownoutPolicy::default()
        };
        let mut ctl = BrownoutController::new(policy);
        let successes = ((f64::from(window_lanes) * successes_frac) as u64)
            .min(u64::from(window_lanes));
        let health = successes as f64 / f64::from(window_lanes);
        let mut trajectory = vec![ctl.level()];
        for _ in 0..windows {
            ctl.observe(u64::from(window_lanes), successes);
            trajectory.push(ctl.level());
        }
        // Monotone: constant health fixes the direction of travel.
        for pair in trajectory.windows(2) {
            if health < policy.degrade_below {
                prop_assert!(pair[1] >= pair[0], "degrading health must not step up");
            } else {
                prop_assert!(pair[1] <= pair[0], "non-degrading health must not step down");
            }
        }
        // Converged: enough windows to cross the whole ladder means the
        // tail of the trajectory is constant (no oscillation).
        if windows > 5 * clean_windows {
            let expect = if health < policy.degrade_below {
                BrownoutLevel::Shed
            } else {
                // Full is the starting level; anything not degrading holds it.
                BrownoutLevel::Full
            };
            prop_assert_eq!(*trajectory.last().unwrap(), expect);
        }
    }

    /// Token accounting: whatever the interleaving of spends and refills,
    /// the bucket stays within [0, max_tokens] and a spend is granted iff a
    /// whole token was available.
    #[test]
    fn retry_budget_tokens_stay_bounded(
        max_tokens in 1.0f64..128.0,
        initial_frac in 0.0f64..1.5,
        refill in 0.0f64..2.0,
        ops in prop::collection::vec(any::<bool>(), 1..300),
    ) {
        use gillis_faas::budget::{RetryBudget, RetryBudgetPolicy};
        let policy = RetryBudgetPolicy {
            max_tokens,
            initial_tokens: max_tokens * initial_frac,
            refill_per_success: refill,
        };
        let mut bucket = RetryBudget::new(policy);
        prop_assert!(bucket.tokens() <= max_tokens);
        for &spend in &ops {
            let before = bucket.tokens();
            if spend {
                let granted = bucket.try_spend();
                prop_assert_eq!(granted, before >= 1.0);
                if granted {
                    prop_assert!((bucket.tokens() - (before - 1.0)).abs() < 1e-12);
                } else {
                    prop_assert_eq!(bucket.tokens().to_bits(), before.to_bits());
                }
            } else {
                bucket.refill();
                prop_assert!(bucket.tokens() >= before);
            }
            prop_assert!(bucket.tokens() >= 0.0, "tokens went negative");
            prop_assert!(bucket.tokens() <= max_tokens, "tokens exceeded capacity");
        }
    }
}
