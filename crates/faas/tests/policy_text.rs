//! Cross-module contract tests for the versioned `key=value` policy text
//! formats and the shared `GILLIS_*` environment parsing.
//!
//! Every policy family that ships a `to_text`/`from_text` pair — batch,
//! pipeline, overload, outage, resilience, recovery — promises the same
//! contract: `from_text` **returns an error** on malformed input (bad
//! header, missing `=`, unknown key, unparsable or out-of-range value), it
//! never panics, and `from_text(to_text(p)) == p` for any valid policy.
//! These tests pin that contract in one place so a new policy family cannot
//! quietly regress to panicking parsers.

use gillis_faas::envutil::parse_value;
use gillis_faas::{
    BatchPolicy, OutageConfig, OverloadPolicy, PipelinePolicy, RecoveryPolicy, ResiliencePolicy,
};
use proptest::prelude::*;

/// Every text parser in the workspace, behind one signature so the
/// never-panics sweep and the malformed-input table drive all of them.
const PARSERS: &[(&str, &str, fn(&str) -> bool)] = &[
    ("batch", "gillis-batch v1", |t| {
        BatchPolicy::from_text(t).is_ok()
    }),
    ("pipeline", "gillis-pipeline v1", |t| {
        PipelinePolicy::from_text(t).is_ok()
    }),
    ("overload", "gillis-overload v1", |t| {
        OverloadPolicy::from_text(t).is_ok()
    }),
    ("outage", "gillis-outage v1", |t| {
        OutageConfig::from_text(t).is_ok()
    }),
    ("resilience", "gillis-resilience v1", |t| {
        ResiliencePolicy::from_text(t).is_ok()
    }),
    ("recovery", "gillis-recovery v1", |t| {
        RecoveryPolicy::from_text(t).is_ok()
    }),
];

#[test]
fn every_parser_rejects_garbage_with_an_error() {
    for (name, header, parse_ok) in PARSERS {
        // Empty input and wrong headers are errors, not panics.
        assert!(!parse_ok(""), "{name}: empty text must be rejected");
        assert!(!parse_ok("not a policy"), "{name}: bad header");
        assert!(
            !parse_ok("gillis-recovery v99\n"),
            "{name}: unknown version"
        );
        // Past the header: a token without `=`, an unknown key, and an
        // unparsable value each produce a descriptive error.
        assert!(
            !parse_ok(&format!("{header}\nnot-a-kv-token\n")),
            "{name}: missing '='"
        );
        assert!(
            !parse_ok(&format!("{header}\nbogus_key=1\n")),
            "{name}: unknown key"
        );
    }
}

#[test]
fn every_parser_round_trips_a_representative_policy() {
    let batch = BatchPolicy::batch_one();
    assert_eq!(BatchPolicy::from_text(&batch.to_text()).unwrap(), batch);

    let pipeline = PipelinePolicy::with_lanes(3);
    assert_eq!(
        PipelinePolicy::from_text(&pipeline.to_text()).unwrap(),
        pipeline
    );

    let overload = OverloadPolicy::for_slo(500.0, 8);
    assert_eq!(
        OverloadPolicy::from_text(&overload.to_text()).unwrap(),
        overload
    );

    let outage = OutageConfig::severe(8.0, 21);
    assert_eq!(OutageConfig::from_text(&outage.to_text()).unwrap(), outage);

    let resilience = ResiliencePolicy::default();
    assert_eq!(
        ResiliencePolicy::from_text(&resilience.to_text()).unwrap(),
        resilience
    );

    let recovery = RecoveryPolicy::default();
    assert_eq!(
        RecoveryPolicy::from_text(&recovery.to_text()).unwrap(),
        recovery
    );
}

#[test]
fn recovery_text_rejects_out_of_range_knobs() {
    // Values that parse as numbers but fail validation surface the
    // validation error instead of producing an unusable policy.
    for bad in [
        "gillis-recovery v1\ncapacity=0\n",
        "gillis-recovery v1\nttl_ms=0\n",
        "gillis-recovery v1\nttl_ms=NaN\n",
        "gillis-recovery v1\nfailover_ms=-1\n",
        "gillis-recovery v1\nfailover_ms=inf\n",
        "gillis-recovery v1\nspec_factor=0.5\n",
        "gillis-recovery v1\nspec_factor=NaN\n",
        "gillis-recovery v1\ncapacity=many\n",
    ] {
        let err = RecoveryPolicy::from_text(bad).unwrap_err();
        assert!(!err.to_string().is_empty(), "empty error for {bad:?}");
    }
}

proptest! {
    /// No text parser panics on arbitrary input — neither on raw garbage
    /// nor on a valid header followed by arbitrary body bytes (the path
    /// that exercises token splitting and value parsing).
    #[test]
    fn parsers_never_panic_on_arbitrary_text(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        for (_, header, parse_ok) in PARSERS {
            let _ = parse_ok(&text);
            let _ = parse_ok(&format!("{header}\n{text}"));
        }
    }

    /// `RecoveryPolicy` text round-trips exactly over its whole valid
    /// domain, including the infinity sentinels for `ttl_ms` (never
    /// expire) and `spec_factor` (speculation off).
    #[test]
    fn recovery_policy_text_round_trips(
        capacity in 1usize..100_000,
        ttl_inf in any::<bool>(),
        ttl_finite in 0.001f64..1e7,
        failover_ms in 0.0f64..10_000.0,
        spec_inf in any::<bool>(),
        spec_finite in 1.0f64..1e4,
        max_speculations in 0u32..64,
    ) {
        let policy = RecoveryPolicy {
            capacity,
            ttl_ms: if ttl_inf { f64::INFINITY } else { ttl_finite },
            failover_ms,
            spec_factor: if spec_inf { f64::INFINITY } else { spec_finite },
            max_speculations,
        };
        prop_assert!(policy.validate().is_ok());
        let text = policy.to_text();
        let parsed = RecoveryPolicy::from_text(&text).unwrap();
        prop_assert_eq!(policy, parsed, "{}", text);
    }
}

/// One knob per `GILLIS_*` family: a malformed value yields a descriptive
/// error that names the variable and echoes the rejected input, so the
/// `env_var` wrapper's stderr warning tells the operator which knob was
/// ignored (the old readers swallowed typos silently).
#[test]
fn malformed_env_knobs_name_the_variable() {
    let cases: &[(&str, &str, bool)] = &[
        (
            "GILLIS_CHAOS_RATE",
            "0.0.5",
            parse_value::<f64>("GILLIS_CHAOS_RATE", "0.0.5").is_err(),
        ),
        (
            "GILLIS_OVERLOAD_CONCURRENCY",
            "four",
            parse_value::<usize>("GILLIS_OVERLOAD_CONCURRENCY", "four").is_err(),
        ),
        (
            "GILLIS_BATCH_MAX",
            "8x",
            parse_value::<usize>("GILLIS_BATCH_MAX", "8x").is_err(),
        ),
        (
            "GILLIS_PIPELINE_LANES",
            "-2",
            parse_value::<usize>("GILLIS_PIPELINE_LANES", "-2").is_err(),
        ),
        (
            "GILLIS_RETRY_BUDGET_MAX",
            "ten",
            parse_value::<f64>("GILLIS_RETRY_BUDGET_MAX", "ten").is_err(),
        ),
        (
            "GILLIS_BROWNOUT_WINDOW",
            "250ms",
            parse_value::<f64>("GILLIS_BROWNOUT_WINDOW", "250ms").is_err(),
        ),
        (
            "GILLIS_RECOVERY_CAPACITY",
            "0.5",
            parse_value::<usize>("GILLIS_RECOVERY_CAPACITY", "0.5").is_err(),
        ),
        (
            "GILLIS_OUTAGE_SEVERITY",
            "severe",
            parse_value::<f64>("GILLIS_OUTAGE_SEVERITY", "severe").is_err(),
        ),
    ];
    for (name, raw, rejected) in cases {
        assert!(rejected, "{name}={raw} should fail to parse");
        let msg = match *name {
            "GILLIS_OVERLOAD_CONCURRENCY"
            | "GILLIS_BATCH_MAX"
            | "GILLIS_PIPELINE_LANES"
            | "GILLIS_RECOVERY_CAPACITY" => parse_value::<usize>(name, raw).unwrap_err(),
            _ => parse_value::<f64>(name, raw).unwrap_err(),
        };
        assert!(msg.contains(name), "error {msg:?} must name {name}");
        assert!(
            msg.contains(raw),
            "error {msg:?} must echo the rejected input {raw:?}"
        );
    }
}

#[test]
fn well_formed_env_values_parse_with_whitespace_tolerance() {
    assert_eq!(parse_value::<f64>("GILLIS_CHAOS_RATE", " 0.05 "), Ok(0.05));
    assert_eq!(
        parse_value::<usize>("GILLIS_RECOVERY_CAPACITY", "256"),
        Ok(256)
    );
    assert_eq!(
        parse_value::<f64>("GILLIS_RECOVERY_SPEC_FACTOR", "inf"),
        Ok(f64::INFINITY)
    );
}
